//! Criterion benches: one representative simulation per paper figure.
//!
//! Each bench runs the scaled-down configuration behind the corresponding
//! figure once per iteration and asserts its headline property, so both
//! simulator *performance* and simulator *behaviour* regressions are
//! caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::net::packet::Dscp;
use idio_core::policy::SteeringPolicy;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};
use std::hint::black_box;

/// One 1024-packet burst at `rate` Gbps under `policy`, 2 TouchDrop cores.
fn burst_once(rate: f64, policy: SteeringPolicy, kind: NfKind, dscp: Dscp) -> u64 {
    let spec = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    for w in &mut cfg.workloads {
        w.kind = kind;
        w.dscp = dscp;
    }
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(2);
    let r = System::new(cfg.with_policy(policy)).run();
    assert!(r.totals.completed_packets > 0);
    r.totals.mlc_wb + r.totals.llc_wb
}

fn bench_fig4(c: &mut Criterion) {
    // Fig. 4's unit of work: steady DDIO traffic recycling a 1024 ring.
    c.bench_function("fig4_steady_ddio_ring1024", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::touchdrop_scenario(
                2,
                TrafficPattern::Steady { rate_gbps: 10.0 },
            );
            cfg.duration = SimTime::from_ms(1);
            cfg.drain_grace = Duration::from_us(500);
            let r = System::new(cfg).run();
            black_box(r.totals.mlc_wb)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_burst_timeline_ddio", |b| {
        b.iter(|| black_box(burst_once(100.0, SteeringPolicy::Ddio, NfKind::TouchDrop, Dscp::BEST_EFFORT)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_policies_100g");
    g.sample_size(10);
    for policy in SteeringPolicy::ALL {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(burst_once(100.0, policy, NfKind::TouchDrop, Dscp::BEST_EFFORT)))
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_rates_idio");
    g.sample_size(10);
    for rate in [100.0, 25.0, 10.0] {
        g.bench_function(format!("{rate:.0}g"), |b| {
            b.iter(|| black_box(burst_once(rate, SteeringPolicy::Idio, NfKind::TouchDrop, Dscp::BEST_EFFORT)))
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_l2fwd_idio", |b| {
        b.iter(|| black_box(burst_once(25.0, SteeringPolicy::Idio, NfKind::L2Fwd, Dscp::BEST_EFFORT)))
    });
}

fn bench_direct_dram(c: &mut Criterion) {
    c.bench_function("direct_dram_class1", |b| {
        b.iter(|| {
            black_box(burst_once(
                25.0,
                SteeringPolicy::Idio,
                NfKind::L2FwdPayloadDrop,
                Dscp::CLASS1_DEFAULT,
            ))
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_latency_corun", |b| {
        b.iter(|| {
            let spec = BurstSpec::for_ring(1024, 1514, 25.0, Duration::from_ms(2));
            let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec))
                .with_antagonist();
            cfg.duration = SimTime::from_ms(2);
            cfg.drain_grace = Duration::from_ms(2);
            let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
            black_box(r.p99())
        })
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_steady_idio", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::touchdrop_scenario(
                2,
                TrafficPattern::Steady { rate_gbps: 10.0 },
            );
            cfg.duration = SimTime::from_ms(1);
            cfg.drain_grace = Duration::from_us(500);
            let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
            black_box(r.totals.self_inval)
        })
    });
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_mlcthr");
    g.sample_size(10);
    for thr in [10.0, 100.0] {
        g.bench_function(format!("{thr:.0}mtps"), |b| {
            b.iter(|| {
                let spec = BurstSpec::for_ring(1024, 1514, 100.0, Duration::from_ms(2));
                let mut cfg =
                    SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
                cfg.idio = cfg.idio.with_mlc_thr_mtps(thr);
                cfg.duration = SimTime::from_ms(2);
                cfg.drain_grace = Duration::from_ms(2);
                let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
                black_box(r.totals.mlc_wb)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig5, bench_fig9, bench_fig10, bench_fig11,
        bench_direct_dram, bench_fig12, bench_fig13, bench_fig14
}
criterion_main!(figures);
