//! Micro-benches: one representative simulation per paper figure.
//!
//! Each bench runs the scaled-down configuration behind the corresponding
//! figure once per iteration and asserts its headline property, so both
//! simulator *performance* and simulator *behaviour* regressions are
//! caught by `cargo bench`.

use idio_bench::micro::Micro;
use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::net::packet::Dscp;
use idio_core::policy::SteeringPolicy;
use idio_core::stack::nf::NfKind;
use idio_core::system::System;
use idio_engine::time::{Duration, SimTime};

/// One 1024-packet burst at `rate` Gbps under `policy`, 2 TouchDrop cores.
fn burst_once(rate: f64, policy: SteeringPolicy, kind: NfKind, dscp: Dscp) -> u64 {
    let spec = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    for w in &mut cfg.workloads {
        w.kind = kind;
        w.dscp = dscp;
    }
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(2);
    let r = System::new(cfg.with_policy(policy)).run();
    assert!(r.totals.completed_packets > 0);
    r.totals.mlc_wb + r.totals.llc_wb
}

fn main() {
    let mut m = Micro::from_args();

    // Fig. 4's unit of work: steady DDIO traffic recycling a 1024 ring.
    m.bench("fig4_steady_ddio_ring1024", || {
        let mut cfg =
            SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 10.0 });
        cfg.duration = SimTime::from_ms(1);
        cfg.drain_grace = Duration::from_us(500);
        let r = System::new(cfg).run();
        r.totals.mlc_wb
    });

    m.bench("fig5_burst_timeline_ddio", || {
        burst_once(
            100.0,
            SteeringPolicy::Ddio,
            NfKind::TouchDrop,
            Dscp::BEST_EFFORT,
        )
    });

    for policy in SteeringPolicy::ALL {
        m.bench(&format!("fig9_policies_100g/{}", policy.label()), || {
            burst_once(100.0, policy, NfKind::TouchDrop, Dscp::BEST_EFFORT)
        });
    }

    for rate in [100.0, 25.0, 10.0] {
        m.bench(&format!("fig10_rates_idio/{rate:.0}g"), || {
            burst_once(
                rate,
                SteeringPolicy::Idio,
                NfKind::TouchDrop,
                Dscp::BEST_EFFORT,
            )
        });
    }

    m.bench("fig11_l2fwd_idio", || {
        burst_once(25.0, SteeringPolicy::Idio, NfKind::L2Fwd, Dscp::BEST_EFFORT)
    });

    m.bench("direct_dram_class1", || {
        burst_once(
            25.0,
            SteeringPolicy::Idio,
            NfKind::L2FwdPayloadDrop,
            Dscp::CLASS1_DEFAULT,
        )
    });

    m.bench("fig12_latency_corun", || {
        let spec = BurstSpec::for_ring(1024, 1514, 25.0, Duration::from_ms(2));
        let mut cfg =
            SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec)).with_antagonist();
        cfg.duration = SimTime::from_ms(2);
        cfg.drain_grace = Duration::from_ms(2);
        let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
        r.p99()
    });

    m.bench("fig13_steady_idio", || {
        let mut cfg =
            SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 10.0 });
        cfg.duration = SimTime::from_ms(1);
        cfg.drain_grace = Duration::from_us(500);
        let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
        r.totals.self_inval
    });

    for thr in [10.0, 100.0] {
        m.bench(&format!("fig14_mlcthr/{thr:.0}mtps"), || {
            let spec = BurstSpec::for_ring(1024, 1514, 100.0, Duration::from_ms(2));
            let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
            cfg.idio = cfg.idio.with_mlc_thr_mtps(thr);
            cfg.duration = SimTime::from_ms(2);
            cfg.drain_grace = Duration::from_ms(2);
            let r = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
            r.totals.mlc_wb
        });
    }

    m.finish();
}
