//! Micro-benchmarks of the substrate hot paths: cache hierarchy
//! operations, event queue throughput, and ablation sweeps over the design
//! parameters called out in DESIGN.md (prefetch queue depth, DDIO way
//! count, ring size).

use criterion::{criterion_group, criterion_main, Criterion};
use idio_core::cache::addr::{CoreId, LineAddr};
use idio_core::cache::config::HierarchyConfig;
use idio_core::cache::hierarchy::{DmaPlacement, Hierarchy};
use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::policy::SteeringPolicy;
use idio_core::system::System;
use idio_engine::queue::EventQueue;
use idio_engine::time::{Duration, SimTime};
use std::hint::black_box;

fn bench_hierarchy_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.bench_function("pcie_write_then_cpu_read", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default(2));
        let mut i = 0u64;
        b.iter(|| {
            let line = LineAddr::new(i % 32_768);
            i += 1;
            h.pcie_write(line, DmaPlacement::Llc);
            black_box(h.cpu_read(CoreId::new(0), line))
        })
    });
    g.bench_function("self_invalidate", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default(2));
        let mut i = 0u64;
        b.iter(|| {
            let line = LineAddr::new(i % 16_384);
            i += 1;
            h.cpu_write(CoreId::new(0), line);
            black_box(h.self_invalidate(
                CoreId::new(0),
                line,
                idio_core::cache::hierarchy::InvalidateScope::PrivateOnly,
            ))
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_at(SimTime::from_ps(i * 37 % 5000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn run_with<F: FnOnce(&mut SystemConfig)>(f: F) -> u64 {
    let spec = BurstSpec::for_ring(1024, 1514, 100.0, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(2);
    cfg.policy = SteeringPolicy::Idio;
    f(&mut cfg);
    let r = System::new(cfg).run();
    r.totals.mlc_wb + r.totals.llc_wb
}

/// Ablation: prefetch queue depth (Sec. V-C default is 32).
fn bench_ablation_prefetch_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prefetch_depth");
    g.sample_size(10);
    for depth in [8usize, 32, 128] {
        g.bench_function(format!("depth{depth}"), |b| {
            b.iter(|| black_box(run_with(|cfg| cfg.prefetcher.queue_depth = depth)))
        });
    }
    g.finish();
}

/// Ablation: number of LLC ways reserved for DDIO.
fn bench_ablation_ddio_ways(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ddio_ways");
    g.sample_size(10);
    for ways in [1usize, 2, 4] {
        g.bench_function(format!("ways{ways}"), |b| {
            b.iter(|| black_box(run_with(|cfg| cfg.hierarchy.ddio_ways = ways)))
        });
    }
    g.finish();
}

/// Ablation: DMA ring depth (Sec. III's central variable).
fn bench_ablation_ring_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ring_size");
    g.sample_size(10);
    for ring in [256u32, 1024] {
        g.bench_function(format!("ring{ring}"), |b| {
            b.iter(|| {
                let spec = BurstSpec::for_ring(ring, 1514, 100.0, Duration::from_ms(2));
                let mut cfg =
                    SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
                cfg.ring_size = ring;
                cfg.duration = SimTime::from_ms(2);
                cfg.drain_grace = Duration::from_ms(2);
                let r = System::new(cfg).run();
                black_box(r.totals.mlc_wb)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_hierarchy_ops, bench_event_queue, bench_ablation_prefetch_depth,
        bench_ablation_ddio_ways, bench_ablation_ring_size
}
criterion_main!(substrates);
