//! Micro-benchmarks of the substrate hot paths: cache hierarchy
//! operations, event queue throughput, and ablation sweeps over the design
//! parameters called out in DESIGN.md (prefetch queue depth, DDIO way
//! count, ring size).

use idio_bench::micro::Micro;
use idio_core::cache::addr::{CoreId, LineAddr};
use idio_core::cache::config::HierarchyConfig;
use idio_core::cache::hierarchy::{DmaPlacement, Hierarchy};
use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::policy::SteeringPolicy;
use idio_core::system::System;
use idio_engine::queue::EventQueue;
use idio_engine::time::{Duration, SimTime};

fn run_with<F: FnOnce(&mut SystemConfig)>(f: F) -> u64 {
    let spec = BurstSpec::for_ring(1024, 1514, 100.0, Duration::from_ms(2));
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_ms(2);
    cfg.policy = SteeringPolicy::Idio;
    f(&mut cfg);
    let r = System::new(cfg).run();
    r.totals.mlc_wb + r.totals.llc_wb
}

fn main() {
    let mut m = Micro::from_args();

    m.bench("hierarchy/pcie_write_then_cpu_read", || {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default(2));
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            let line = LineAddr::new(i % 32_768);
            h.pcie_write(line, DmaPlacement::Llc);
            acc += u64::from(h.cpu_read(CoreId::new(0), line).effects.dram_reads);
        }
        acc
    });

    m.bench("hierarchy/self_invalidate", || {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default(2));
        for i in 0..10_000u64 {
            let line = LineAddr::new(i % 16_384);
            h.cpu_write(CoreId::new(0), line);
            h.self_invalidate(
                CoreId::new(0),
                line,
                idio_core::cache::hierarchy::InvalidateScope::PrivateOnly,
            );
        }
        h.stats().shared.llc_wb.get()
    });

    m.bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule_at(SimTime::from_ps(i * 37 % 5000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        sum
    });

    // Ablation: prefetch queue depth (Sec. V-C default is 32).
    for depth in [8usize, 32, 128] {
        m.bench(&format!("ablation_prefetch_depth/depth{depth}"), || {
            run_with(|cfg| cfg.prefetcher.queue_depth = depth)
        });
    }

    // Ablation: number of LLC ways reserved for DDIO.
    for ways in [1usize, 2, 4] {
        m.bench(&format!("ablation_ddio_ways/ways{ways}"), || {
            run_with(|cfg| cfg.hierarchy.ddio_ways = ways)
        });
    }

    // Ablation: DMA ring depth (Sec. III's central variable).
    for ring in [256u32, 1024] {
        m.bench(&format!("ablation_ring_size/ring{ring}"), || {
            let spec = BurstSpec::for_ring(ring, 1514, 100.0, Duration::from_ms(2));
            let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Bursty(spec));
            cfg.ring_size = ring;
            cfg.duration = SimTime::from_ms(2);
            cfg.drain_grace = Duration::from_ms(2);
            let r = System::new(cfg).run();
            r.totals.mlc_wb
        });
    }

    m.finish();
}
