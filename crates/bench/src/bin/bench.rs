//! Reproducible engine benchmark suite with a tracked JSON baseline.
//!
//! ```text
//! cargo run -p idio-bench --release --bin bench                    # print stats
//! cargo run -p idio-bench --release --bin bench -- --list
//! cargo run -p idio-bench --release --bin bench -- event_queue cache
//! cargo run -p idio-bench --release --bin bench -- --out BENCH_engine.json --label pre
//! cargo run -p idio-bench --release --bin bench -- --out BENCH_engine.json --label post --append
//! ```
//!
//! Five workload families, all under fixed seeds so run-to-run variance
//! is host noise only:
//!
//! * `event_queue/*` — scheduler throughput on the near-monotonic insert
//!   pattern of packet arrivals and on a mixed-horizon pattern that
//!   stresses far-future inserts;
//! * `cache/*` — `SetAssocCache` fill/probe/touch and a full
//!   [`Hierarchy`] DMA-write/CPU-read loop;
//! * `chain/*` — the end-to-end chained-NF system hot loop (UPF pipeline
//!   on recycling mbuf pools);
//! * `fd/steer_lookup` — the flow-director lookup hot path over a
//!   streaming one-million-flow set (perfect / ATR / RSS tiers plus
//!   lazy aging under table pressure);
//! * `suite/quick_figures` — the complete 17-figure paper suite at
//!   `Scale::quick()` on one worker, i.e. exactly what
//!   `repro --quick --jobs 1` runs.
//!
//! With `--out`, statistics are written as one labelled snapshot in the
//! `idio-bench/1` format (see DESIGN.md); `--append` adds the snapshot to
//! an existing file so before/after pairs live in one document.

use std::process::ExitCode;
use std::time::Instant;

use idio_bench::micro::{
    append_snapshot, last_entry_median, measure, render_bench_file, RunStats, Snapshot,
};
use idio_bench::{experiment_spec, EXPERIMENTS};
use idio_core::cache::addr::{CoreId, LineAddr};
use idio_core::cache::config::HierarchyConfig;
use idio_core::cache::hierarchy::{DmaPlacement, Hierarchy};
use idio_core::cache::set::{SetAssocCache, WayMask};
use idio_core::config::SystemConfig;
use idio_core::experiments::Scale;
use idio_core::net::gen::TrafficPattern;
use idio_core::pool::PoolSpec;
use idio_core::stack::nf::{NfChain, NfKind};
use idio_core::sweep::{run_figures_detailed, SweepOptions};
use idio_core::system::System;
use idio_core::SteeringPolicy;
use idio_engine::queue::EventQueue;
use idio_engine::rng::SimRng;
use idio_engine::time::Duration;
use idio_engine::time::SimTime;

/// Fixed seed for every randomised workload; results must not depend on
/// the host, only on the code under test.
const SEED: u64 = 0x1D10_BE2C;

/// Near-monotonic schedule/pop mix: the arrival pattern the calendar
/// queue is tuned for. Time advances by a bounded random increment and
/// every insert is within a short horizon of `now`.
fn event_queue_monotonic() -> u64 {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = SimRng::seed_from(SEED);
    let mut at = 0u64;
    let mut acc = 0u64;
    for i in 0..400_000u32 {
        at += rng.next_u64() % 1_000; // up to 1ns forward per insert
        q.schedule_at(SimTime::from_ps(at + rng.next_u64() % 100_000), i);
        if i % 4 == 0 {
            if let Some((t, e)) = q.pop() {
                acc = acc.wrapping_add(t.as_ps()).wrapping_add(u64::from(e));
            }
        }
    }
    while let Some((t, e)) = q.pop() {
        acc = acc.wrapping_add(t.as_ps()).wrapping_add(u64::from(e));
    }
    acc
}

/// Mixed-horizon inserts: most events land near `now`, a tail lands up to
/// two milliseconds out (descriptor writebacks, control ticks), so the
/// far-future path is exercised too.
fn event_queue_mixed_horizon() -> u64 {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = SimRng::seed_from(SEED ^ 1);
    let mut acc = 0u64;
    for i in 0..200_000u32 {
        let now = q.now().as_ps();
        let horizon = if rng.next_u64().is_multiple_of(8) {
            rng.next_u64() % 2_000_000_000 // up to 2ms out
        } else {
            rng.next_u64() % 200_000 // within 200ns
        };
        q.schedule_at(SimTime::from_ps(now + horizon), i);
        if i % 2 == 0 {
            if let Some((t, e)) = q.pop() {
                acc = acc.wrapping_add(t.as_ps()).wrapping_add(u64::from(e));
            }
        }
    }
    while let Some((t, e)) = q.pop() {
        acc = acc.wrapping_add(t.as_ps()).wrapping_add(u64::from(e));
    }
    acc
}

/// LLC-shaped cache under a DMA-like reuse pattern: fill twice the
/// capacity (forcing evictions), then probe/touch a hot window.
fn cache_fill_probe() -> u64 {
    let mut c = SetAssocCache::new("bench-llc", 4096, 12);
    let mut rng = SimRng::seed_from(SEED ^ 2);
    let mask = WayMask::all(12);
    let lines = (4096 * 12) as u64;
    let mut acc = 0u64;
    for i in 0..2 * lines {
        let (victim, way) = c.insert(LineAddr::new(i), i % 3 == 0, mask);
        acc = acc
            .wrapping_add(way as u64)
            .wrapping_add(victim.is_some() as u64);
    }
    for _ in 0..4 * lines {
        let line = LineAddr::new(lines + rng.next_u64() % lines);
        acc = acc.wrapping_add(c.contains(line) as u64);
        if c.touch(line).is_some() {
            acc = acc.wrapping_add(c.probe(line).is_some() as u64);
        }
    }
    acc
}

/// The substrate loop behind every simulated DMA line: device write into
/// the hierarchy followed by a CPU read of the same line.
fn hierarchy_dma_loop() -> u64 {
    let mut h = Hierarchy::new(HierarchyConfig::paper_default(2));
    let mut acc = 0u64;
    for i in 0..60_000u64 {
        let line = LineAddr::new(i % 32_768);
        h.pcie_write(line, DmaPlacement::Llc);
        let eff = h.cpu_read(CoreId::new((i % 2) as u16), line).effects;
        acc += u64::from(eff.dram_reads);
    }
    acc
}

/// The chained-NF hot loop, end to end: two cores running the UPF
/// pipeline (parse → classify → rewrite → forward) on cache-resident
/// recycling pools. Covers the per-stage mark segmentation in
/// `execute_packet`, the stage histograms, and the completion-time pool
/// free + self-invalidation path.
fn chain_upf_pipeline() -> u64 {
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 12.0 });
    cfg.duration = SimTime::from_ms(2);
    cfg.drain_grace = Duration::from_us(500);
    cfg.policy = SteeringPolicy::Idio;
    for w in &mut cfg.workloads {
        w.kind = NfKind::Chain(NfChain::upf());
        w.pool = Some(PoolSpec::Recycle { slots: None });
    }
    System::new(cfg).run().totals.completed_packets
}

/// The flow-director steering hot path at scale: two passes of lookups
/// over a streaming one-million-flow set with a bounded perfect-filter
/// budget and sampled ATR learning, so every resolution tier — perfect
/// match, filter-table hit/collision, RSS fallback — and the lazy ATR
/// aging path run under realistic table pressure.
fn fd_steer_lookup() -> u64 {
    use idio_core::net::gen::FlowSet;
    use idio_core::net::packet::Dscp;
    use idio_core::nic::flow_director::{FlowDirector, QueueId};

    const FLOWS: u32 = 1 << 20;
    const PINS: u32 = 4096;
    let set = FlowSet::new(7, FLOWS, 5000, 256, Dscp::BEST_EFFORT);
    let mut fd = FlowDirector::with_tables(8, PINS as usize, 8192);
    fd.set_atr_lifetime(Some(Duration::from_us(150)));
    // Pin a strided subset up to the perfect-filter budget, exactly as
    // the system layer budgets pins per tenant.
    for p in 0..PINS {
        let idx = p * (FLOWS / PINS);
        let _ = fd.install_perfect_evicting(set.tuple_of(idx), QueueId((p % 8) as u16));
    }
    let mut now = SimTime::ZERO;
    let mut acc = 0u64;
    for i in 0..2 * FLOWS {
        let flow = set.tuple_of(i % FLOWS);
        let (q, src) = fd.lookup(now, &flow);
        acc = acc.wrapping_add(u64::from(q.0)).wrapping_add(src as u64);
        // Sampled completion feedback: every fourth packet reports its
        // landing queue back, as the completion path does.
        if i % 4 == 0 {
            fd.learn(now, &flow, q);
        }
        now += Duration::from_ns(1);
    }
    let s = fd.stats();
    acc.wrapping_add(s.perfect_hits)
        .wrapping_add(s.atr_hits)
        .wrapping_add(s.atr_aged)
        .wrapping_add(s.rss_fallbacks)
}

/// The full quick figure suite on one worker — the acceptance workload.
fn quick_suite() -> usize {
    let specs = EXPERIMENTS
        .iter()
        .map(|name| experiment_spec(name, Scale::quick()).expect("known name"))
        .collect();
    let opts = SweepOptions {
        jobs: 1,
        ..SweepOptions::default()
    };
    let suite = run_figures_detailed(specs, &opts);
    suite.figures.len()
}

struct Workload {
    name: &'static str,
    default_runs: usize,
    run: fn() -> u64,
}

fn suite_as_u64() -> u64 {
    quick_suite() as u64
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "event_queue/monotonic",
        default_runs: 7,
        run: event_queue_monotonic,
    },
    Workload {
        name: "event_queue/mixed_horizon",
        default_runs: 7,
        run: event_queue_mixed_horizon,
    },
    Workload {
        name: "cache/llc_fill_probe",
        default_runs: 7,
        run: cache_fill_probe,
    },
    Workload {
        name: "cache/hierarchy_dma_loop",
        default_runs: 7,
        run: hierarchy_dma_loop,
    },
    Workload {
        name: "chain/upf_pipeline",
        default_runs: 7,
        run: chain_upf_pipeline,
    },
    Workload {
        name: "fd/steer_lookup",
        default_runs: 7,
        run: fd_steer_lookup,
    },
    Workload {
        name: "suite/quick_figures",
        default_runs: 3,
        run: suite_as_u64,
    },
];

/// Workload the `--check` regression gate measures, and how much slower
/// than the committed baseline it may run before the gate fails. The
/// 1.25× margin absorbs CI host noise; a genuine layout or algorithmic
/// regression lands well past it.
const CHECK_WORKLOAD: &str = "suite/quick_figures";
const CHECK_MAX_RATIO: f64 = 1.25;

/// `--check` mode: measure [`CHECK_WORKLOAD`] and compare its median
/// against the newest committed snapshot in `baseline_path`.
///
/// Fails (non-zero exit) when the measured median exceeds
/// [`CHECK_MAX_RATIO`] × the baseline median, or when the baseline file
/// has no entry to gate on — a silent pass on a missing baseline would
/// turn the gate off without anyone noticing. Re-bless by appending a
/// fresh snapshot: `bench --runs 5 --append --label <why> --out <file>`.
fn run_check(baseline_path: &str, runs: usize) -> ExitCode {
    let doc = match std::fs::read_to_string(baseline_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read baseline '{baseline_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = last_entry_median(&doc, CHECK_WORKLOAD) else {
        eprintln!("error: no '{CHECK_WORKLOAD}' entry in '{baseline_path}' to gate against");
        return ExitCode::FAILURE;
    };
    let w = WORKLOADS
        .iter()
        .find(|w| w.name == CHECK_WORKLOAD)
        .expect("check workload is registered");
    std::hint::black_box((w.run)());
    let stats = measure(w.name, runs, w.run);
    let ratio = stats.median_ms / baseline;
    println!(
        "{:<28} median {:>10.3}ms  baseline {:>10.3}ms  ratio {:.3} (limit {:.2})",
        stats.name, stats.median_ms, baseline, ratio, CHECK_MAX_RATIO
    );
    if ratio > CHECK_MAX_RATIO {
        eprintln!(
            "error: {CHECK_WORKLOAD} regressed {:.1}% past the committed baseline \
             (gate: {:.0}%); if the slowdown is intended, re-bless with \
             `bench --runs 5 --append --label <reason> --out {baseline_path}`",
            (ratio - 1.0) * 100.0,
            (CHECK_MAX_RATIO - 1.0) * 100.0,
        );
        return ExitCode::FAILURE;
    }
    println!(
        "ok: within {:.0}% of baseline",
        (CHECK_MAX_RATIO - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut label = String::from("snapshot");
    let mut runs_override: Option<usize> = None;
    let mut append = false;
    let mut check: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" | "-o" => match args.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--label" | "-l" => match args.next() {
                Some(l) => label = l,
                None => {
                    eprintln!("error: --label needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--runs" | "-r" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => runs_override = Some(n),
                _ => {
                    eprintln!("error: --runs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--append" => append = true,
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => {
                    eprintln!("error: --check needs a baseline file path");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for w in WORKLOADS {
                    println!("{} (default {} runs)", w.name, w.default_runs);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--out FILE] [--label L] [--runs N] [--append] \
                     [--check BASELINE] [--list] [filter...]\n\
                     --check BASELINE   regression gate: measure suite/quick_figures and\n\
                     \u{20}                  fail if its median exceeds 1.25x the newest\n\
                     \u{20}                  committed snapshot in BASELINE"
                );
                return ExitCode::SUCCESS;
            }
            other => filters.push(other.to_string()),
        }
    }

    if let Some(baseline) = check {
        return run_check(&baseline, runs_override.unwrap_or(3));
    }

    let selected: Vec<&Workload> = WORKLOADS
        .iter()
        .filter(|w| filters.is_empty() || filters.iter().any(|f| w.name.contains(f.as_str())))
        .collect();
    if selected.is_empty() {
        eprintln!("no workloads matched filter(s): {}", filters.join(", "));
        return ExitCode::FAILURE;
    }

    let wall = Instant::now();
    let mut entries: Vec<RunStats> = Vec::with_capacity(selected.len());
    for w in &selected {
        let runs = runs_override.unwrap_or(w.default_runs);
        // Warm-up run outside the statistics: first-touch page faults and
        // lazy init would otherwise land on min_ms.
        std::hint::black_box((w.run)());
        let stats = measure(w.name, runs, w.run);
        println!(
            "{:<28} median {:>10.3}ms  p90 {:>10.3}ms  min {:>10.3}ms  ({} runs)",
            stats.name, stats.median_ms, stats.p90_ms, stats.min_ms, stats.runs
        );
        entries.push(stats);
    }
    eprintln!("[{} workload(s) in {:.1?}]", entries.len(), wall.elapsed());

    if let Some(path) = out {
        let snap = Snapshot { label, entries };
        let doc = if append {
            append_snapshot(
                std::fs::read_to_string(&path).ok().as_deref(),
                "engine",
                &snap,
            )
        } else {
            render_bench_file("engine", std::slice::from_ref(&snap))
        };
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
