//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p idio-bench --release --bin repro            # everything, full scale
//! cargo run -p idio-bench --release --bin repro -- --quick # shrunk runs
//! cargo run -p idio-bench --release --bin repro -- fig9 fig10
//! cargo run -p idio-bench --release --bin repro -- --series fig5
//! ```

use std::process::ExitCode;
use std::time::Instant;

use idio_bench::json::figure_to_json;
use idio_bench::{run_experiment, EXPERIMENTS};
use idio_core::experiments::Scale;

fn main() -> ExitCode {
    let mut scale = Scale::full();
    let mut print_series = false;
    let mut as_json = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--series" => print_series = true,
            "--json" => as_json = true,
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--series] [--json] [experiment...]");
                println!("experiments: {}", EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for name in &names {
        let started = Instant::now();
        match run_experiment(name, scale) {
            Ok(result) => {
                if as_json {
                    println!("{}", figure_to_json(&result));
                    continue;
                }
                println!("{result}");
                if print_series {
                    for (label, series) in &result.series {
                        println!("-- series {label} ({} samples)", series.len());
                        for s in series.samples() {
                            if s.value != 0.0 {
                                println!("{:.1}us {:.2}", s.at.as_us_f64(), s.value);
                            }
                        }
                    }
                }
                println!("[{name} took {:.1?}]\n", started.elapsed());
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("known experiments: {}", EXPERIMENTS.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
