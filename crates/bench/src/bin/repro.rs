//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p idio-bench --release --bin repro            # everything, full scale
//! cargo run -p idio-bench --release --bin repro -- --quick # shrunk runs
//! cargo run -p idio-bench --release --bin repro -- fig9 fig10
//! cargo run -p idio-bench --release --bin repro -- --series fig5
//! cargo run -p idio-bench --release --bin repro -- --jobs 8 --progress
//! ```
//!
//! All requested figures are fanned out as one cell pool over `--jobs`
//! worker threads; per-cell seeds are derived from the cell labels, so the
//! output is byte-identical for every `--jobs` value.

use std::process::ExitCode;

use idio_bench::json::{cell_metrics_line, figure_to_json, suite_timing_to_json};
use idio_bench::{experiment_spec, EXPERIMENTS};
use idio_core::experiments::Scale;
use idio_core::sweep::{run_figures_detailed, SweepOptions};

fn main() -> ExitCode {
    let mut scale = Scale::full();
    let mut print_series = false;
    let mut as_json = false;
    let mut timings = false;
    let mut metrics = false;
    let mut opts = SweepOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--series" => print_series = true,
            "--json" => as_json = true,
            "--timings" => {
                timings = true;
                // Per-event wall-clock makes --timings answer "where does
                // simulation time go"; it never touches stdout.
                opts.profile_events = true;
            }
            "--metrics" => metrics = true,
            "--progress" => opts.progress = true,
            "--jobs" | "-j" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.jobs = n,
                _ => {
                    eprintln!("error: --jobs needs a number (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => opts.root_seed = s,
                _ => {
                    eprintln!("error: --seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--series] [--json] [--metrics] [--timings] \
                     [--progress] [--jobs N] [--seed S] [experiment...]"
                );
                println!("experiments: {}", EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut specs = Vec::with_capacity(names.len());
    for name in &names {
        match experiment_spec(name, scale) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("known experiments: {}", EXPERIMENTS.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }

    let suite = run_figures_detailed(specs, &opts);
    let (figures, timing) = (suite.figures, suite.timing);

    for figure in &figures {
        if as_json {
            println!("{}", figure_to_json(figure));
            continue;
        }
        println!("{figure}");
        if print_series {
            for (label, series) in &figure.series {
                println!("-- series {label} ({} samples)", series.len());
                for s in series.samples() {
                    if s.value != 0.0 {
                        println!("{:.1}us {:.2}", s.at.as_us_f64(), s.value);
                    }
                }
            }
        }
        if !as_json {
            println!();
        }
    }

    if metrics {
        // Per-cell metrics in declaration order, one NDJSON line each.
        // Deterministic (byte-identical across --jobs values), so it
        // belongs on stdout with the figures.
        for cell in &suite.cells {
            println!("{}", cell_metrics_line(cell));
        }
    }

    // Timing goes to stderr so stdout stays a pure function of the figure
    // results (byte-identical across --jobs values).
    if timings {
        eprintln!("{}", suite_timing_to_json(&timing));
    } else {
        let cpu = timing.cpu_total();
        // cpu/wall is the mean number of in-flight cells, which equals the
        // speedup only when the host has that many free cores.
        eprintln!(
            "[{} cells on {} worker(s): wall {:.1?}, cell time {:.1?}, concurrency {:.2}x]",
            timing.figures.iter().map(|f| f.cells.len()).sum::<usize>(),
            timing.jobs,
            timing.wall,
            cpu,
            cpu.as_secs_f64() / timing.wall.as_secs_f64().max(1e-9),
        );
    }
    ExitCode::SUCCESS
}
