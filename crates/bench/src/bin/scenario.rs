//! Run a built-in multi-tenant scenario and print its JSON report.
//!
//! ```text
//! cargo run -p idio-bench --release --bin scenario -- --list
//! cargo run -p idio-bench --release --bin scenario -- noisy-neighbor --jobs 4
//! ```
//!
//! The report is byte-identical at any `--jobs` (cell seeds derive from
//! stable labels), so the output can be diffed against the golden copies
//! under `tests/golden/scenario_<name>.json`.

use std::process::ExitCode;

use idio_core::sweep::{SweepOptions, DEFAULT_ROOT_SEED};
use idio_scenario::{builtin, builtins, run_scenario};

struct Args {
    list: bool,
    name: Option<String>,
    jobs: usize,
    seed: u64,
    out: Option<String>,
    progress: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            list: false,
            name: None,
            jobs: 1,
            seed: DEFAULT_ROOT_SEED,
            out: None,
            progress: false,
        }
    }
}

fn usage() {
    println!(
        "usage: scenario [--list] [<name>] [options]\n\
         --list             list the built-in scenarios and exit\n\
         --jobs <n> | -j    worker threads (0 = all cores; default 1)\n\
         --seed <n>         root seed cell seeds derive from (default {DEFAULT_ROOT_SEED:#x})\n\
         --out <file>       write the JSON report to <file> instead of stdout\n\
         --progress         print one line per finished cell to stderr"
    );
}

fn parse() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--list" => args.list = true,
            "--jobs" | "-j" => args.jobs = val("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(val("--out")?),
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            name if args.name.is_none() => args.name = Some(name.to_string()),
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for sc in builtins() {
            println!("{:<16} {}", sc.name, sc.description);
        }
        return ExitCode::SUCCESS;
    }

    let Some(name) = args.name else {
        eprintln!("error: no scenario named\n");
        usage();
        return ExitCode::FAILURE;
    };
    let Some(scenario) = builtin(&name) else {
        let known: Vec<String> = builtins().into_iter().map(|s| s.name).collect();
        eprintln!(
            "error: unknown scenario '{name}' (built-ins: {})",
            known.join(", ")
        );
        return ExitCode::FAILURE;
    };

    let opts = SweepOptions {
        jobs: args.jobs,
        root_seed: args.seed,
        progress: args.progress,
        profile_events: false,
    };
    let report = match run_scenario(&scenario, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = format!("{}\n", report.to_json());
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: cannot write report to '{path}': {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }
    // SLO gate: a scenario whose tenants declared objectives fails the
    // invocation (after the report is written) when any bound is violated,
    // so CI can assert service levels with a plain exit-code check.
    let violations = report.slo_violations();
    if !violations.is_empty() {
        eprintln!("SLO violations:");
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
