//! Run, check, or list multi-tenant scenarios — built-in or from files.
//!
//! ```text
//! cargo run -p idio-bench --release --bin scenario -- list
//! cargo run -p idio-bench --release --bin scenario -- run noisy-neighbor --jobs 4
//! cargo run -p idio-bench --release --bin scenario -- run examples/scenarios/llc-duel.toml
//! cargo run -p idio-bench --release --bin scenario -- check examples/scenarios/datacenter-200.toml
//! ```
//!
//! The legacy spellings (`scenario --list`, `scenario <builtin>`) keep
//! working. A positional that names an existing file (or ends in `.toml`)
//! is parsed as a scenario file; anything else is looked up among the
//! built-ins.
//!
//! The report is byte-identical at any `--jobs` (cell seeds derive from
//! stable labels), so the output can be diffed against the golden copies
//! under `tests/golden/scenario_<name>.json`.

use std::process::ExitCode;

use idio_core::sweep::{SweepOptions, DEFAULT_ROOT_SEED};
use idio_scenario::{builtin, builtins, load_path, run_scenario, Scenario};

enum Command {
    Run,
    Check,
    List,
}

struct Args {
    command: Command,
    name: Option<String>,
    jobs: usize,
    seed: u64,
    out: Option<String>,
    progress: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            command: Command::Run,
            name: None,
            jobs: 1,
            seed: DEFAULT_ROOT_SEED,
            out: None,
            progress: false,
        }
    }
}

fn usage() {
    println!(
        "usage: scenario [run|check|list] [<name-or-file.toml>] [options]\n\
         run <what>         run a scenario and print its JSON report (default)\n\
         check <file>       parse and validate a scenario file, run nothing\n\
         list               list the built-in scenarios and exit\n\
         --list             alias of the list subcommand\n\
         --jobs <n> | -j    worker threads (0 = all cores; default 1)\n\
         --seed <n>         root seed cell seeds derive from (default {DEFAULT_ROOT_SEED:#x})\n\
         --out <file>       write the JSON report to <file> instead of stdout\n\
         --progress         print one line per finished cell to stderr"
    );
}

fn parse() -> Result<Args, String> {
    let mut args = Args::default();
    let mut saw_command = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--list" => {
                args.command = Command::List;
                saw_command = true;
            }
            "--jobs" | "-j" => args.jobs = val("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(val("--out")?),
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            cmd if !saw_command && matches!(cmd, "run" | "check" | "list") => {
                args.command = match cmd {
                    "run" => Command::Run,
                    "check" => Command::Check,
                    _ => Command::List,
                };
                saw_command = true;
            }
            name if args.name.is_none() => {
                // Legacy spelling: a bare name implies `run <name>`.
                saw_command = true;
                args.name = Some(name.to_string());
            }
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    Ok(args)
}

/// Whether a positional argument refers to a scenario file rather than a
/// built-in name.
fn is_file(name: &str) -> bool {
    name.ends_with(".toml") || std::path::Path::new(name).is_file()
}

/// Resolves a positional to a scenario: file path or built-in name.
fn resolve(name: &str) -> Result<Scenario, String> {
    if is_file(name) {
        return load_path(name).map_err(|e| e.at_path(name));
    }
    builtin(name).ok_or_else(|| {
        let known: Vec<String> = builtins().into_iter().map(|s| s.name).collect();
        format!(
            "unknown scenario '{name}' (built-ins: {}; or pass a .toml file)",
            known.join(", ")
        )
    })
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };

    if matches!(args.command, Command::List) {
        for sc in builtins() {
            println!("{:<16} {}", sc.name, sc.description);
        }
        return ExitCode::SUCCESS;
    }

    let Some(name) = args.name else {
        eprintln!("error: no scenario named\n");
        usage();
        return ExitCode::FAILURE;
    };
    let scenario = match resolve(&name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if matches!(args.command, Command::Check) {
        if let Err(e) = scenario.validate() {
            eprintln!("error: {name}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "ok: {}: {} tenants, {} cells, {} cores",
            scenario.name,
            scenario.tenants.len(),
            scenario.tenants.len() + 1,
            scenario.num_cores()
        );
        return ExitCode::SUCCESS;
    }

    let opts = SweepOptions {
        jobs: args.jobs,
        root_seed: args.seed,
        progress: args.progress,
        profile_events: false,
    };
    let report = match run_scenario(&scenario, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = format!("{}\n", report.to_json());
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: cannot write report to '{path}': {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }
    // SLO gate: a scenario whose tenants declared objectives fails the
    // invocation (after the report is written) when any bound is violated,
    // so CI can assert service levels with a plain exit-code check.
    let violations = report.slo_violations();
    if !violations.is_empty() {
        eprintln!("SLO violations:");
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
