//! Run a custom IDIO simulation from the command line.
//!
//! ```text
//! cargo run -p idio-bench --release --bin simulate -- \
//!     --policy idio --nf touchdrop --rate 25 --bursty --ring 1024 \
//!     --packet 1514 --cores 2 --duration-ms 20 --antagonist
//! ```
//!
//! Prints the run report (transaction totals, latency percentiles, burst
//! processing times) for the configured scenario.

use std::process::ExitCode;

use idio_core::config::SystemConfig;
use idio_core::net::gen::{BurstSpec, TrafficPattern};
use idio_core::net::packet::Dscp;
use idio_core::policy::{PolicySpec, SteeringPolicy};
use idio_core::pool::PoolSpec;
use idio_core::stack::nf::{NfChain, NfKind};
use idio_core::sweep::{run_cells, SweepCell, SweepOptions};
use idio_core::system::System;
use idio_engine::telemetry::{records_to_ndjson, TraceFilter};
use idio_engine::time::{Duration, SimTime};

struct Args {
    policy: SteeringPolicy,
    queue_policies: Vec<(usize, SteeringPolicy)>,
    nf: NfKind,
    pool: Option<PoolSpec>,
    queue_pools: Vec<(usize, PoolSpec)>,
    rate_gbps: f64,
    bursty: bool,
    poisson: bool,
    ring: u32,
    packet: u16,
    cores: usize,
    duration_ms: u64,
    antagonist: bool,
    class1: bool,
    mlc_thr_mtps: Option<f64>,
    seed: u64,
    all_policies: bool,
    jobs: usize,
    trace: TraceFilter,
    trace_out: Option<String>,
    tick_metrics: bool,
    tick_metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            policy: SteeringPolicy::Idio,
            queue_policies: Vec::new(),
            nf: NfKind::TouchDrop,
            pool: None,
            queue_pools: Vec::new(),
            rate_gbps: 25.0,
            bursty: true,
            poisson: false,
            ring: 1024,
            packet: 1514,
            cores: 2,
            duration_ms: 20,
            antagonist: false,
            class1: false,
            mlc_thr_mtps: None,
            seed: 0xD10,
            all_policies: false,
            jobs: 1,
            trace: TraceFilter::off(),
            trace_out: None,
            tick_metrics: false,
            tick_metrics_out: None,
        }
    }
}

fn usage() {
    println!(
        "usage: simulate [options]\n\
         --policy ddio|invalidate|prefetch|static|idio|iat (default idio)\n\
         --queue-policy <q>=<policy>                     per-queue override of --policy\n\
                                                         (repeatable; queue q runs <policy>)\n\
         --nf touchdrop|l2fwd|payload-drop|copy|deepfwd|chain\n\
                                                         (default touchdrop; chain = the UPF\n\
                                                         parse>classify>rewrite>forward pipeline)\n\
         --pool dram|recycle|recycle:<slots>             mbuf pool for every queue (default: the\n\
                                                         implicit status quo, no pool telemetry)\n\
         --queue-pool <q>=<pool>                         per-queue override of --pool (repeatable)\n\
         --rate <gbps>                                   (default 25)\n\
         --bursty | --steady | --poisson                 (default bursty)\n\
         --ring <slots>                                  (default 1024)\n\
         --packet <bytes>                                (default 1514)\n\
         --cores <n>                                     (default 2)\n\
         --duration-ms <ms>                              (default 20)\n\
         --antagonist                                    co-run LLCAntagonist\n\
         --class1                                        mark flows app class 1\n\
         --mlc-thr <mtps>                                override mlcTHR\n\
         --seed <n>                                      PRNG seed\n\
         --all-policies                                  run every policy and compare\n\
         --jobs <n>                                      worker threads for --all-policies (0 = all cores)\n\
         --trace <filter>                                dump NDJSON trace to stdout after the report;\n\
                                                         filter is 'all' or components like 'steer,fsm'\n\
                                                         (steer fsm prefetch maint event); ignored with\n\
                                                         --all-policies\n\
         --trace-out <file>                              write the NDJSON trace to <file> instead of\n\
                                                         stdout (requires --trace)\n\
         --tick-metrics                                  dump one NDJSON line per control tick\n\
                                                         (steering-mix delta, per-core FSM states,\n\
                                                         CAT timeline) after the report; deterministic\n\
         --tick-metrics-out <file>                       write the tick-metrics NDJSON to <file>\n\
                                                         instead of stdout (implies --tick-metrics)"
    );
}

/// Parses a pool spec: `dram`, `recycle`, or `recycle:<slots>` (the same
/// shapes the scenario-file `pool` key accepts).
fn parse_pool(s: &str) -> Result<PoolSpec, String> {
    match s {
        "dram" => Ok(PoolSpec::Dram),
        "recycle" => Ok(PoolSpec::Recycle { slots: None }),
        _ => match s.strip_prefix("recycle:") {
            Some(n) => {
                let slots: u32 = n.parse().map_err(|_| format!("bad slot count '{n}'"))?;
                if slots == 0 {
                    return Err("recycle pool needs at least one slot".into());
                }
                Ok(PoolSpec::Recycle { slots: Some(slots) })
            }
            None => Err(format!(
                "unknown pool '{s}' (expected dram|recycle|recycle:<slots>)"
            )),
        },
    }
}

fn parse() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match a.as_str() {
            "--policy" => {
                let name = val("--policy")?;
                args.policy = SteeringPolicy::from_name(&name)
                    .ok_or_else(|| format!("unknown policy '{name}'"))?;
            }
            "--queue-policy" => {
                let spec = val("--queue-policy")?;
                let (q, name) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--queue-policy expects <q>=<policy>, got '{spec}'"))?;
                let q: usize = q
                    .parse()
                    .map_err(|e| format!("bad queue index '{q}': {e}"))?;
                let p = SteeringPolicy::from_name(name)
                    .ok_or_else(|| format!("unknown policy '{name}'"))?;
                args.queue_policies.push((q, p));
            }
            "--nf" => {
                args.nf = match val("--nf")?.to_lowercase().as_str() {
                    "touchdrop" => NfKind::TouchDrop,
                    "l2fwd" => NfKind::L2Fwd,
                    "payload-drop" | "payloaddrop" => NfKind::L2FwdPayloadDrop,
                    "copy" => NfKind::TouchDropCopy,
                    "deepfwd" => NfKind::DeepFwd,
                    "chain" => NfKind::Chain(NfChain::upf()),
                    other => return Err(format!("unknown nf '{other}'")),
                }
            }
            "--pool" => args.pool = Some(parse_pool(&val("--pool")?)?),
            "--queue-pool" => {
                let spec = val("--queue-pool")?;
                let (q, pool) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--queue-pool expects <q>=<pool>, got '{spec}'"))?;
                let q: usize = q
                    .parse()
                    .map_err(|e| format!("bad queue index '{q}': {e}"))?;
                args.queue_pools.push((q, parse_pool(pool)?));
            }
            "--rate" => args.rate_gbps = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--bursty" => args.bursty = true,
            "--steady" => args.bursty = false,
            "--poisson" => {
                args.bursty = false;
                args.poisson = true;
            }
            "--ring" => args.ring = val("--ring")?.parse().map_err(|e| format!("{e}"))?,
            "--packet" => args.packet = val("--packet")?.parse().map_err(|e| format!("{e}"))?,
            "--cores" => args.cores = val("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => {
                args.duration_ms = val("--duration-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--antagonist" => args.antagonist = true,
            "--class1" => args.class1 = true,
            "--mlc-thr" => {
                args.mlc_thr_mtps = Some(val("--mlc-thr")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--trace" => args.trace = val("--trace")?.parse()?,
            "--trace-out" => args.trace_out = Some(val("--trace-out")?),
            "--tick-metrics" => args.tick_metrics = true,
            "--tick-metrics-out" => {
                args.tick_metrics = true;
                args.tick_metrics_out = Some(val("--tick-metrics-out")?);
            }
            "--all-policies" => args.all_policies = true,
            "--jobs" | "-j" => args.jobs = val("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other if other.starts_with("--trace=") => {
                args.trace = other["--trace=".len()..].parse()?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };

    // Validate the trace sink *before* the (potentially long) simulation:
    // an unwritable path must fail cleanly up front, not after minutes of
    // simulated time.
    let mut trace_sink = match &args.trace_out {
        Some(path) => {
            if args.trace.is_off() {
                eprintln!("error: --trace-out requires --trace");
                return ExitCode::FAILURE;
            }
            if args.all_policies {
                eprintln!("error: --trace-out cannot be combined with --all-policies");
                return ExitCode::FAILURE;
            }
            match std::fs::File::create(path) {
                Ok(f) => Some((path.clone(), f)),
                Err(e) => {
                    eprintln!("error: cannot create trace file '{path}': {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let mut tick_sink = match &args.tick_metrics_out {
        Some(path) => {
            if args.all_policies {
                eprintln!("error: --tick-metrics-out cannot be combined with --all-policies");
                return ExitCode::FAILURE;
            }
            match std::fs::File::create(path) {
                Ok(f) => Some((path.clone(), f)),
                Err(e) => {
                    eprintln!("error: cannot create tick-metrics file '{path}': {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    if args.tick_metrics && args.all_policies {
        eprintln!("error: --tick-metrics cannot be combined with --all-policies");
        return ExitCode::FAILURE;
    }

    let period = Duration::from_ms(5);
    let traffic = if args.bursty {
        TrafficPattern::Bursty(BurstSpec::for_ring(
            args.ring,
            args.packet,
            args.rate_gbps,
            period,
        ))
    } else if args.poisson {
        TrafficPattern::Poisson {
            rate_gbps: args.rate_gbps,
            seed: args.seed,
        }
    } else {
        TrafficPattern::Steady {
            rate_gbps: args.rate_gbps,
        }
    };

    let mut cfg = SystemConfig::touchdrop_scenario(args.cores, traffic);
    cfg.ring_size = args.ring;
    cfg.duration = SimTime::from_ms(args.duration_ms);
    cfg.drain_grace = Duration::from_ms(5);
    cfg.seed = args.seed;
    for w in &mut cfg.workloads {
        w.kind = args.nf;
        w.packet_len = args.packet;
        w.pool = args.pool;
        if args.class1 {
            w.dscp = Dscp::CLASS1_DEFAULT;
        }
    }
    for &(q, pool) in &args.queue_pools {
        if q >= cfg.workloads.len() {
            eprintln!(
                "error: --queue-pool {q}=... names a nonexistent queue (have {})",
                cfg.workloads.len()
            );
            return ExitCode::FAILURE;
        }
        cfg.workloads[q].pool = Some(pool);
    }
    if let Some(thr) = args.mlc_thr_mtps {
        cfg.idio = cfg.idio.with_mlc_thr_mtps(thr);
    }
    cfg.trace = args.trace.clone();
    cfg.tick_metrics = args.tick_metrics;
    cfg = cfg.with_policy(args.policy);
    for &(q, p) in &args.queue_policies {
        if q >= cfg.workloads.len() {
            eprintln!(
                "error: --queue-policy {q}={} names a nonexistent queue (have {})",
                p.label().to_lowercase(),
                cfg.workloads.len()
            );
            return ExitCode::FAILURE;
        }
        cfg.queue_policies.insert(q, PolicySpec::Preset(p));
    }
    if args.all_policies && !args.queue_policies.is_empty() {
        eprintln!("error: --queue-policy cannot be combined with --all-policies");
        return ExitCode::FAILURE;
    }
    if args.antagonist {
        cfg = cfg.with_antagonist();
    }

    if args.all_policies {
        let cells: Vec<SweepCell> = SteeringPolicy::ALL
            .into_iter()
            .map(|policy| {
                SweepCell::new(
                    format!("simulate/{}", policy.label()),
                    cfg.clone().with_policy(policy),
                )
            })
            .collect();
        let opts = SweepOptions {
            jobs: args.jobs,
            root_seed: args.seed,
            progress: false,
            profile_events: false,
        };
        println!(
            "comparing {} policies on {} worker(s), seed {:#x}:",
            cells.len(),
            opts.effective_jobs(),
            args.seed
        );
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "policy", "mlc_wb", "llc_wb", "dram_wr", "self_inv", "p99_us", "wall"
        );
        for (policy, o) in SteeringPolicy::ALL.into_iter().zip(run_cells(cells, &opts)) {
            let p99 = o
                .report
                .p99()
                .map(|d| format!("{:.1}", d.as_us_f64()))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8.1?}",
                policy.label(),
                o.report.totals.mlc_wb,
                o.report.totals.llc_wb,
                o.report.totals.dram_wr,
                o.report.totals.self_inval,
                p99,
                o.wall,
            );
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "simulating: {} x {} {} at {} Gbps ({}), ring {}, {} B packets, {} ms{}",
        args.cores,
        args.nf,
        args.policy,
        args.rate_gbps,
        if args.bursty {
            "bursty"
        } else if args.poisson {
            "poisson"
        } else {
            "steady"
        },
        args.ring,
        args.packet,
        args.duration_ms,
        if args.antagonist {
            ", + antagonist"
        } else {
            ""
        },
    );
    let report = System::new(cfg).run();
    print!("{report}");
    if !report.bursts.is_empty() {
        println!("bursts:");
        for b in report.bursts.iter().take(8) {
            println!(
                "  #{:<3} dma {:>10} .. {:>10}  exec_end {:>10}  exe {}  pkts {}",
                b.index,
                format!("{}", b.first_dma),
                format!("{}", b.dma_end),
                format!("{}", b.exec_end),
                b.exe_time(),
                b.packets
            );
        }
    }
    let share = &report.timelines.dma_llc_share;
    if !share.is_empty() {
        println!(
            "dma share of LLC capacity: mean {:.3}, max {:.3}",
            share.mean(),
            share.max_value()
        );
    }
    if !args.trace.is_off() {
        // NDJSON trace dump: deterministic, so it goes to stdout (or the
        // --trace-out file). The summary stays on stderr to keep stdout
        // machine-readable.
        eprintln!(
            "[trace: {} records kept, {} evicted (filter {})]",
            report.trace.len(),
            report.metrics.counter("trace.evicted"),
            args.trace
        );
        let ndjson = records_to_ndjson(&report.trace);
        match &mut trace_sink {
            Some((path, f)) => {
                use std::io::Write;
                if let Err(e) = f.write_all(ndjson.as_bytes()) {
                    eprintln!("error: cannot write trace to '{path}': {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[trace written to {path}]");
            }
            None => print!("{ndjson}"),
        }
    }
    if args.tick_metrics {
        // Per-control-tick NDJSON timeline: deterministic (a pure function
        // of the configuration and seed), one object per 1 µs tick.
        eprintln!(
            "[tick-metrics: {} control ticks]",
            report.tick_metrics.len()
        );
        let mut ndjson = String::new();
        for line in &report.tick_metrics {
            ndjson.push_str(line);
            ndjson.push('\n');
        }
        match &mut tick_sink {
            Some((path, f)) => {
                use std::io::Write;
                if let Err(e) = f.write_all(ndjson.as_bytes()) {
                    eprintln!("error: cannot write tick metrics to '{path}': {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("[tick metrics written to {path}]");
            }
            None => print!("{ndjson}"),
        }
    }
    ExitCode::SUCCESS
}
