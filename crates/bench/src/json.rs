//! Minimal JSON serialisation for figure results (no external
//! dependencies), so `repro --json` output can be piped straight into
//! plotting scripts.

use idio_core::experiments::FigureResult;
use idio_core::sweep::{CellMetrics, SuiteTiming};

/// Escapes a string for JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest roundtrip representation Rust offers.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no infinities; encode as null.
        "null".to_string()
    }
}

/// Renders one figure result as a JSON object:
///
/// ```json
/// {
///   "id": "fig9",
///   "title": "...",
///   "columns": ["rate", "policy", ...],
///   "rows": [["100G", "DDIO", ...], ...],
///   "series": {"100_DDIO_mlc_wb": [[10.0, 92.5], ...]}
/// }
/// ```
///
/// Series samples are `[time_us, value]` pairs.
///
/// # Examples
///
/// ```
/// use idio_bench::json::figure_to_json;
/// use idio_core::experiments;
///
/// let json = figure_to_json(&experiments::table2());
/// assert!(json.contains("\"id\": \"table2\""));
/// assert!(json.contains("TouchDrop"));
/// ```
pub fn figure_to_json(fig: &FigureResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"id\": {},\n", json_string(fig.id)));
    out.push_str(&format!("  \"title\": {},\n", json_string(&fig.title)));

    let cols: Vec<String> = fig.columns.iter().map(|c| json_string(c)).collect();
    out.push_str(&format!("  \"columns\": [{}],\n", cols.join(", ")));

    let rows: Vec<String> = fig
        .rows
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
            format!("    [{}]", cells.join(", "))
        })
        .collect();
    out.push_str(&format!("  \"rows\": [\n{}\n  ],\n", rows.join(",\n")));

    let series: Vec<String> = fig
        .series
        .iter()
        .map(|(name, ts)| {
            let samples: Vec<String> = ts
                .samples()
                .iter()
                .map(|s| format!("[{}, {}]", json_f64(s.at.as_us_f64()), json_f64(s.value)))
                .collect();
            format!("    {}: [{}]", json_string(name), samples.join(", "))
        })
        .collect();
    out.push_str(&format!("  \"series\": {{\n{}\n  }}\n", series.join(",\n")));
    out.push('}');
    out
}

/// Renders one cell's final metrics as the NDJSON line `repro --metrics`
/// emits, e.g. `{"cell":"fig9/100G/DDIO","metrics":{...}}`.
///
/// The golden harness blesses these exact lines, so the repro binary and
/// the regression test must share this rendering.
pub fn cell_metrics_line(cell: &CellMetrics) -> String {
    format!(
        "{{\"cell\":{},\"metrics\":{}}}",
        json_string(&cell.label),
        cell.metrics.to_json()
    )
}

/// Renders a list of figures as a JSON array.
pub fn figures_to_json(figs: &[FigureResult]) -> String {
    let items: Vec<String> = figs.iter().map(figure_to_json).collect();
    format!("[\n{}\n]", items.join(",\n"))
}

/// Renders a sweep timing summary as a JSON object:
///
/// ```json
/// {
///   "wall_ms": 1234.5,
///   "jobs": 8,
///   "root_seed": 3344,
///   "cpu_ms": 9000.1,
///   "figures": [
///     {"id": "fig9", "cpu_ms": 800.0,
///      "cells": [{"label": "fig9/100G/DDIO", "wall_ms": 66.7}, ...]},
///     ...
///   ]
/// }
/// ```
///
/// Kept separate from the figure JSON: figure output is a deterministic
/// function of the configuration, timing is host noise.
pub fn suite_timing_to_json(timing: &SuiteTiming) -> String {
    let ms = |d: std::time::Duration| json_f64(d.as_secs_f64() * 1e3);
    let figures: Vec<String> = timing
        .figures
        .iter()
        .map(|f| {
            let cells: Vec<String> = f
                .cells
                .iter()
                .map(|c| {
                    // Per-event-type engine-loop profile: counts are
                    // deterministic; wall_ms is zero unless the sweep ran
                    // with event profiling on (repro --timings).
                    let events: Vec<String> = c
                        .events
                        .iter()
                        .filter(|e| e.count > 0)
                        .map(|e| {
                            format!(
                                "{{\"name\": {}, \"count\": {}, \"wall_ms\": {}}}",
                                json_string(e.name),
                                e.count,
                                ms(e.wall)
                            )
                        })
                        .collect();
                    format!(
                        "      {{\"label\": {}, \"wall_ms\": {}, \"events\": [{}]}}",
                        json_string(&c.label),
                        ms(c.wall),
                        events.join(", ")
                    )
                })
                .collect();
            format!(
                "    {{\"id\": {}, \"cpu_ms\": {}, \"cells\": [\n{}\n    ]}}",
                json_string(f.id),
                ms(f.cpu_total()),
                cells.join(",\n")
            )
        })
        .collect();
    format!(
        "{{\n  \"wall_ms\": {},\n  \"jobs\": {},\n  \"root_seed\": {},\n  \"cpu_ms\": {},\n  \"figures\": [\n{}\n  ]\n}}",
        ms(timing.wall),
        timing.jobs,
        timing.root_seed,
        ms(timing.cpu_total()),
        figures.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_core::experiments;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_valid_json() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0"); // "2" would also be valid; keep decimal
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn table_round_trips_structurally() {
        let json = figure_to_json(&experiments::table1());
        // Spot-check structure without a JSON parser dependency.
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"columns\"").count(), 1);
        assert_eq!(json.matches("\"rows\"").count(), 1);
        assert_eq!(json.matches("\"series\"").count(), 1);
        // Balanced braces and brackets.
        let braces = json.matches('{').count() as i64 - json.matches('}').count() as i64;
        assert_eq!(braces, 0);
        let brackets = json.matches('[').count() as i64 - json.matches(']').count() as i64;
        assert_eq!(brackets, 0);
    }

    #[test]
    fn array_of_figures() {
        let json = figures_to_json(&[experiments::table1(), experiments::table2()]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"table1\"") && json.contains("\"table2\""));
    }
}
