//! # idio-bench
//!
//! Benchmark harness for the IDIO reproduction. Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p idio-bench --release --bin
//!   repro -- [fig...]`) regenerates every table and figure of the paper's
//!   evaluation and prints them;
//! * the **micro benches** (`cargo bench`, [`micro`]) run one scaled-down
//!   experiment per figure so regressions in simulator behaviour or speed
//!   are caught continuously.
//!
//! The actual experiment drivers live in [`idio_core::experiments`]; this
//! crate only selects, times, and prints them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod micro;

use idio_core::experiments::{self, FigureResult, Scale};
use idio_core::sweep::FigureSpec;

/// Known experiment names, in paper order.
pub const EXPERIMENTS: [&str; 17] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig9",
    "fig10",
    "fig11",
    "direct-dram",
    "fig12",
    "fig13",
    "fig14",
    "future-work",
    "bloating",
    "copy-mode",
    "baselines",
    "ring-sweep",
    "packet-sweep",
];

/// Resolves one experiment name to its declarative sweep spec.
///
/// # Errors
///
/// Returns the unknown name back to the caller.
pub fn experiment_spec(name: &str, scale: Scale) -> Result<FigureSpec, String> {
    Ok(match name {
        "table1" => experiments::table1_spec(),
        "table2" => experiments::table2_spec(),
        "fig4" => experiments::fig4_spec(scale),
        "fig5" => experiments::fig5_spec(scale),
        "fig9" => experiments::fig9_spec(scale),
        "fig10" => experiments::fig10_spec(scale),
        "fig11" => experiments::fig11_spec(scale),
        "direct-dram" | "direct_dram" => experiments::direct_dram_spec(scale),
        "fig12" => experiments::fig12_spec(scale),
        "fig13" => experiments::fig13_spec(scale),
        "fig14" => experiments::fig14_spec(scale),
        "future-work" | "future_work" => experiments::future_work_spec(scale),
        "bloating" => experiments::bloating_spec(scale),
        "copy-mode" | "copy_mode" => experiments::copy_mode_spec(scale),
        "baselines" => experiments::baselines_spec(scale),
        "ring-sweep" | "ring_sweep" => experiments::ring_sweep_spec(scale),
        "packet-sweep" | "packet_sweep" => experiments::packet_sweep_spec(scale),
        other => return Err(format!("unknown experiment '{other}'")),
    })
}

/// Runs one experiment by name, serially.
///
/// # Errors
///
/// Returns the unknown name back to the caller.
pub fn run_experiment(name: &str, scale: Scale) -> Result<FigureResult, String> {
    Ok(experiment_spec(name, scale)?.run_serial())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve() {
        // Only the cheap table experiments actually run here; the rest are
        // validated by the integration suite and the repro binary.
        assert!(run_experiment("table1", Scale::quick()).is_ok());
        assert!(run_experiment("table2", Scale::quick()).is_ok());
        assert!(run_experiment("nope", Scale::quick()).is_err());
    }
}
