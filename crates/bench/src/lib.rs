//! # idio-bench
//!
//! Benchmark harness for the IDIO reproduction. Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p idio-bench --release --bin
//!   repro -- [fig...]`) regenerates every table and figure of the paper's
//!   evaluation and prints them;
//! * the **Criterion benches** (`cargo bench`) run one scaled-down
//!   experiment per figure so regressions in simulator behaviour or speed
//!   are caught continuously.
//!
//! The actual experiment drivers live in [`idio_core::experiments`]; this
//! crate only selects, times, and prints them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use idio_core::experiments::{self, FigureResult, Scale};

/// Known experiment names, in paper order.
pub const EXPERIMENTS: [&str; 17] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig9",
    "fig10",
    "fig11",
    "direct-dram",
    "fig12",
    "fig13",
    "fig14",
    "future-work",
    "bloating",
    "copy-mode",
    "baselines",
    "ring-sweep",
    "packet-sweep",
];

/// Runs one experiment by name.
///
/// # Errors
///
/// Returns the unknown name back to the caller.
pub fn run_experiment(name: &str, scale: Scale) -> Result<FigureResult, String> {
    Ok(match name {
        "table1" => experiments::table1(),
        "table2" => experiments::table2(),
        "fig4" => experiments::fig4(scale),
        "fig5" => experiments::fig5(scale),
        "fig9" => experiments::fig9(scale),
        "fig10" => experiments::fig10(scale),
        "fig11" => experiments::fig11(scale),
        "direct-dram" | "direct_dram" => experiments::direct_dram(scale),
        "fig12" => experiments::fig12(scale),
        "fig13" => experiments::fig13(scale),
        "fig14" => experiments::fig14(scale),
        "future-work" | "future_work" => experiments::future_work(scale),
        "bloating" => experiments::bloating(scale),
        "copy-mode" | "copy_mode" => experiments::copy_mode(scale),
        "baselines" => experiments::baselines(scale),
        "ring-sweep" | "ring_sweep" => experiments::ring_sweep(scale),
        "packet-sweep" | "packet_sweep" => experiments::packet_sweep(scale),
        other => return Err(format!("unknown experiment '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_resolve() {
        // Only the cheap table experiments actually run here; the rest are
        // validated by the integration suite and the repro binary.
        assert!(run_experiment("table1", Scale::quick()).is_ok());
        assert!(run_experiment("table2", Scale::quick()).is_ok());
        assert!(run_experiment("nope", Scale::quick()).is_err());
    }
}
