//! A minimal micro-benchmark harness for `harness = false` benches.
//!
//! The build environment has no crates.io access, so the benches cannot
//! link Criterion. This harness keeps the same shape — named benchmarks,
//! `cargo bench [filter]` selection — with adaptive iteration counts and a
//! compact mean/min/max report.

use std::time::{Duration, Instant};

/// Runs named benchmarks selected by command-line filters.
///
/// Bare command-line arguments are treated as substring filters on the
/// benchmark name; `--`-prefixed flags (which `cargo bench` forwards, e.g.
/// `--bench`) are ignored.
pub struct Micro {
    filters: Vec<String>,
    /// Target measurement budget per benchmark.
    budget: Duration,
    ran: usize,
}

impl Micro {
    /// Builds the harness from `std::env::args`.
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with("--"))
            .collect();
        Micro {
            filters,
            budget: Duration::from_millis(400),
            ran: 0,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one benchmark: a warm-up call sizes the iteration count to the
    /// measurement budget, then timed iterations report mean/min/max.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // Warm-up + sizing.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        let mean = total / iters;
        println!(
            "{name:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({iters} iters)"
        );
        self.ran += 1;
    }

    /// Prints the summary footer; call once after all benchmarks.
    pub fn finish(self) {
        if self.ran == 0 {
            println!(
                "no benchmarks matched filter(s): {}",
                self.filters.join(", ")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_select_by_substring() {
        let m = Micro {
            filters: vec!["fig4".into()],
            budget: Duration::from_millis(1),
            ran: 0,
        };
        assert!(m.selected("fig4_steady"));
        assert!(!m.selected("fig5_burst"));
    }

    #[test]
    fn empty_filter_selects_everything() {
        let m = Micro {
            filters: Vec::new(),
            budget: Duration::from_millis(1),
            ran: 0,
        };
        assert!(m.selected("anything"));
    }
}
