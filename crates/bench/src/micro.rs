//! A minimal micro-benchmark harness for `harness = false` benches.
//!
//! The build environment has no crates.io access, so the benches cannot
//! link Criterion. This harness keeps the same shape — named benchmarks,
//! `cargo bench [filter]` selection — with adaptive iteration counts and a
//! compact mean/min/max report.

use std::time::{Duration, Instant};

/// Runs named benchmarks selected by command-line filters.
///
/// Bare command-line arguments are treated as substring filters on the
/// benchmark name; `--`-prefixed flags (which `cargo bench` forwards, e.g.
/// `--bench`) are ignored.
pub struct Micro {
    filters: Vec<String>,
    /// Target measurement budget per benchmark.
    budget: Duration,
    ran: usize,
}

impl Micro {
    /// Builds the harness from `std::env::args`.
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with("--"))
            .collect();
        Micro {
            filters,
            budget: Duration::from_millis(400),
            ran: 0,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one benchmark: a warm-up call sizes the iteration count to the
    /// measurement budget, then timed iterations report mean/min/max.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // Warm-up + sizing.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        let mean = total / iters;
        println!(
            "{name:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({iters} iters)"
        );
        self.ran += 1;
    }

    /// Prints the summary footer; call once after all benchmarks.
    pub fn finish(self) {
        if self.ran == 0 {
            println!(
                "no benchmarks matched filter(s): {}",
                self.filters.join(", ")
            );
        }
    }
}

/// Schema tag written into every `BENCH_*.json` file.
pub const BENCH_SCHEMA: &str = "idio-bench/1";

/// Wall-time statistics for one benchmark over repeated runs.
///
/// Percentiles use the nearest-rank rule over the sorted run times, so
/// small run counts stay meaningful: with 5 runs the median is the third
/// fastest and the p90 the slowest.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Benchmark name, e.g. `event_queue/monotonic`.
    pub name: String,
    /// Number of timed runs behind the statistics.
    pub runs: usize,
    /// Nearest-rank median wall time, milliseconds.
    pub median_ms: f64,
    /// Nearest-rank 90th-percentile wall time, milliseconds.
    pub p90_ms: f64,
    /// Fastest run, milliseconds.
    pub min_ms: f64,
}

fn nearest_rank_ms(sorted: &[Duration], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1].as_secs_f64() * 1e3
}

impl RunStats {
    /// One-line JSON object (fixed key order, 3 decimal places).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"runs\": {}, \"median_ms\": {:.3}, \"p90_ms\": {:.3}, \"min_ms\": {:.3}}}",
            self.name, self.runs, self.median_ms, self.p90_ms, self.min_ms
        )
    }
}

/// Times `runs` calls of `f` and reduces them to [`RunStats`].
///
/// The workload should do its own setup inside `f` only if that setup is
/// part of what is being measured; `measure` adds nothing but the timer.
pub fn measure<R>(name: &str, runs: usize, mut f: impl FnMut() -> R) -> RunStats {
    assert!(runs > 0, "need at least one run");
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    RunStats {
        name: name.to_string(),
        runs,
        median_ms: nearest_rank_ms(&times, 50.0),
        p90_ms: nearest_rank_ms(&times, 90.0),
        min_ms: nearest_rank_ms(&times, 0.0001),
    }
}

/// One labelled set of benchmark results, e.g. everything measured at a
/// given commit ("pre-calendar-queue").
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Free-form label for this measurement point.
    pub label: String,
    /// Per-benchmark statistics, in execution order.
    pub entries: Vec<RunStats>,
}

impl Snapshot {
    fn render(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| format!("        {}", e.to_json()))
            .collect();
        format!(
            "    {{\n      \"label\": \"{}\",\n      \"entries\": [\n{}\n      ]\n    }}",
            self.label.replace('\\', "\\\\").replace('"', "\\\""),
            entries.join(",\n")
        )
    }
}

/// Marker at the end of every bench file this module writes; `append`
/// splices new snapshots in front of it.
const BENCH_TAIL: &str = "\n  ]\n}\n";

/// Renders a fresh `BENCH_*.json` document holding `snapshots`.
pub fn render_bench_file(suite: &str, snapshots: &[Snapshot]) -> String {
    let body: Vec<String> = snapshots.iter().map(Snapshot::render).collect();
    format!(
        "{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"suite\": \"{suite}\",\n  \"snapshots\": [\n{}{BENCH_TAIL}",
        body.join(",\n")
    )
}

/// Appends `snap` to an existing bench file's snapshot array.
///
/// The splice only trusts documents this module wrote itself (same schema
/// tag and structural tail); anything else is replaced wholesale so a
/// corrupt file can never poison later snapshots.
pub fn append_snapshot(existing: Option<&str>, suite: &str, snap: &Snapshot) -> String {
    if let Some(doc) = existing {
        let recognised =
            doc.contains(&format!("\"schema\": \"{BENCH_SCHEMA}\"")) && doc.ends_with(BENCH_TAIL);
        if recognised {
            let head = &doc[..doc.len() - BENCH_TAIL.len()];
            return format!("{head},\n{}{BENCH_TAIL}", snap.render());
        }
    }
    render_bench_file(suite, std::slice::from_ref(snap))
}

/// Extracts the most recent `median_ms` recorded for workload `name` from
/// a bench document written by [`render_bench_file`] /
/// [`append_snapshot`].
///
/// Snapshots are appended chronologically, so the *last* entry line naming
/// the workload is the newest baseline. Returns `None` when the document
/// never measured that workload (or isn't a bench file at all) — callers
/// gating CI on the ratio should treat that as "no baseline, cannot gate".
pub fn last_entry_median(doc: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = doc.lines().rev().find(|l| l.contains(&needle))?;
    let rest = line.split("\"median_ms\": ").nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_select_by_substring() {
        let m = Micro {
            filters: vec!["fig4".into()],
            budget: Duration::from_millis(1),
            ran: 0,
        };
        assert!(m.selected("fig4_steady"));
        assert!(!m.selected("fig5_burst"));
    }

    #[test]
    fn empty_filter_selects_everything() {
        let m = Micro {
            filters: Vec::new(),
            budget: Duration::from_millis(1),
            ran: 0,
        };
        assert!(m.selected("anything"));
    }

    #[test]
    fn nearest_rank_matches_hand_cases() {
        let runs: Vec<Duration> = (1..=5).map(Duration::from_millis).collect();
        assert_eq!(nearest_rank_ms(&runs, 50.0), 3.0);
        assert_eq!(nearest_rank_ms(&runs, 90.0), 5.0);
        let one = [Duration::from_millis(7)];
        assert_eq!(nearest_rank_ms(&one, 50.0), 7.0);
        assert_eq!(nearest_rank_ms(&one, 90.0), 7.0);
    }

    #[test]
    fn measure_produces_ordered_stats() {
        let s = measure("busy", 5, || std::hint::black_box((0..500).sum::<u64>()));
        assert_eq!(s.runs, 5);
        assert!(s.min_ms <= s.median_ms && s.median_ms <= s.p90_ms);
        assert!(s.to_json().starts_with("{\"name\": \"busy\""));
    }

    fn snap(label: &str) -> Snapshot {
        Snapshot {
            label: label.to_string(),
            entries: vec![RunStats {
                name: "w".into(),
                runs: 3,
                median_ms: 1.0,
                p90_ms: 2.0,
                min_ms: 0.5,
            }],
        }
    }

    #[test]
    fn append_splices_into_own_format() {
        let doc = render_bench_file("engine", &[snap("pre")]);
        let merged = append_snapshot(Some(&doc), "engine", &snap("post"));
        assert_eq!(merged.matches("\"label\"").count(), 2);
        assert!(merged.contains("\"pre\"") && merged.contains("\"post\""));
        assert!(merged.ends_with(BENCH_TAIL));
        // Appending twice keeps splicing cleanly.
        let thrice = append_snapshot(Some(&merged), "engine", &snap("later"));
        assert_eq!(thrice.matches("\"label\"").count(), 3);
        // Balanced structure without a JSON parser dependency.
        assert_eq!(thrice.matches('{').count(), thrice.matches('}').count());
        assert_eq!(thrice.matches('[').count(), thrice.matches(']').count());
    }

    #[test]
    fn append_replaces_unrecognised_documents() {
        let merged = append_snapshot(Some("not json at all"), "engine", &snap("post"));
        assert!(merged.starts_with("{\n  \"schema\""));
        assert_eq!(merged.matches("\"label\"").count(), 1);
    }

    #[test]
    fn last_entry_median_reads_newest_snapshot() {
        let mut old = snap("pre");
        old.entries[0].median_ms = 100.0;
        let mut new = snap("post");
        new.entries[0].median_ms = 42.5;
        let doc = render_bench_file("engine", &[old, new]);
        assert_eq!(last_entry_median(&doc, "w"), Some(42.5));
        assert_eq!(last_entry_median(&doc, "missing"), None);
        assert_eq!(last_entry_median("not a bench file", "w"), None);
    }
}
