//! Process-level tests of the `scenario` binary: exit codes, error
//! rendering, and cross-process determinism of generated scenarios.
//!
//! These run the real executable (via `CARGO_BIN_EXE_scenario`), so they
//! cover what CI scripts and users actually observe — `scenario check`
//! failing with `file:line:col`, `scenario list` output staying stable,
//! and a `[generate]` scenario producing byte-identical reports in two
//! separate invocations at different worker counts.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scenario_bin() -> &'static str {
    env!("CARGO_BIN_EXE_scenario")
}

fn repo_root() -> PathBuf {
    // crates/bench → crates → repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate sits two levels under the repo root")
        .to_path_buf()
}

fn run(args: &[&str]) -> Output {
    Command::new(scenario_bin())
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("scenario binary runs")
}

#[test]
fn check_accepts_every_example_file() {
    let dir = repo_root().join("examples/scenarios");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples dir exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let out = run(&["check", path.to_str().expect("utf-8 path")]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{}: check failed\nstdout: {stdout}\nstderr: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout.starts_with("ok: "), "{}: {stdout}", path.display());
        checked += 1;
    }
    assert!(
        checked >= 6,
        "all example files were checked, got {checked}"
    );
}

#[test]
fn check_rejects_each_bad_corpus_file_naming_line_and_column() {
    let dir = repo_root().join("tests/scenario_files/bad");
    let mut rejected = 0;
    for entry in std::fs::read_dir(&dir).expect("bad corpus dir exists") {
        let path = entry.expect("readable entry").path();
        let arg = path.to_str().expect("utf-8 path");
        let out = run(&["check", arg]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "{}: check must fail\nstdout: {}",
            path.display(),
            String::from_utf8_lossy(&out.stdout)
        );
        // Every corpus error is positioned: `error: <path>:<line>:<col>: …`.
        let prefix = format!("error: {arg}:");
        let rest = stderr
            .strip_prefix(&prefix)
            .unwrap_or_else(|| panic!("{}: stderr '{stderr}' lacks '{prefix}'", path.display()));
        let mut parts = rest.splitn(3, ':');
        let line: u32 = parts
            .next()
            .unwrap_or("")
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{}: no line number in '{stderr}'", path.display()));
        let col: u32 = parts
            .next()
            .unwrap_or("")
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{}: no column number in '{stderr}'", path.display()));
        assert!(line >= 1 && col >= 1, "{}: {stderr}", path.display());
        rejected += 1;
    }
    assert_eq!(rejected, 12, "the whole corpus was exercised");
}

#[test]
fn list_output_is_stable() {
    let out = run(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 listing");
    let names: Vec<&str> = text
        .lines()
        .map(|l| l.split_whitespace().next().expect("name column"))
        .collect();
    assert_eq!(
        names,
        [
            "noisy-neighbor",
            "incast",
            "mixed-rate",
            "trace-replay",
            "llc-duel",
            "cat-duel",
            "upf-chain",
            "recycle-duel",
            "flow-churn"
        ],
        "built-in listing changed — update docs and this test together"
    );
    // The legacy spelling prints the identical listing.
    let legacy = run(&["--list"]);
    assert!(legacy.status.success());
    assert_eq!(legacy.stdout, text.as_bytes());
}

#[test]
fn unknown_scenario_fails_and_names_the_builtins() {
    let out = run(&["run", "no-such-scenario"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
    assert!(stderr.contains("noisy-neighbor"), "{stderr}");
    assert!(stderr.contains(".toml"), "{stderr}");
}

/// ScenarioGen's end-to-end determinism guarantee across *processes*: two
/// separate invocations of the binary on a `[generate]` scenario file,
/// at different worker counts, print byte-identical reports.
#[test]
fn generated_scenario_reports_are_identical_across_processes() {
    let dir = std::env::temp_dir().join(format!("idio-scenario-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let file = dir.join("gen-proc.toml");
    std::fs::write(
        &file,
        "name = \"gen-proc\"\n\
         description = \"cross-process determinism probe\"\n\
         duration_us = 60\n\
         drain_grace_us = 40\n\n\
         [generate]\n\
         tenants = 6\n\
         seed = 11\n\
         flows_per_tenant = 2\n\
         total_rate_gbps = 9.0\n\
         attacker_frac = 0.2\n",
    )
    .expect("write scenario file");
    let arg = file.to_str().expect("utf-8 path");

    let a = run(&["run", arg, "--jobs", "1"]);
    let b = run(&["run", arg, "--jobs", "4"]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert!(b.status.success(), "{}", String::from_utf8_lossy(&b.stderr));
    assert!(!a.stdout.is_empty());
    assert_eq!(
        a.stdout, b.stdout,
        "reports diverged across processes/worker counts"
    );
}
