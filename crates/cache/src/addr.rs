//! Physical addresses, cache-line addresses, pages, and core identifiers.

use std::fmt;
use std::ops::{Add, Sub};

/// Bytes per cache line (fixed at 64 across the modelled hierarchy).
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;
/// Bytes per page (4 KiB, used by the `Invalidatable` PTE bit).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A byte-granular physical address.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::{Addr, LINE_SIZE};
///
/// let a = Addr::new(0x1_0040);
/// assert_eq!(a.line().base().get(), 0x1_0040);
/// assert_eq!((a + 3).line(), a.line());
/// assert_ne!((a + LINE_SIZE).line(), a.line());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw byte value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// The page containing this address.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Whether the address is aligned to a cache-line boundary.
    #[inline]
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_SIZE)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granular address (byte address shifted right by 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Raw line number.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The page containing this line.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// The `n`-th line after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Iterates over the cache lines covering `[start, start + len)`.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::{lines_covering, Addr};
///
/// // 1514 bytes starting line-aligned cover 24 lines.
/// assert_eq!(lines_covering(Addr::new(0), 1514).count(), 24);
/// // An unaligned 64-byte span covers 2 lines.
/// assert_eq!(lines_covering(Addr::new(32), 64).count(), 2);
/// ```
pub fn lines_covering(start: Addr, len: u64) -> impl Iterator<Item = LineAddr> {
    let first = start.line().get();
    let last = if len == 0 {
        first
    } else {
        (start.get() + len - 1) >> LINE_SHIFT
    };
    let end = if len == 0 { first } else { last + 1 };
    (first..end).map(LineAddr::new)
}

/// A page-granular address (byte address shifted right by 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a raw page number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PageAddr(raw)
    }

    /// Raw page number.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The first byte address of this page.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// A physical core identifier.
///
/// IDIO's TLP encoding supports up to 63 cores (the all-ones pattern is
/// reserved for application class 1); this limit is enforced by the NIC
/// crate, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        CoreId(raw)
    }

    /// Raw index.
    #[inline]
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Index as `usize`, for container indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(raw: u16) -> Self {
        CoreId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_derivation() {
        let a = Addr::new(0x12345);
        assert_eq!(a.line().get(), 0x12345 >> 6);
        assert_eq!(a.page().get(), 0x12345 >> 12);
        assert_eq!(a.line().page(), a.page());
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr::new(100);
        assert_eq!(l.base().line(), l);
        assert!(l.base().is_line_aligned());
    }

    #[test]
    fn lines_covering_edges() {
        assert_eq!(lines_covering(Addr::new(0), 0).count(), 0);
        assert_eq!(lines_covering(Addr::new(0), 1).count(), 1);
        assert_eq!(lines_covering(Addr::new(0), 64).count(), 1);
        assert_eq!(lines_covering(Addr::new(0), 65).count(), 2);
        assert_eq!(lines_covering(Addr::new(63), 2).count(), 2);
        // 2 KiB DMA buffer covers 32 lines.
        assert_eq!(lines_covering(Addr::new(0x8000), 2048).count(), 32);
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(100);
        assert_eq!((a + 28) - a, 28);
    }

    #[test]
    fn core_id_conversions() {
        let c: CoreId = 3u16.into();
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "core3");
    }
}
