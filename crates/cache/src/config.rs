//! Cache hierarchy configuration (geometry, latency, way partitioning).

use crate::replacement::ReplacementKind;
use crate::set::WayMask;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in core cycles.
    pub latency_cycles: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    pub const fn new(size_bytes: u64, ways: usize, latency_cycles: u64) -> Self {
        CacheGeometry {
            size_bytes,
            ways,
            latency_cycles,
        }
    }

    /// Capacity in 64-byte lines.
    pub const fn lines(&self) -> u64 {
        self.size_bytes / crate::addr::LINE_SIZE
    }
}

/// Full hierarchy configuration.
///
/// The defaults follow the paper's Table I gem5 configuration with the
/// Fig. 5 LLC scaling: 64 KiB 2-way L1D (2 CC), 1 MiB 8-way MLC (12 CC),
/// and a 3 MiB 12-way shared LLC (24 CC) of which 2 ways are DDIO ways.
///
/// # Examples
///
/// ```
/// use idio_cache::config::HierarchyConfig;
///
/// let cfg = HierarchyConfig::paper_default(2);
/// assert_eq!(cfg.mlc_for_core(0).size_bytes, 1 << 20);
/// assert_eq!(cfg.llc.ways, 12);
/// assert_eq!(cfg.ddio_mask().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Number of cores (each with a private L1D and MLC).
    pub num_cores: usize,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Default private MLC (L2) geometry.
    pub mlc: CacheGeometry,
    /// Per-core MLC overrides (e.g. the 256 KiB MLC used for the
    /// LLCAntagonist core in Sec. VI). `None` means use [`Self::mlc`].
    pub mlc_overrides: Vec<Option<CacheGeometry>>,
    /// Shared LLC geometry (total, not per-core).
    pub llc: CacheGeometry,
    /// Number of LLC ways reserved for DDIO write-allocation (lowest ways).
    pub ddio_ways: usize,
    /// LLC ways core-demand fills and MLC victims may allocate into.
    /// Defaults to the complement of the DDIO ways: consumed DMA buffers
    /// bloat across the *non-DDIO* ways (Sec. III observation 3) while the
    /// DDIO partition stays reserved for inbound writes — keeping core
    /// victims out of the I/O ways, as CAT-based deployments (and IAT) set
    /// it up. The Fig. 4 `*_1way` configurations restrict this further.
    pub core_alloc_ways: Option<WayMask>,
    /// Replacement policy of the private caches (L1D and MLC).
    pub private_replacement: ReplacementKind,
    /// Replacement policy of the shared LLC.
    pub llc_replacement: ReplacementKind,
    /// Capacity of the MLC snoop-filter directory in entries; `None`
    /// models an unbounded directory. A bounded directory back-invalidates
    /// the MLC line whose entry is evicted to make room (the structure Yan
    /// et al. exploit in "Attack Directories, Not Caches").
    pub directory_entries: Option<usize>,
}

impl HierarchyConfig {
    /// The Table I configuration scaled to the Fig. 5 evaluation setup
    /// (3 MiB LLC), for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn paper_default(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        HierarchyConfig {
            num_cores,
            l1d: CacheGeometry::new(64 << 10, 2, 2),
            mlc: CacheGeometry::new(1 << 20, 8, 12),
            mlc_overrides: vec![None; num_cores],
            llc: CacheGeometry::new(3 << 20, 12, 24),
            ddio_ways: 2,
            core_alloc_ways: None,
            private_replacement: ReplacementKind::Lru,
            llc_replacement: ReplacementKind::Lru,
            directory_entries: None,
        }
    }

    /// The MLC geometry for a specific core, honouring overrides.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mlc_for_core(&self, core: usize) -> CacheGeometry {
        assert!(core < self.num_cores, "core {core} out of range");
        self.mlc_overrides
            .get(core)
            .copied()
            .flatten()
            .unwrap_or(self.mlc)
    }

    /// The DDIO way mask (lowest [`Self::ddio_ways`] ways).
    pub fn ddio_mask(&self) -> WayMask {
        WayMask::first(self.ddio_ways)
    }

    /// The way mask core demand fills and MLC victims allocate through
    /// (the non-DDIO ways unless overridden).
    pub fn core_mask(&self) -> WayMask {
        self.core_alloc_ways
            .unwrap_or_else(|| self.ddio_mask().complement(self.llc.ways))
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the configuration is invalid
    /// (zero cores, DDIO ways exceeding LLC associativity, capacities not
    /// divisible into sets, or an empty core allocation mask).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be positive".into());
        }
        if self.ddio_ways == 0 || self.ddio_ways > self.llc.ways {
            return Err(format!(
                "ddio_ways {} must be in 1..={}",
                self.ddio_ways, self.llc.ways
            ));
        }
        if self.core_mask().is_empty() {
            return Err("core allocation mask selects no LLC way".into());
        }
        for (geom, name) in [(self.l1d, "l1d"), (self.mlc, "mlc"), (self.llc, "llc")] {
            if geom.size_bytes % (crate::addr::LINE_SIZE * geom.ways as u64) != 0 {
                return Err(format!("{name} capacity not divisible into sets"));
            }
        }
        if self.directory_entries == Some(0) {
            return Err("directory must have at least one entry".into());
        }
        for (i, ov) in self.mlc_overrides.iter().enumerate() {
            if let Some(g) = ov {
                if g.size_bytes % (crate::addr::LINE_SIZE * g.ways as u64) != 0 {
                    return Err(format!("mlc override for core {i} not divisible into sets"));
                }
            }
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper_default(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let cfg = HierarchyConfig::paper_default(2);
        assert_eq!(cfg.l1d, CacheGeometry::new(65536, 2, 2));
        assert_eq!(cfg.mlc, CacheGeometry::new(1048576, 8, 12));
        assert_eq!(cfg.llc.latency_cycles, 24);
        assert_eq!(cfg.mlc.lines(), 16384);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn mlc_override_applies() {
        let mut cfg = HierarchyConfig::paper_default(3);
        cfg.mlc_overrides[1] = Some(CacheGeometry::new(256 << 10, 8, 12));
        assert_eq!(cfg.mlc_for_core(1).size_bytes, 256 << 10);
        assert_eq!(cfg.mlc_for_core(0).size_bytes, 1 << 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_ddio_ways() {
        let mut cfg = HierarchyConfig::paper_default(1);
        cfg.ddio_ways = 13;
        assert!(cfg.validate().is_err());
        cfg.ddio_ways = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_core_mask() {
        let mut cfg = HierarchyConfig::paper_default(1);
        cfg.core_alloc_ways = Some(WayMask::EMPTY);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn one_way_cat_config_validates() {
        let mut cfg = HierarchyConfig::paper_default(2);
        cfg.core_alloc_ways = Some(WayMask::range(2, 3));
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.core_mask().count(), 1);
    }
}
