//! The MLC snoop-filter directory ("Excl MLC" tags in Fig. 1).
//!
//! The LLC of a non-inclusive Skylake-class hierarchy keeps a directory of
//! cache lines that are valid in some core's MLC, so inbound PCIe writes and
//! cross-core requests can be filtered to the right private cache. We model
//! the directory as a map that is unbounded by default — directory-capacity
//! back-invalidations are orthogonal to the mechanisms IDIO adds — with an
//! optional entry bound ([`MlcDirectory::with_capacity`]) whose evictions
//! back-invalidate the displaced MLC lines.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::addr::{CoreId, LineAddr};

/// A multiplicative hasher for line addresses (fxhash-style). The
/// directory is probed on every DMA line and every MLC miss, and the
/// default SipHash dominates those lookups; line numbers need no
/// DoS resistance, only good avalanche, which one odd-constant multiply
/// provides. The map is never iterated, so hash order can't leak into
/// simulation results.
#[derive(Default)]
pub struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width integer keys are ever hashed here.
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The low bits of a multiply are weak; fold the high bits down
        // since HashMap buckets by the low bits.
        self.0 ^ (self.0 >> 32)
    }
}

type LineMap<V> = HashMap<LineAddr, V, BuildHasherDefault<LineHasher>>;

/// A set of core ids, sized at directory construction.
///
/// Systems up to 64 cores — every paper configuration — use a single
/// inline word with no allocation, keeping the per-DMA-line directory
/// probe as cheap as the raw `u64` mask it replaces. Wider systems (the
/// generated datacenter scenarios run 200+ cores) spill to one boxed
/// word per 64 cores.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::CoreId;
/// use idio_cache::directory::CoreSet;
///
/// let mut set = CoreSet::new(200);
/// set.insert(CoreId::new(7));
/// set.insert(CoreId::new(130));
/// assert!(set.contains(CoreId::new(130)));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![CoreId::new(7), CoreId::new(130)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSet(SetRepr);

#[derive(Debug, Clone, PartialEq, Eq)]
enum SetRepr {
    /// ≤ 64 cores: a plain bitmask.
    Inline(u64),
    /// > 64 cores: bit `c` lives in word `c / 64`.
    Spilled(Box<[u64]>),
}

impl CoreSet {
    /// Creates an empty set able to hold cores `0..num_cores`.
    pub fn new(num_cores: usize) -> Self {
        if num_cores <= 64 {
            CoreSet(SetRepr::Inline(0))
        } else {
            CoreSet(SetRepr::Spilled(vec![0u64; num_cores.div_ceil(64)].into()))
        }
    }

    fn words(&self) -> &[u64] {
        match &self.0 {
            SetRepr::Inline(w) => std::slice::from_ref(w),
            SetRepr::Spilled(ws) => ws,
        }
    }

    fn word_mut(&mut self, core: CoreId) -> &mut u64 {
        match &mut self.0 {
            SetRepr::Inline(w) => {
                debug_assert!(core.index() < 64);
                w
            }
            SetRepr::Spilled(ws) => &mut ws[core.index() / 64],
        }
    }

    /// Adds `core` to the set.
    #[inline]
    pub fn insert(&mut self, core: CoreId) {
        *self.word_mut(core) |= 1u64 << (core.index() % 64);
    }

    /// Removes `core` from the set.
    #[inline]
    pub fn remove(&mut self, core: CoreId) {
        *self.word_mut(core) &= !(1u64 << (core.index() % 64));
    }

    /// Whether `core` is in the set.
    #[inline]
    pub fn contains(&self, core: CoreId) -> bool {
        let w = self.words();
        w.get(core.index() / 64)
            .is_some_and(|word| word >> (core.index() % 64) & 1 == 1)
    }

    /// Whether the set holds no cores.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// The lowest-numbered core in the set, if any.
    pub fn first(&self) -> Option<CoreId> {
        self.iter().next()
    }

    /// The cores in the set, lowest id first.
    pub fn iter(&self) -> CoreSetIter<'_> {
        let words = self.words();
        CoreSetIter {
            rest: &words[1..],
            current: words[0],
            base: 0,
        }
    }
}

/// Iterator over the cores of a [`CoreSet`], lowest id first.
pub struct CoreSetIter<'a> {
    rest: &'a [u64],
    current: u64,
    base: u32,
}

impl Iterator for CoreSetIter<'_> {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        while self.current == 0 {
            let (&next, rest) = self.rest.split_first()?;
            self.current = next;
            self.rest = rest;
            self.base += 64;
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(CoreId::new((self.base + bit) as u16))
    }
}

impl<'a> IntoIterator for &'a CoreSet {
    type Item = CoreId;
    type IntoIter = CoreSetIter<'a>;

    fn into_iter(self) -> CoreSetIter<'a> {
        self.iter()
    }
}

/// Tracks which cores' MLCs hold each line.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::{CoreId, LineAddr};
/// use idio_cache::directory::MlcDirectory;
///
/// let mut dir = MlcDirectory::new(4);
/// let evicted = dir.add(LineAddr::new(7), CoreId::new(2));
/// assert!(evicted.is_none(), "unbounded directories never evict");
/// assert_eq!(dir.holder(LineAddr::new(7)), Some(CoreId::new(2)));
/// dir.remove(LineAddr::new(7), CoreId::new(2));
/// assert_eq!(dir.holder(LineAddr::new(7)), None);
/// ```
#[derive(Debug, Clone)]
pub struct MlcDirectory {
    entries: LineMap<CoreSet>,
    num_cores: usize,
    /// Maximum tracked lines; `None` = unbounded.
    capacity: Option<usize>,
    /// FIFO of insertion order (lazily cleaned), used for capacity
    /// evictions.
    order: std::collections::VecDeque<LineAddr>,
}

/// A directory entry displaced by a capacity conflict. The hierarchy must
/// back-invalidate the named cores' copies of the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryEviction {
    /// The line whose tracking entry was evicted.
    pub line: LineAddr,
    /// The cores holding the line.
    pub holders: CoreSet,
}

impl MlcDirectory {
    /// Creates an empty, unbounded directory for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds the `u16` core-id space.
    pub fn new(num_cores: usize) -> Self {
        Self::with_capacity(num_cores, None)
    }

    /// Creates a directory with a bounded entry count. Inserting beyond
    /// the bound evicts the oldest entry (FIFO) and reports it so the
    /// caller can back-invalidate the MLC copies — the behaviour that
    /// makes snoop-filter directories a shared resource worth attacking
    /// (Yan et al.).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds the `u16` core-id space,
    /// or if `capacity` is `Some(0)`.
    pub fn with_capacity(num_cores: usize, capacity: Option<usize>) -> Self {
        assert!(
            num_cores > 0 && num_cores <= usize::from(u16::MAX) + 1,
            "1..=65536 cores supported"
        );
        assert!(capacity != Some(0), "directory capacity must be positive");
        MlcDirectory {
            entries: LineMap::default(),
            num_cores,
            capacity,
            order: std::collections::VecDeque::new(),
        }
    }

    /// Records that `core`'s MLC now holds `line`. Returns the entry that
    /// had to be evicted to make room, if the directory is bounded and
    /// full.
    #[must_use = "a directory eviction requires back-invalidating MLC copies"]
    pub fn add(&mut self, line: LineAddr, core: CoreId) -> Option<DirectoryEviction> {
        debug_assert!(core.index() < self.num_cores);
        if let Some(set) = self.entries.get_mut(&line) {
            set.insert(core);
            return None;
        }
        // New entry: make room first if bounded.
        let mut evicted = None;
        if let Some(cap) = self.capacity {
            while self.entries.len() >= cap {
                let old = self
                    .order
                    .pop_front()
                    .expect("entries outnumber the order queue");
                if let Some(holders) = self.entries.remove(&old) {
                    evicted = Some(DirectoryEviction { line: old, holders });
                    break;
                }
                // Stale queue entry (line already removed); keep popping.
            }
        }
        let mut set = CoreSet::new(self.num_cores);
        set.insert(core);
        self.entries.insert(line, set);
        if self.capacity.is_some() {
            // Unbounded directories never consult the FIFO; skip the
            // bookkeeping (it would grow without limit).
            self.order.push_back(line);
        }
        evicted
    }

    /// Records that `core`'s MLC no longer holds `line`.
    pub fn remove(&mut self, line: LineAddr, core: CoreId) {
        if let Some(set) = self.entries.get_mut(&line) {
            set.remove(core);
            if set.is_empty() {
                self.entries.remove(&line);
            }
        }
    }

    /// Whether any MLC holds `line`.
    pub fn is_cached(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Whether `core`'s MLC holds `line` according to the directory.
    pub fn holds(&self, line: LineAddr, core: CoreId) -> bool {
        self.entries.get(&line).is_some_and(|s| s.contains(core))
    }

    /// The lowest-numbered core holding `line`, if any.
    ///
    /// The workloads modelled here never share lines between cores, so a
    /// single holder is the common case; when multiple cores hold a line the
    /// lowest id is returned deterministically.
    pub fn holder(&self, line: LineAddr) -> Option<CoreId> {
        self.entries.get(&line).and_then(CoreSet::first)
    }

    /// The set of cores holding `line`; `None` when untracked. The
    /// borrow-only form of [`MlcDirectory::holders`] for the per-DMA-line
    /// hot path.
    #[inline]
    pub fn holder_set(&self, line: LineAddr) -> Option<&CoreSet> {
        self.entries.get(&line)
    }

    /// All cores holding `line`, lowest id first.
    pub fn holders(&self, line: LineAddr) -> Vec<CoreId> {
        self.holder_set(line)
            .map_or_else(Vec::new, |s| s.iter().collect())
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut d = MlcDirectory::new(4);
        let _ = d.add(line(1), CoreId::new(3));
        assert!(d.is_cached(line(1)));
        assert!(d.holds(line(1), CoreId::new(3)));
        assert!(!d.holds(line(1), CoreId::new(0)));
        d.remove(line(1), CoreId::new(3));
        assert!(!d.is_cached(line(1)));
        assert!(d.is_empty());
    }

    #[test]
    fn multiple_holders_tracked() {
        let mut d = MlcDirectory::new(8);
        let _ = d.add(line(9), CoreId::new(5));
        let _ = d.add(line(9), CoreId::new(2));
        assert_eq!(d.holder(line(9)), Some(CoreId::new(2)));
        assert_eq!(d.holders(line(9)), vec![CoreId::new(2), CoreId::new(5)]);
        d.remove(line(9), CoreId::new(2));
        assert_eq!(d.holder(line(9)), Some(CoreId::new(5)));
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut d = MlcDirectory::new(2);
        d.remove(line(4), CoreId::new(1));
        assert!(d.is_empty());
        let _ = d.add(line(4), CoreId::new(0));
        d.remove(line(4), CoreId::new(1));
        assert!(d.is_cached(line(4)));
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut d = MlcDirectory::new(2);
        let _ = d.add(line(4), CoreId::new(1));
        let _ = d.add(line(4), CoreId::new(1));
        assert_eq!(d.len(), 1);
        d.remove(line(4), CoreId::new(1));
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn zero_cores_rejected() {
        let _ = MlcDirectory::new(0);
    }

    #[test]
    fn core_set_spills_past_64_cores() {
        let mut s = CoreSet::new(200);
        assert!(s.is_empty());
        for c in [0u16, 63, 64, 65, 128, 199] {
            s.insert(CoreId::new(c));
        }
        assert!(s.contains(CoreId::new(64)));
        assert!(!s.contains(CoreId::new(66)));
        assert_eq!(s.first(), Some(CoreId::new(0)));
        assert_eq!(
            s.iter().map(CoreId::index).collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 128, 199]
        );
        s.remove(CoreId::new(0));
        s.remove(CoreId::new(64));
        assert_eq!(s.first(), Some(CoreId::new(63)));
        for c in [63u16, 65, 128, 199] {
            s.remove(CoreId::new(c));
        }
        assert!(s.is_empty());
    }

    /// Boundary sweep at exactly 63, 64 and 65 cores — the sizes where
    /// the representation crosses from one inline word to spilled words.
    /// A deterministic op sequence (insert/remove over all core ids) is
    /// checked against a `BTreeSet` reference model after every step.
    #[test]
    fn core_set_inline_to_spilled_boundary_matches_reference_model() {
        use std::collections::BTreeSet;
        for num_cores in [63usize, 64, 65] {
            // The representation choice itself is part of the contract.
            let set = CoreSet::new(num_cores);
            match (&set.0, num_cores <= 64) {
                (SetRepr::Inline(_), true) | (SetRepr::Spilled(_), false) => {}
                _ => panic!("{num_cores} cores picked the wrong representation"),
            }
            let mut set = set;
            let mut model: BTreeSet<u16> = BTreeSet::new();
            // xorshift64* keeps the sequence deterministic and seedless.
            let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ num_cores as u64;
            for _ in 0..2000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let c = (x % num_cores as u64) as u16;
                if x & (1 << 40) == 0 {
                    set.insert(CoreId::new(c));
                    model.insert(c);
                } else {
                    set.remove(CoreId::new(c));
                    model.remove(&c);
                }
                assert_eq!(
                    set.iter().map(|c| c.index() as u16).collect::<Vec<_>>(),
                    model.iter().copied().collect::<Vec<_>>(),
                    "{num_cores} cores diverged from the model"
                );
                assert_eq!(set.is_empty(), model.is_empty());
                assert_eq!(set.first(), model.first().map(|&c| CoreId::new(c)));
            }
            // Exhaustive membership at every id, then fill and drain.
            for c in 0..num_cores as u16 {
                assert_eq!(
                    set.contains(CoreId::new(c)),
                    model.contains(&c),
                    "{num_cores} cores: membership of {c}"
                );
                set.insert(CoreId::new(c));
            }
            assert_eq!(set.iter().count(), num_cores);
            assert!(set.contains(CoreId::new(num_cores as u16 - 1)));
            for c in 0..num_cores as u16 {
                set.remove(CoreId::new(c));
            }
            assert!(set.is_empty());
            assert_eq!(set.first(), None);
        }
    }

    #[test]
    fn directory_tracks_wide_systems() {
        // 200 cores — the generated datacenter scenarios — exceed one
        // bitmask word; the directory must keep exact holder sets.
        let mut d = MlcDirectory::new(200);
        let _ = d.add(line(1), CoreId::new(5));
        let _ = d.add(line(1), CoreId::new(150));
        assert!(d.holds(line(1), CoreId::new(150)));
        assert_eq!(d.holder(line(1)), Some(CoreId::new(5)));
        assert_eq!(d.holders(line(1)), vec![CoreId::new(5), CoreId::new(150)]);
        d.remove(line(1), CoreId::new(5));
        assert_eq!(d.holder(line(1)), Some(CoreId::new(150)));
        d.remove(line(1), CoreId::new(150));
        assert!(!d.is_cached(line(1)));
    }
}
