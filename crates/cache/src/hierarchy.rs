//! The non-inclusive MLC + LLC hierarchy state machine.
//!
//! This module encodes the data-movement semantics of Figs. 1 and 2 of the
//! paper at cache-line granularity:
//!
//! * **PCIe writes** (RX DMA) invalidate any MLC-resident copy, update an
//!   LLC-resident copy in place, and otherwise write-allocate into the DDIO
//!   ways. A dirty victim pushed out of the DDIO ways goes to DRAM — the
//!   *DMA leak*.
//! * **CPU demand fills** move an LLC-resident line into the requesting
//!   core's MLC (the LLC copy is relinquished; its tag lives on in the MLC
//!   directory) — the hierarchy is exclusive between MLC and LLC data ways.
//! * **MLC victims** are installed into the LLC through the *core* way mask
//!   (all ways by default), so consumed DMA buffers spread beyond the DDIO
//!   partition — the *DMA bloating* effect.
//! * **PCIe reads** (TX DMA) pull MLC-resident lines back into the LLC
//!   before serving the device.
//! * The **self-invalidate** maintenance operation drops dead buffer lines
//!   without any writeback (IDIO mechanism 1).
//! * **Prefetch fills** move a line LLC → MLC on behalf of the IDIO
//!   controller's hints (IDIO mechanism 2).
//! * **Direct-DRAM placement** bypasses the hierarchy for class-1 payloads
//!   (IDIO mechanism 3).

use crate::addr::{CoreId, LineAddr};
use crate::config::HierarchyConfig;
use crate::directory::MlcDirectory;
use crate::set::{SetAssocCache, WayMask};
use crate::stats::HierarchyStats;

/// Where a CPU demand access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the core's L1 data cache.
    L1,
    /// Served by the core's private MLC.
    Mlc,
    /// Served by the shared LLC (line migrates into the MLC).
    Llc,
    /// Served by another core's MLC via a cache-to-cache transfer.
    RemoteMlc,
    /// Served from DRAM.
    Dram,
}

/// DRAM traffic generated as a side effect of one hierarchy operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemEffects {
    /// Number of DRAM line reads triggered (0 or 1).
    pub dram_reads: u32,
    /// Number of DRAM line writes triggered (victim writebacks or direct
    /// DMA stores).
    pub dram_writes: u32,
}

impl MemEffects {
    /// Merges another effect set into this one.
    pub fn merge(&mut self, other: MemEffects) {
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
    }
}

/// Result of a CPU demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuAccess {
    /// Level that served the access.
    pub level: HitLevel,
    /// DRAM traffic triggered.
    pub effects: MemEffects,
}

/// Steering decision for an inbound PCIe (DMA) write, as made by the IDIO
/// controller (or fixed to `Llc` under baseline DDIO).
///
/// MLC steering is expressed as an LLC placement plus a prefetch hint issued
/// by the controller — matching the paper's queued-prefetcher design — so it
/// does not appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaPlacement {
    /// Write-allocate/update in the LLC (classic DDIO).
    Llc,
    /// Bypass the hierarchy and write DRAM directly (IDIO selective direct
    /// DRAM access, class-1 payloads).
    Dram,
}

/// What an inbound PCIe write did in the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieWriteKind {
    /// Updated a line already resident in the LLC (any way).
    LlcUpdate,
    /// Write-allocated a new line into the DDIO ways.
    LlcAlloc,
    /// Went straight to DRAM.
    DirectDram,
}

/// Result of an inbound PCIe write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieWrite {
    /// How the write was placed.
    pub kind: PcieWriteKind,
    /// Core whose MLC copy was invalidated, if any.
    pub invalidated_core: Option<CoreId>,
    /// DRAM traffic triggered.
    pub effects: MemEffects,
}

/// Where an outbound PCIe read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieReadSource {
    /// The line was pulled out of a core's MLC (written back to the LLC
    /// first, per Fig. 1).
    Mlc,
    /// Served directly from the LLC.
    Llc,
    /// Served from DRAM.
    Dram,
}

/// Result of an outbound PCIe read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieRead {
    /// Where the data came from.
    pub source: PcieReadSource,
    /// DRAM traffic triggered.
    pub effects: MemEffects,
}

/// Scope of a self-invalidation (IDIO's invalidate-without-writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalidateScope {
    /// Drop the line from the issuing core's L1D and MLC only (the literal
    /// instruction semantics of Sec. V-D).
    PrivateOnly,
    /// Additionally drop a dead LLC copy (used for zero-copy NFs whose
    /// buffers were pulled back into the LLC by the TX path, Sec. VII).
    IncludeLlc,
}

/// Result of a self-invalidation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalidateOutcome {
    /// A private (L1/MLC) copy was dropped.
    pub private_dropped: bool,
    /// An LLC copy was dropped (only with [`InvalidateScope::IncludeLlc`]).
    pub llc_dropped: bool,
}

/// Result of an IDIO prefetch fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The line was moved from the LLC into the core's MLC.
    Filled(MemEffects),
    /// The line was already in the core's private caches; nothing to do.
    AlreadyPrivate,
    /// The line was no longer in the LLC; the hint was dropped (prefetches
    /// never escalate to DRAM).
    NotInLlc,
}

#[derive(Debug)]
struct PrivateCaches {
    l1d: SetAssocCache,
    mlc: SetAssocCache,
}

/// The complete modelled cache hierarchy.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::{CoreId, LineAddr};
/// use idio_cache::config::HierarchyConfig;
/// use idio_cache::hierarchy::{DmaPlacement, Hierarchy, HitLevel, PcieWriteKind};
///
/// let mut h = Hierarchy::new(HierarchyConfig::paper_default(2));
/// let line = LineAddr::new(0x100);
///
/// // NIC delivers a packet line: write-allocates into the DDIO ways.
/// let w = h.pcie_write(line, DmaPlacement::Llc);
/// assert_eq!(w.kind, PcieWriteKind::LlcAlloc);
///
/// // The core then reads it: LLC hit, line migrates to the MLC.
/// let r = h.cpu_read(CoreId::new(0), line);
/// assert_eq!(r.level, HitLevel::Llc);
/// assert!(h.mlc(CoreId::new(0)).contains(line));
/// assert!(!h.llc().contains(line));
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    cores: Vec<PrivateCaches>,
    llc: SetAssocCache,
    dir: MlcDirectory,
    stats: HierarchyStats,
    mlc_mask: Vec<WayMask>,
    l1_mask: WayMask,
    /// Per-core CAT override of the LLC core-fill mask. `None` follows the
    /// shared [`HierarchyConfig::core_mask`] (and therefore tracks IAT
    /// DDIO-way retuning); `Some` pins the core's demand fills and MLC
    /// victims to an explicit way subset.
    cat_mask: Vec<Option<WayMask>>,
}

impl Hierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`HierarchyConfig::validate`]).
    pub fn new(cfg: HierarchyConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid hierarchy config: {e}");
        }
        let cores = (0..cfg.num_cores)
            .map(|i| {
                let mlc_geom = cfg.mlc_for_core(i);
                PrivateCaches {
                    l1d: SetAssocCache::with_capacity_policy(
                        "l1d",
                        cfg.l1d.size_bytes,
                        cfg.l1d.ways,
                        cfg.private_replacement,
                    ),
                    mlc: SetAssocCache::with_capacity_policy(
                        "mlc",
                        mlc_geom.size_bytes,
                        mlc_geom.ways,
                        cfg.private_replacement,
                    ),
                }
            })
            .collect();
        let llc = SetAssocCache::with_capacity_policy(
            "llc",
            cfg.llc.size_bytes,
            cfg.llc.ways,
            cfg.llc_replacement,
        );
        let dir = MlcDirectory::with_capacity(cfg.num_cores, cfg.directory_entries);
        let stats = HierarchyStats::new(cfg.num_cores);
        let mlc_mask = (0..cfg.num_cores)
            .map(|i| WayMask::all(cfg.mlc_for_core(i).ways))
            .collect();
        let l1_mask = WayMask::all(cfg.l1d.ways);
        let cat_mask = vec![None; cfg.num_cores];
        Hierarchy {
            cfg,
            cores,
            llc,
            dir,
            stats,
            mlc_mask,
            l1_mask,
            cat_mask,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zeroes all statistics (e.g. after a cache warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::new(self.cfg.num_cores);
    }

    /// The shared LLC array (read-only, for inspection and tests).
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Declares the raw-line ranges whose LLC occupancy should be counted
    /// incrementally (see [`SetAssocCache::track_ranges`]); telemetry
    /// reads the result via `self.llc().tracked_resident()`.
    pub fn track_llc_ranges(&mut self, ranges: &[(u64, u64)]) {
        self.llc.track_ranges(ranges);
    }

    /// A core's MLC array (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mlc(&self, core: CoreId) -> &SetAssocCache {
        &self.cores[core.index()].mlc
    }

    /// A core's L1D array (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1d(&self, core: CoreId) -> &SetAssocCache {
        &self.cores[core.index()].l1d
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cfg.num_cores
    }

    /// Current number of DDIO ways.
    pub fn ddio_ways(&self) -> usize {
        self.cfg.ddio_ways
    }

    /// Re-partitions the LLC at runtime: the lowest `n` ways become the
    /// DDIO ways (IAT-style dynamic I/O way allocation). Resident lines
    /// stay where they are; only future allocations follow the new masks.
    ///
    /// Has no effect on configurations with an explicit
    /// [`HierarchyConfig::core_alloc_ways`] override.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or leaves no way for core fills.
    pub fn set_ddio_ways(&mut self, n: usize) {
        assert!(
            n >= 1 && n < self.cfg.llc.ways,
            "ddio ways {n} must be in 1..{}",
            self.cfg.llc.ways
        );
        self.cfg.ddio_ways = n;
    }

    /// Pins `core`'s LLC fills (demand misses and MLC victims) to an
    /// explicit way subset — the CAT partition — or clears the pin
    /// (`None`) so the core follows the shared core mask again. Resident
    /// lines stay where they are; only future allocations honour the mask.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range, or if the mask is empty or
    /// selects ways beyond the LLC associativity.
    pub fn set_cat_mask(&mut self, core: CoreId, mask: Option<WayMask>) {
        if let Some(m) = mask {
            assert!(!m.is_empty(), "CAT mask selects no LLC way");
            assert!(
                m.intersect(WayMask::all(self.cfg.llc.ways)) == m,
                "CAT mask {m} exceeds {}-way LLC",
                self.cfg.llc.ways
            );
        }
        self.cat_mask[core.index()] = mask;
    }

    /// The CAT pin active for `core`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cat_mask(&self, core: CoreId) -> Option<WayMask> {
        self.cat_mask[core.index()]
    }

    // ----- internal fill helpers -------------------------------------------------

    /// Installs `line` into `core`'s MLC, cascading the victim into the LLC
    /// (an "MLC writeback") and a dirty LLC victim to DRAM (an "LLC
    /// writeback"). Updates the directory.
    /// Registers `line` as held by `core`, processing any directory
    /// capacity eviction: the displaced entry's cores are back-invalidated
    /// and dirty data is pushed into the LLC.
    fn dir_add(&mut self, line: LineAddr, core: CoreId) -> MemEffects {
        let mut fx = MemEffects::default();
        if let Some(ev) = self.dir.add(line, core) {
            self.stats.shared.dir_back_invalidations.inc();
            for holder in &ev.holders {
                let hi = holder.index();
                let mut dirty = false;
                if let Some(l1) = self.cores[hi].l1d.remove(ev.line) {
                    dirty |= l1.dirty;
                }
                if let Some(mlc) = self.cores[hi].mlc.remove(ev.line) {
                    dirty |= mlc.dirty;
                }
                // The directory entry itself is already gone.
                self.stats.core[hi].mlc_wb.inc();
                if dirty {
                    self.stats.core[hi].mlc_wb_dirty.inc();
                }
                fx.merge(self.fill_llc(holder, ev.line, dirty));
            }
        }
        fx
    }

    fn fill_mlc(&mut self, core: CoreId, line: LineAddr, dirty: bool) -> MemEffects {
        let mut fx = MemEffects::default();
        let ci = core.index();
        let (victim, _) = self.cores[ci].mlc.insert(line, dirty, self.mlc_mask[ci]);
        fx.merge(self.dir_add(line, core));
        if let Some(v) = victim {
            debug_assert_ne!(v.line, line);
            // Back-invalidate the (inclusive) L1 copy; its dirtiness folds
            // into the victim data.
            let mut victim_dirty = v.dirty;
            if let Some(l1) = self.cores[ci].l1d.remove(v.line) {
                victim_dirty |= l1.dirty;
            }
            self.dir.remove(v.line, core);
            self.stats.core[ci].mlc_wb.inc();
            if victim_dirty {
                self.stats.core[ci].mlc_wb_dirty.inc();
            }
            fx.merge(self.fill_llc(core, v.line, victim_dirty));
        }
        fx
    }

    /// Installs a line into the LLC on behalf of `from` through that
    /// core's allocation mask (its CAT partition if pinned, the shared
    /// core mask otherwise), handling the victim cascade to DRAM.
    fn fill_llc(&mut self, from: CoreId, line: LineAddr, dirty: bool) -> MemEffects {
        let mut fx = MemEffects::default();
        let mask = self.cat_mask[from.index()].unwrap_or_else(|| self.cfg.core_mask());
        let (victim, _) = self.llc.insert(line, dirty, mask);
        if let Some(v) = victim {
            if v.dirty {
                self.stats.shared.llc_wb.inc();
                self.stats.shared.dram_writes.inc();
                fx.dram_writes += 1;
            } else {
                self.stats.shared.llc_evict_clean.inc();
            }
        }
        fx
    }

    /// Installs `line` into `core`'s L1D. The line must already be MLC
    /// resident (L1 is inclusive in the MLC).
    fn fill_l1(&mut self, core: CoreId, line: LineAddr) {
        let ci = core.index();
        debug_assert!(
            self.cores[ci].mlc.contains(line),
            "L1 fill breaks inclusion"
        );
        let (victim, _) = self.cores[ci].l1d.insert(line, false, self.l1_mask);
        if let Some(v) = victim {
            if v.dirty {
                // Fold L1 dirtiness back into the MLC copy.
                let present = self.cores[ci].mlc.mark_dirty(v.line);
                debug_assert!(present, "L1 victim not in MLC: inclusion broken");
            }
        }
    }

    /// Removes `line` from `core`'s private caches where the directory
    /// says the line *must* be resident, diagnosing the desync (which op
    /// hit it, which core, which line) instead of panicking with a bare
    /// `expect` deep in the fill path.
    #[inline]
    fn remove_private_held(&mut self, core: CoreId, line: LineAddr, op: &'static str) -> bool {
        match self.remove_private(core, line) {
            Some(dirty) => dirty,
            None => panic!(
                "{op}: directory says {core} holds line {}, but its private \
                 caches do not (directory/cache desync)",
                line.get()
            ),
        }
    }

    /// Removes `line` from `core`'s private caches, returning whether it was
    /// present and whether any copy was dirty.
    fn remove_private(&mut self, core: CoreId, line: LineAddr) -> Option<bool> {
        let ci = core.index();
        let l1 = self.cores[ci].l1d.remove(line);
        let mlc = self.cores[ci].mlc.remove(line);
        if mlc.is_none() {
            debug_assert!(
                l1.is_none(),
                "L1 held a line the MLC did not: inclusion broken"
            );
            return None;
        }
        self.dir.remove(line, core);
        Some(l1.is_some_and(|e| e.dirty) || mlc.is_some_and(|e| e.dirty))
    }

    // ----- CPU demand path -------------------------------------------------------

    /// A CPU demand load of one cache line.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cpu_read(&mut self, core: CoreId, line: LineAddr) -> CpuAccess {
        self.cpu_access(core, line, false)
    }

    /// A CPU demand store of one cache line (write-allocate; the line is
    /// dirtied in the private caches).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cpu_write(&mut self, core: CoreId, line: LineAddr) -> CpuAccess {
        self.cpu_access(core, line, true)
    }

    fn cpu_access(&mut self, core: CoreId, line: LineAddr, store: bool) -> CpuAccess {
        let ci = core.index();
        let mut fx = MemEffects::default();

        // L1 hit.
        if self.cores[ci].l1d.touch(line).is_some() {
            self.stats.core[ci].l1_hits.inc();
            if store {
                self.cores[ci].l1d.mark_dirty(line);
            }
            return CpuAccess {
                level: HitLevel::L1,
                effects: fx,
            };
        }

        // MLC hit.
        if self.cores[ci].mlc.touch(line).is_some() {
            self.stats.core[ci].mlc_hits.inc();
            self.fill_l1(core, line);
            if store {
                self.cores[ci].l1d.mark_dirty(line);
                self.cores[ci].mlc.mark_dirty(line);
            }
            return CpuAccess {
                level: HitLevel::Mlc,
                effects: fx,
            };
        }

        self.stats.core[ci].mlc_misses.inc();

        // LLC hit: the line migrates into the MLC (exclusive fill).
        if let Some(entry) = self.llc.remove(line) {
            self.stats.shared.llc_hits.inc();
            self.stats.core[ci].llc_hits.inc();
            fx.merge(self.fill_mlc(core, line, entry.dirty || store));
            self.fill_l1(core, line);
            if store {
                self.cores[ci].l1d.mark_dirty(line);
            }
            return CpuAccess {
                level: HitLevel::Llc,
                effects: fx,
            };
        }

        // Cache-to-cache transfer from another core's MLC.
        if let Some(holder) = self.dir.holder(line) {
            debug_assert_ne!(holder, core, "directory stale: missed own MLC line");
            if holder != core {
                let dirty = self.remove_private_held(holder, line, "cpu_access c2c");
                self.stats.core[ci].c2c_transfers.inc();
                fx.merge(self.fill_mlc(core, line, dirty || store));
                self.fill_l1(core, line);
                if store {
                    self.cores[ci].l1d.mark_dirty(line);
                }
                return CpuAccess {
                    level: HitLevel::RemoteMlc,
                    effects: fx,
                };
            }
        }

        // DRAM fill.
        self.stats.shared.llc_misses.inc();
        self.stats.core[ci].llc_misses.inc();
        self.stats.shared.dram_reads.inc();
        fx.dram_reads += 1;
        fx.merge(self.fill_mlc(core, line, store));
        self.fill_l1(core, line);
        if store {
            self.cores[ci].l1d.mark_dirty(line);
        }
        CpuAccess {
            level: HitLevel::Dram,
            effects: fx,
        }
    }

    // ----- PCIe / DMA path -------------------------------------------------------

    /// An inbound full-line PCIe write (RX DMA), with the placement decided
    /// by the steering policy.
    pub fn pcie_write(&mut self, line: LineAddr, placement: DmaPlacement) -> PcieWrite {
        self.stats.shared.pcie_writes.inc();
        let mut fx = MemEffects::default();

        // Invalidate any private copies: the NIC overwrites the whole line,
        // so the core-resident data is dead and is dropped without
        // writeback (Fig. 1 steps P1-1 / P2-1).
        let mut invalidated_core = None;
        if let Some(holders) = self.dir.holder_set(line).cloned() {
            for holder in &holders {
                self.remove_private(holder, line);
                self.stats.core[holder.index()].mlc_inval_by_dma.inc();
                invalidated_core = Some(holder);
            }
        }

        match placement {
            DmaPlacement::Dram => {
                // Selective direct DRAM access: drop any (now dead) LLC copy
                // and store the line in memory.
                self.llc.remove(line);
                self.stats.shared.dma_direct_dram.inc();
                self.stats.shared.dram_writes.inc();
                fx.dram_writes += 1;
                PcieWrite {
                    kind: PcieWriteKind::DirectDram,
                    invalidated_core,
                    effects: fx,
                }
            }
            DmaPlacement::Llc => {
                if self.llc.contains(line) {
                    // In-place update, regardless of which way holds it
                    // (Fig. 1 steps P2-2 / P3-1).
                    let (victim, _) = self.llc.insert(line, true, self.cfg.ddio_mask());
                    debug_assert!(victim.is_none());
                    self.stats.shared.ddio_updates.inc();
                    PcieWrite {
                        kind: PcieWriteKind::LlcUpdate,
                        invalidated_core,
                        effects: fx,
                    }
                } else {
                    // Write-allocate into the DDIO ways (Fig. 1 step P5-1).
                    let (victim, _) = self.llc.insert(line, true, self.cfg.ddio_mask());
                    self.stats.shared.ddio_allocs.inc();
                    if let Some(v) = victim {
                        self.stats.shared.ddio_evictions.inc();
                        if v.dirty {
                            // The DMA leak: RX data pushed to DRAM before
                            // the core ever touched it.
                            self.stats.shared.llc_wb.inc();
                            self.stats.shared.dram_writes.inc();
                            fx.dram_writes += 1;
                        } else {
                            self.stats.shared.llc_evict_clean.inc();
                        }
                    }
                    PcieWrite {
                        kind: PcieWriteKind::LlcAlloc,
                        invalidated_core,
                        effects: fx,
                    }
                }
            }
        }
    }

    /// An outbound PCIe read (TX DMA) of one line.
    pub fn pcie_read(&mut self, line: LineAddr) -> PcieRead {
        self.stats.shared.pcie_reads.inc();
        let mut fx = MemEffects::default();

        // An MLC-resident line is written back to the LLC first, then
        // served (Fig. 1 steps P1-1 / P2-1; Fig. 3 right).
        if let Some(holder) = self.dir.holder(line) {
            let dirty = self.remove_private_held(holder, line, "pcie_read");
            let hi = holder.index();
            self.stats.core[hi].mlc_wb.inc();
            self.stats.core[hi].mlc_wb_by_pcie_rd.inc();
            if dirty {
                self.stats.core[hi].mlc_wb_dirty.inc();
            }
            fx.merge(self.fill_llc(holder, line, dirty));
            return PcieRead {
                source: PcieReadSource::Mlc,
                effects: fx,
            };
        }

        if self.llc.touch(line).is_some() {
            self.stats.shared.pcie_rd_llc_hits.inc();
            return PcieRead {
                source: PcieReadSource::Llc,
                effects: fx,
            };
        }

        self.stats.shared.pcie_rd_dram.inc();
        self.stats.shared.dram_reads.inc();
        fx.dram_reads += 1;
        PcieRead {
            source: PcieReadSource::Dram,
            effects: fx,
        }
    }

    // ----- IDIO mechanisms -------------------------------------------------------

    /// The invalidate-without-writeback maintenance operation (IDIO
    /// mechanism 1). Drops the line from `core`'s private caches — and,
    /// with [`InvalidateScope::IncludeLlc`], from the LLC — without any
    /// writeback.
    ///
    /// Page-permission checking (the `Invalidatable` PTE bit) is enforced a
    /// level up, in [`crate::maintenance`].
    pub fn self_invalidate(
        &mut self,
        core: CoreId,
        line: LineAddr,
        scope: InvalidateScope,
    ) -> InvalidateOutcome {
        let mut out = InvalidateOutcome::default();
        if self.remove_private(core, line).is_some() {
            self.stats.core[core.index()].self_invalidations.inc();
            out.private_dropped = true;
        }
        if scope == InvalidateScope::IncludeLlc && self.llc.remove(line).is_some() {
            self.stats.shared.llc_self_invalidations.inc();
            out.llc_dropped = true;
        }
        out
    }

    /// An IDIO prefetch fill: moves `line` from the LLC into `core`'s MLC
    /// (IDIO mechanism 2). Never escalates to DRAM on an LLC miss.
    pub fn prefetch_fill(&mut self, core: CoreId, line: LineAddr) -> PrefetchOutcome {
        let ci = core.index();
        if self.cores[ci].mlc.contains(line) {
            return PrefetchOutcome::AlreadyPrivate;
        }
        match self.llc.remove(line) {
            Some(entry) => {
                let fx = self.fill_mlc(core, line, entry.dirty);
                self.stats.core[ci].prefetch_fills.inc();
                PrefetchOutcome::Filled(fx)
            }
            None => {
                self.stats.core[ci].prefetch_misses.inc();
                PrefetchOutcome::NotInLlc
            }
        }
    }

    /// A *deep* prefetch fill used by the CPU-paced prefetcher (Sec. VII
    /// future work): like [`Hierarchy::prefetch_fill`], but on an LLC miss
    /// the line is fetched from DRAM — the regulated prefetcher walks the
    /// ring buffer just ahead of the CPU pointer, so it can recover lines
    /// that already leaked to memory.
    pub fn prefetch_fill_deep(&mut self, core: CoreId, line: LineAddr) -> PrefetchOutcome {
        let ci = core.index();
        match self.prefetch_fill(core, line) {
            PrefetchOutcome::NotInLlc => {
                let mut fx = MemEffects {
                    dram_reads: 1,
                    dram_writes: 0,
                };
                self.stats.shared.dram_reads.inc();
                fx.merge(self.fill_mlc(core, line, false));
                self.stats.core[ci].prefetch_fills.inc();
                PrefetchOutcome::Filled(fx)
            }
            other => other,
        }
    }

    /// Flushes `line` to DRAM and invalidates every cached copy (classic
    /// `clflush` semantics; used when the kernel prepares an `Invalidatable`
    /// buffer).
    pub fn flush_line(&mut self, line: LineAddr) -> MemEffects {
        let mut dirty = false;
        if let Some(holders) = self.dir.holder_set(line).cloned() {
            for holder in &holders {
                dirty |= self.remove_private(holder, line).unwrap_or(false);
            }
        }
        if let Some(e) = self.llc.remove(line) {
            dirty |= e.dirty;
        }
        let mut fx = MemEffects::default();
        if dirty {
            self.stats.shared.dram_writes.inc();
            fx.dram_writes += 1;
        }
        fx
    }

    /// Verifies internal consistency; intended for tests and property
    /// checks.
    ///
    /// Checks:
    /// * L1D contents are a subset of the MLC (inclusion),
    /// * the directory exactly mirrors MLC residency,
    /// * no line is simultaneously in the LLC and any MLC (exclusivity).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        for (ci, pc) in self.cores.iter().enumerate() {
            let core = CoreId::new(ci as u16);
            for e in pc.l1d.iter() {
                assert!(
                    pc.mlc.contains(e.line),
                    "{core}: L1 line {} not in MLC (inclusion broken)",
                    e.line
                );
            }
            for e in pc.mlc.iter() {
                assert!(
                    self.dir.holds(e.line, core),
                    "{core}: MLC line {} missing from directory",
                    e.line
                );
                assert!(
                    !self.llc.contains(e.line),
                    "{core}: line {} in both MLC and LLC (exclusivity broken)",
                    e.line
                );
            }
        }
        // Directory entries must be backed by actual MLC residency.
        for (ci, pc) in self.cores.iter().enumerate() {
            let core = CoreId::new(ci as u16);
            let count = pc.mlc.iter().count();
            let dir_count = pc
                .mlc
                .iter()
                .filter(|e| self.dir.holds(e.line, core))
                .count();
            assert_eq!(count, dir_count, "{core}: directory undercounts MLC lines");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn tiny_config() -> HierarchyConfig {
        // 2 cores; L1 2 sets x 2 ways, MLC 4 sets x 2 ways, LLC 4 sets x 4
        // ways with 2 DDIO ways — small enough to force evictions quickly.
        HierarchyConfig {
            num_cores: 2,
            l1d: CacheGeometry::new(2 * 2 * 64, 2, 2),
            mlc: CacheGeometry::new(4 * 2 * 64, 2, 12),
            mlc_overrides: vec![None; 2],
            llc: CacheGeometry::new(4 * 4 * 64, 4, 24),
            ddio_ways: 2,
            core_alloc_ways: None,
            private_replacement: crate::replacement::ReplacementKind::Lru,
            llc_replacement: crate::replacement::ReplacementKind::Lru,
            directory_entries: None,
        }
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    const C0: CoreId = CoreId::new(0);
    const C1: CoreId = CoreId::new(1);

    #[test]
    fn cold_read_fills_from_dram() {
        let mut h = Hierarchy::new(tiny_config());
        let a = h.cpu_read(C0, line(1));
        assert_eq!(a.level, HitLevel::Dram);
        assert_eq!(a.effects.dram_reads, 1);
        assert!(h.mlc(C0).contains(line(1)));
        assert!(h.l1d(C0).contains(line(1)));
        assert!(!h.llc().contains(line(1)));
        h.check_invariants();
    }

    #[test]
    fn repeat_read_hits_l1_then_mlc() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_read(C0, line(1));
        assert_eq!(h.cpu_read(C0, line(1)).level, HitLevel::L1);
        // Evict from tiny L1 (2 sets: lines 1, 3, 5 map to set 1).
        h.cpu_read(C0, line(3));
        h.cpu_read(C0, line(5));
        assert_eq!(h.cpu_read(C0, line(1)).level, HitLevel::Mlc);
        h.check_invariants();
    }

    #[test]
    fn pcie_write_allocates_in_ddio_ways() {
        let mut h = Hierarchy::new(tiny_config());
        let w = h.pcie_write(line(7), DmaPlacement::Llc);
        assert_eq!(w.kind, PcieWriteKind::LlcAlloc);
        assert!(h.llc().probe(line(7)).unwrap().dirty);
        assert!(
            h.llc().way_of(line(7)).unwrap() < 2,
            "must land in a DDIO way"
        );
    }

    #[test]
    fn dma_leak_on_ddio_way_overflow() {
        let mut h = Hierarchy::new(tiny_config());
        // 3 lines in the same set through 2 DDIO ways: the third evicts a
        // dirty RX line to DRAM.
        h.pcie_write(line(0), DmaPlacement::Llc);
        h.pcie_write(line(4), DmaPlacement::Llc);
        let w = h.pcie_write(line(8), DmaPlacement::Llc);
        assert_eq!(w.effects.dram_writes, 1);
        assert_eq!(h.stats().shared.llc_wb.get(), 1);
        assert_eq!(h.stats().shared.ddio_evictions.get(), 1);
    }

    #[test]
    fn pcie_write_invalidates_mlc_copy_without_writeback() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_read(C0, line(9));
        assert!(h.mlc(C0).contains(line(9)));
        let w = h.pcie_write(line(9), DmaPlacement::Llc);
        assert_eq!(w.invalidated_core, Some(C0));
        assert!(!h.mlc(C0).contains(line(9)));
        assert!(!h.l1d(C0).contains(line(9)));
        assert_eq!(h.stats().core(C0).mlc_inval_by_dma.get(), 1);
        // No MLC writeback happened: the data was dropped dead.
        assert_eq!(h.stats().core(C0).mlc_wb.get(), 0);
        h.check_invariants();
    }

    #[test]
    fn llc_hit_migrates_line_to_mlc() {
        let mut h = Hierarchy::new(tiny_config());
        h.pcie_write(line(5), DmaPlacement::Llc);
        let a = h.cpu_read(C1, line(5));
        assert_eq!(a.level, HitLevel::Llc);
        assert!(h.mlc(C1).contains(line(5)));
        assert!(!h.llc().contains(line(5)));
        // Dirtiness travelled with the line.
        assert!(h.mlc(C1).probe(line(5)).unwrap().dirty);
        h.check_invariants();
    }

    #[test]
    fn mlc_victim_bloats_into_non_ddio_ways() {
        let mut h = Hierarchy::new(tiny_config());
        // MLC has 4 sets x 2 ways; lines 0,4,8 collide in MLC set 0 and LLC
        // set 0. Read three colliding lines: the first is evicted to LLC.
        h.cpu_read(C0, line(0));
        h.cpu_read(C0, line(4));
        h.cpu_read(C0, line(8));
        assert_eq!(h.stats().core(C0).mlc_wb.get(), 1);
        assert!(h.llc().contains(line(0)));
        h.check_invariants();
    }

    #[test]
    fn pcie_read_pulls_mlc_line_back_to_llc() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_write(C0, line(3));
        let r = h.pcie_read(line(3));
        assert_eq!(r.source, PcieReadSource::Mlc);
        assert!(!h.mlc(C0).contains(line(3)));
        assert!(h.llc().contains(line(3)));
        assert!(h.llc().probe(line(3)).unwrap().dirty);
        assert_eq!(h.stats().core(C0).mlc_wb_by_pcie_rd.get(), 1);
        h.check_invariants();
    }

    #[test]
    fn pcie_read_from_llc_and_dram() {
        let mut h = Hierarchy::new(tiny_config());
        h.pcie_write(line(2), DmaPlacement::Llc);
        assert_eq!(h.pcie_read(line(2)).source, PcieReadSource::Llc);
        let r = h.pcie_read(line(100));
        assert_eq!(r.source, PcieReadSource::Dram);
        assert_eq!(r.effects.dram_reads, 1);
    }

    #[test]
    fn direct_dram_bypasses_hierarchy() {
        let mut h = Hierarchy::new(tiny_config());
        let w = h.pcie_write(line(6), DmaPlacement::Dram);
        assert_eq!(w.kind, PcieWriteKind::DirectDram);
        assert_eq!(w.effects.dram_writes, 1);
        assert!(!h.llc().contains(line(6)));
        assert_eq!(h.stats().shared.dma_direct_dram.get(), 1);
    }

    #[test]
    fn direct_dram_drops_stale_llc_copy() {
        let mut h = Hierarchy::new(tiny_config());
        h.pcie_write(line(6), DmaPlacement::Llc);
        h.pcie_write(line(6), DmaPlacement::Dram);
        assert!(!h.llc().contains(line(6)));
        // Only the direct write reached DRAM; the stale copy was dropped.
        assert_eq!(h.stats().shared.dram_writes.get(), 1);
    }

    #[test]
    fn self_invalidate_drops_without_writeback() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_write(C0, line(11));
        let out = h.self_invalidate(C0, line(11), InvalidateScope::PrivateOnly);
        assert!(out.private_dropped);
        assert!(!h.mlc(C0).contains(line(11)));
        assert_eq!(h.stats().shared.dram_writes.get(), 0);
        assert_eq!(h.stats().core(C0).self_invalidations.get(), 1);
        h.check_invariants();
    }

    #[test]
    fn self_invalidate_llc_scope() {
        let mut h = Hierarchy::new(tiny_config());
        h.pcie_write(line(12), DmaPlacement::Llc);
        let out = h.self_invalidate(C0, line(12), InvalidateScope::IncludeLlc);
        assert!(!out.private_dropped);
        assert!(out.llc_dropped);
        assert!(!h.llc().contains(line(12)));
    }

    #[test]
    fn self_invalidate_absent_line_is_noop() {
        let mut h = Hierarchy::new(tiny_config());
        let out = h.self_invalidate(C0, line(42), InvalidateScope::IncludeLlc);
        assert!(!out.private_dropped && !out.llc_dropped);
        assert_eq!(h.stats().core(C0).self_invalidations.get(), 0);
    }

    #[test]
    fn prefetch_fill_moves_llc_line_to_mlc() {
        let mut h = Hierarchy::new(tiny_config());
        h.pcie_write(line(13), DmaPlacement::Llc);
        match h.prefetch_fill(C0, line(13)) {
            PrefetchOutcome::Filled(_) => {}
            other => panic!("expected fill, got {other:?}"),
        }
        assert!(h.mlc(C0).contains(line(13)));
        assert!(!h.llc().contains(line(13)));
        assert_eq!(h.stats().core(C0).prefetch_fills.get(), 1);
        h.check_invariants();
    }

    #[test]
    fn prefetch_fill_misses_do_not_touch_dram() {
        let mut h = Hierarchy::new(tiny_config());
        assert_eq!(h.prefetch_fill(C0, line(50)), PrefetchOutcome::NotInLlc);
        assert_eq!(h.stats().shared.dram_reads.get(), 0);
        assert_eq!(h.stats().core(C0).prefetch_misses.get(), 1);
    }

    #[test]
    fn prefetch_fill_already_private_is_noop() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_read(C0, line(3));
        assert_eq!(
            h.prefetch_fill(C0, line(3)),
            PrefetchOutcome::AlreadyPrivate
        );
    }

    #[test]
    fn c2c_transfer_moves_line_between_cores() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_write(C0, line(17));
        let a = h.cpu_read(C1, line(17));
        assert_eq!(a.level, HitLevel::RemoteMlc);
        assert!(!h.mlc(C0).contains(line(17)));
        assert!(h.mlc(C1).contains(line(17)));
        // Dirtiness travelled.
        assert!(h.mlc(C1).probe(line(17)).unwrap().dirty);
        assert_eq!(h.stats().core(C1).c2c_transfers.get(), 1);
        h.check_invariants();
    }

    #[test]
    fn flush_writes_dirty_data_to_dram() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_write(C0, line(20));
        let fx = h.flush_line(line(20));
        assert_eq!(fx.dram_writes, 1);
        assert!(!h.mlc(C0).contains(line(20)));
        let fx2 = h.flush_line(line(20));
        assert_eq!(fx2.dram_writes, 0);
        h.check_invariants();
    }

    #[test]
    fn stats_reset_zeroes_everything() {
        let mut h = Hierarchy::new(tiny_config());
        h.cpu_read(C0, line(1));
        h.pcie_write(line(2), DmaPlacement::Llc);
        h.reset_stats();
        assert_eq!(h.stats().shared.pcie_writes.get(), 0);
        assert_eq!(h.stats().core(C0).l1_hits.get(), 0);
        // State survives the reset.
        assert!(h.mlc(C0).contains(line(1)));
    }

    #[test]
    fn cat_partitioning_confines_core_fills() {
        let mut cfg = tiny_config();
        cfg.core_alloc_ways = Some(WayMask::range(3, 4));
        let mut h = Hierarchy::new(cfg);
        // Force MLC victims: read 3 colliding lines (MLC set 0).
        h.cpu_read(C0, line(0));
        h.cpu_read(C0, line(4));
        h.cpu_read(C0, line(8));
        // Victim must be in way 3 only.
        assert_eq!(h.llc().way_of(line(0)), Some(3));
    }

    #[test]
    fn per_core_cat_mask_partitions_victims() {
        let mut h = Hierarchy::new(tiny_config());
        h.set_cat_mask(C0, Some(WayMask::range(2, 3)));
        h.set_cat_mask(C1, Some(WayMask::range(3, 4)));
        // Each core spills one MLC victim from set 0 (3 colliding lines
        // through a 2-way MLC set); the victims must land in the cores'
        // respective CAT ways, not spread across the shared mask.
        for l in [0u64, 4, 8] {
            h.cpu_read(C0, line(l));
        }
        for l in [16u64, 20, 24] {
            h.cpu_read(C1, line(l));
        }
        assert_eq!(h.llc().way_of(line(0)), Some(2), "C0 pinned to way 2");
        assert_eq!(h.llc().way_of(line(16)), Some(3), "C1 pinned to way 3");
        h.check_invariants();
    }

    #[test]
    fn clearing_cat_mask_restores_shared_core_mask() {
        let mut h = Hierarchy::new(tiny_config());
        h.set_cat_mask(C0, Some(WayMask::range(3, 4)));
        assert_eq!(h.cat_mask(C0), Some(WayMask::range(3, 4)));
        h.set_cat_mask(C0, None);
        assert_eq!(h.cat_mask(C0), None);
        for l in [0u64, 4, 8] {
            h.cpu_read(C0, line(l));
        }
        // Default shared mask is ways 2..4; LRU picks the lowest free way.
        assert_eq!(h.llc().way_of(line(0)), Some(2));
    }

    #[test]
    fn dma_fills_ignore_cat_masks() {
        let mut h = Hierarchy::new(tiny_config());
        h.set_cat_mask(C0, Some(WayMask::range(3, 4)));
        let w = h.pcie_write(line(7), DmaPlacement::Llc);
        assert_eq!(w.kind, PcieWriteKind::LlcAlloc);
        assert!(
            h.llc().way_of(line(7)).unwrap() < 2,
            "DMA keeps the DDIO ways regardless of CAT pins"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn cat_mask_wider_than_llc_rejected() {
        let mut h = Hierarchy::new(tiny_config());
        h.set_cat_mask(C0, Some(WayMask::range(3, 6)));
    }

    #[test]
    #[should_panic(expected = "no LLC way")]
    fn empty_cat_mask_rejected() {
        let mut h = Hierarchy::new(tiny_config());
        h.set_cat_mask(C0, Some(WayMask::EMPTY));
    }
}
