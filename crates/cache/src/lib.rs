//! # idio-cache
//!
//! The cache substrate of the IDIO reproduction: a line-granular model of a
//! Skylake-class **non-inclusive** cache hierarchy with private MLCs (L2), a
//! shared victim LLC with **DDIO ways**, an MLC snoop-filter directory, and
//! the cache-maintenance extensions IDIO adds (invalidate-without-writeback
//! guarded by an `Invalidatable` PTE bit).
//!
//! The hierarchy is a pure, deterministic state machine: operations report
//! what happened (hit level, victims, DRAM traffic) and the caller — the
//! full-system simulator in `idio-core` — charges timing.
//!
//! # Examples
//!
//! The DMA-bloating effect from Sec. III, observation 3 — a consumed DMA
//! buffer's MLC victim lands in a *non-DDIO* LLC way:
//!
//! ```
//! use idio_cache::addr::{CoreId, LineAddr};
//! use idio_cache::config::HierarchyConfig;
//! use idio_cache::hierarchy::{DmaPlacement, Hierarchy};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::paper_default(1));
//! let core = CoreId::new(0);
//!
//! // NIC delivers a line; core consumes it (line moves to the MLC).
//! h.pcie_write(LineAddr::new(0), DmaPlacement::Llc);
//! h.cpu_read(core, LineAddr::new(0));
//!
//! // New packets keep the DDIO ways of that LLC set occupied.
//! let llc_sets = h.llc().num_sets() as u64;
//! h.pcie_write(LineAddr::new(llc_sets), DmaPlacement::Llc);
//! h.pcie_write(LineAddr::new(2 * llc_sets), DmaPlacement::Llc);
//!
//! // Thrash the MLC set until the consumed line is evicted back to LLC.
//! let mlc_sets = h.mlc(core).num_sets() as u64;
//! for i in (1..=15u64).step_by(2) {
//!     h.cpu_read(core, LineAddr::new(i * mlc_sets));
//! }
//! let way = h.llc().way_of(LineAddr::new(0)).expect("victim in LLC");
//! assert!(way >= 2, "bloated outside the 2 DDIO ways");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod directory;
pub mod hierarchy;
pub mod maintenance;
pub mod replacement;
pub mod set;
pub mod stats;

pub use addr::{Addr, CoreId, LineAddr, PageAddr, LINE_SIZE, PAGE_SIZE};
pub use config::{CacheGeometry, HierarchyConfig};
pub use hierarchy::{
    CpuAccess, DmaPlacement, Hierarchy, HitLevel, InvalidateOutcome, InvalidateScope, MemEffects,
    PcieRead, PcieReadSource, PcieWrite, PcieWriteKind, PrefetchOutcome,
};
pub use maintenance::{allocate_invalidatable, invalidate_range, NotInvalidatableError, PageTable};
pub use replacement::{ReplacementKind, ReplacementPolicy};
pub use set::{SetAssocCache, Victim, WayMask};
pub use stats::{CoreCacheStats, HierarchyStats, SharedCacheStats};
