//! Cache-maintenance operations and the `Invalidatable` page protocol.
//!
//! IDIO introduces an invalidate-without-writeback instruction usable from
//! userspace (Sec. V-D). Because such an instruction can expose stale data
//! across processes, the paper guards it with a PTE bit: the kernel marks a
//! page *Invalidatable* only after flushing it to DRAM, and the instruction
//! faults on pages without the bit. This module models the page table, the
//! kernel allocation step, and the checked multi-cacheline invalidate.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::addr::{lines_covering, Addr, CoreId, PageAddr, PAGE_SIZE};
use crate::hierarchy::{Hierarchy, InvalidateScope, MemEffects};

/// Error returned when a maintenance operation violates page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotInvalidatableError {
    /// The first offending page.
    pub page: PageAddr,
}

impl fmt::Display for NotInvalidatableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page {} is not marked Invalidatable; invalidate-without-writeback faulted",
            self.page
        )
    }
}

impl Error for NotInvalidatableError {}

/// The modelled page table: tracks the per-page `Invalidatable` PTE bit.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::Addr;
/// use idio_cache::maintenance::PageTable;
///
/// let mut pt = PageTable::new();
/// assert!(!pt.is_invalidatable(Addr::new(0x5000)));
/// pt.mark_invalidatable(Addr::new(0x5000), 4096);
/// assert!(pt.is_invalidatable(Addr::new(0x5fff)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    invalidatable: HashSet<PageAddr>,
}

impl PageTable {
    /// Creates an empty page table (no page is invalidatable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `Invalidatable` bit on every page overlapping
    /// `[start, start + len)`.
    pub fn mark_invalidatable(&mut self, start: Addr, len: u64) {
        for page in pages_covering(start, len) {
            self.invalidatable.insert(page);
        }
    }

    /// Clears the `Invalidatable` bit on every page overlapping the range
    /// (e.g. when the kernel reclaims the buffer).
    pub fn clear_invalidatable(&mut self, start: Addr, len: u64) {
        for page in pages_covering(start, len) {
            self.invalidatable.remove(&page);
        }
    }

    /// Whether the page containing `addr` is invalidatable.
    pub fn is_invalidatable(&self, addr: Addr) -> bool {
        self.invalidatable.contains(&addr.page())
    }

    /// Whether every page overlapping `[start, start + len)` is
    /// invalidatable; returns the first offender otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`NotInvalidatableError`] naming the first page without the
    /// PTE bit.
    pub fn check_range(&self, start: Addr, len: u64) -> Result<(), NotInvalidatableError> {
        for page in pages_covering(start, len) {
            if !self.invalidatable.contains(&page) {
                return Err(NotInvalidatableError { page });
            }
        }
        Ok(())
    }

    /// Number of invalidatable pages.
    pub fn invalidatable_pages(&self) -> usize {
        self.invalidatable.len()
    }
}

fn pages_covering(start: Addr, len: u64) -> impl Iterator<Item = PageAddr> {
    let first = start.page().get();
    let last = if len == 0 {
        first
    } else {
        (start.get() + len - 1) >> crate::addr::PAGE_SHIFT
    };
    (first..=last).map(PageAddr::new)
}

/// Kernel-side allocation of an `Invalidatable` buffer: flushes the range
/// to DRAM (so no stale data from a previous owner can be resurrected) and
/// then sets the PTE bits.
///
/// Returns the DRAM traffic caused by the flush.
pub fn allocate_invalidatable(
    page_table: &mut PageTable,
    hierarchy: &mut Hierarchy,
    start: Addr,
    len: u64,
) -> MemEffects {
    let mut fx = MemEffects::default();
    for line in lines_covering(start, round_up_to_pages(len)) {
        fx.merge(hierarchy.flush_line(line));
    }
    page_table.mark_invalidatable(start, len);
    fx
}

fn round_up_to_pages(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// The checked multi-cacheline invalidate instruction: drops every line of
/// `[start, start + len)` from `core`'s private caches (and the LLC under
/// [`InvalidateScope::IncludeLlc`]) without writeback, after verifying the
/// `Invalidatable` PTE bit on every touched page.
///
/// Returns the number of lines that actually held a dropped copy.
///
/// # Errors
///
/// Returns [`NotInvalidatableError`] — modelling the hardware fault — if
/// any page in the range lacks the PTE bit. No line is invalidated in that
/// case.
pub fn invalidate_range(
    hierarchy: &mut Hierarchy,
    page_table: &PageTable,
    core: CoreId,
    start: Addr,
    len: u64,
    scope: InvalidateScope,
) -> Result<u64, NotInvalidatableError> {
    page_table.check_range(start, len)?;
    let mut dropped = 0;
    for line in lines_covering(start, len) {
        let out = hierarchy.self_invalidate(core, line, scope);
        if out.private_dropped || out.llc_dropped {
            dropped += 1;
        }
    }
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::hierarchy::DmaPlacement;

    const C0: CoreId = CoreId::new(0);

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::paper_default(2))
    }

    #[test]
    fn mark_and_check_ranges() {
        let mut pt = PageTable::new();
        pt.mark_invalidatable(Addr::new(0x2000), 8192);
        assert!(pt.check_range(Addr::new(0x2000), 8192).is_ok());
        assert!(pt.check_range(Addr::new(0x2000), 8193).is_err());
        assert_eq!(pt.invalidatable_pages(), 2);
        pt.clear_invalidatable(Addr::new(0x2000), 1);
        assert!(!pt.is_invalidatable(Addr::new(0x2000)));
        assert!(pt.is_invalidatable(Addr::new(0x3000)));
    }

    #[test]
    fn unaligned_range_covers_both_pages() {
        let mut pt = PageTable::new();
        pt.mark_invalidatable(Addr::new(0xFFF), 2);
        assert!(pt.is_invalidatable(Addr::new(0x0)));
        assert!(pt.is_invalidatable(Addr::new(0x1000)));
    }

    #[test]
    fn invalidate_range_faults_without_pte_bit() {
        let mut h = hierarchy();
        let pt = PageTable::new();
        h.cpu_write(C0, Addr::new(0x4000).line());
        let err = invalidate_range(
            &mut h,
            &pt,
            C0,
            Addr::new(0x4000),
            64,
            InvalidateScope::PrivateOnly,
        )
        .unwrap_err();
        assert_eq!(err.page, Addr::new(0x4000).page());
        // Nothing was dropped: the line is still cached.
        assert!(h.mlc(C0).contains(Addr::new(0x4000).line()));
    }

    #[test]
    fn invalidate_range_drops_buffer_lines() {
        let mut h = hierarchy();
        let mut pt = PageTable::new();
        let base = Addr::new(0x10000);
        allocate_invalidatable(&mut pt, &mut h, base, 2048);
        // Core touches the whole 2 KiB buffer (32 lines).
        for line in lines_covering(base, 2048) {
            h.cpu_write(C0, line);
        }
        let dropped = invalidate_range(&mut h, &pt, C0, base, 2048, InvalidateScope::PrivateOnly)
            .expect("range is invalidatable");
        assert_eq!(dropped, 32);
        // No writebacks to DRAM happened for the dropped dirty lines.
        assert_eq!(h.stats().shared.dram_writes.get(), 0);
        h.check_invariants();
    }

    #[test]
    fn allocation_flushes_stale_dirty_data() {
        let mut h = hierarchy();
        let mut pt = PageTable::new();
        let base = Addr::new(0x20000);
        // A previous owner left dirty data behind.
        h.cpu_write(C0, base.line());
        let fx = allocate_invalidatable(&mut pt, &mut h, base, 64);
        assert_eq!(fx.dram_writes, 1);
        assert!(!h.mlc(C0).contains(base.line()));
        assert!(pt.is_invalidatable(base));
    }

    #[test]
    fn llc_scope_drops_llc_copies_in_range() {
        let mut h = hierarchy();
        let mut pt = PageTable::new();
        let base = Addr::new(0x30000);
        pt.mark_invalidatable(base, 4096);
        h.pcie_write(base.line(), DmaPlacement::Llc);
        let dropped =
            invalidate_range(&mut h, &pt, C0, base, 64, InvalidateScope::IncludeLlc).unwrap();
        assert_eq!(dropped, 1);
        assert!(!h.llc().contains(base.line()));
    }

    #[test]
    fn error_message_names_page() {
        let err = NotInvalidatableError {
            page: PageAddr::new(5),
        };
        let msg = err.to_string();
        assert!(msg.contains("P0x5"));
        assert!(msg.contains("Invalidatable"));
    }
}
