//! Replacement policies for the set-associative arrays.
//!
//! The baseline model uses true LRU (what gem5's classic caches default
//! to); [`ReplacementPolicy`] also provides tree-PLRU (what real Skylake
//! LLCs approximate), SRRIP, and pseudo-random — useful for ablating how
//! sensitive the paper's observations are to the replacement policy.
//!
//! A policy instance holds the per-set metadata for *one* cache and is
//! driven by the cache array through three hooks: `on_insert`, `on_touch`,
//! and `victim` (choose among the permitted, fully occupied ways).

use crate::set::{SetBits, WayMask};

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU (binary decision tree per set).
    TreePlru,
    /// Static re-reference interval prediction (2-bit RRPV, hit promotion
    /// to 0, insert at 2).
    Srrip,
    /// Pseudo-random (xorshift) victim selection.
    Random,
}

impl std::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::TreePlru => "TreePLRU",
            ReplacementKind::Srrip => "SRRIP",
            ReplacementKind::Random => "Random",
        })
    }
}

/// Per-cache replacement state.
///
/// Every variant keeps its per-line metadata in one flat slab (slot index
/// `set * ways + way`) so a touch or victim scan walks contiguous memory —
/// the same struct-of-arrays layout the cache array itself uses for tags
/// and valid/dirty bits.
#[derive(Debug, Clone)]
pub enum ReplacementPolicy {
    /// LRU stamps (monotonic counter per way).
    Lru {
        /// `stamps[set * ways + way]`, larger = more recent.
        stamps: Box<[u64]>,
        /// Associativity (slot stride).
        ways: usize,
        /// Next stamp to hand out.
        next: u64,
    },
    /// Tree-PLRU decision bits, one tree per set.
    TreePlru {
        /// `bits[set]`: the (ways-1) internal tree nodes, packed LSB-first.
        bits: Box<[u64]>,
        /// Associativity (power of two required).
        ways: usize,
    },
    /// SRRIP 2-bit re-reference prediction values.
    Srrip {
        /// `rrpv[set * ways + way]` in `0..=3`.
        rrpv: Box<[u8]>,
        /// Associativity (slot stride).
        ways: usize,
    },
    /// Pseudo-random state.
    Random {
        /// xorshift state.
        state: u64,
    },
}

impl ReplacementPolicy {
    /// Creates policy state for a cache of `num_sets` x `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `TreePlru` is requested with a non-power-of-two
    /// associativity.
    pub fn new(kind: ReplacementKind, num_sets: usize, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => ReplacementPolicy::Lru {
                stamps: vec![0; num_sets * ways].into_boxed_slice(),
                ways,
                next: 1,
            },
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU needs power-of-two associativity, got {ways}"
                );
                ReplacementPolicy::TreePlru {
                    bits: vec![0; num_sets].into_boxed_slice(),
                    ways,
                }
            }
            ReplacementKind::Srrip => ReplacementPolicy::Srrip {
                rrpv: vec![3; num_sets * ways].into_boxed_slice(),
                ways,
            },
            ReplacementKind::Random => ReplacementPolicy::Random {
                state: 0x9E37_79B9_7F4A_7C15,
            },
        }
    }

    /// The kind of this policy instance.
    pub fn kind(&self) -> ReplacementKind {
        match self {
            ReplacementPolicy::Lru { .. } => ReplacementKind::Lru,
            ReplacementPolicy::TreePlru { .. } => ReplacementKind::TreePlru,
            ReplacementPolicy::Srrip { .. } => ReplacementKind::Srrip,
            ReplacementPolicy::Random { .. } => ReplacementKind::Random,
        }
    }

    /// Records that `way` of `set` was (re)inserted.
    pub fn on_insert(&mut self, set: usize, way: usize) {
        match self {
            ReplacementPolicy::Lru { stamps, ways, next } => {
                stamps[set * *ways + way] = *next;
                *next += 1;
            }
            ReplacementPolicy::TreePlru { bits, ways } => {
                touch_plru(&mut bits[set], way, *ways);
            }
            ReplacementPolicy::Srrip { rrpv, ways } => {
                // Insert with "long re-reference interval" (RRPV = 2).
                rrpv[set * *ways + way] = 2;
            }
            ReplacementPolicy::Random { .. } => {}
        }
    }

    /// Records a hit on `way` of `set`.
    pub fn on_touch(&mut self, set: usize, way: usize) {
        match self {
            ReplacementPolicy::Lru { stamps, ways, next } => {
                stamps[set * *ways + way] = *next;
                *next += 1;
            }
            ReplacementPolicy::TreePlru { bits, ways } => {
                touch_plru(&mut bits[set], way, *ways);
            }
            ReplacementPolicy::Srrip { rrpv, ways } => {
                rrpv[set * *ways + way] = 0;
            }
            ReplacementPolicy::Random { .. } => {}
        }
    }

    /// Chooses a victim among the permitted (and fully occupied) ways of
    /// `set`.
    ///
    /// Allocation-free: the permitted set is carried as a bit pattern and
    /// scanned in ascending way order, which preserves the tie-breaking of
    /// the original "collect permitted ways into a `Vec`" implementation
    /// (first minimum wins) without the per-eviction allocation.
    ///
    /// # Panics
    ///
    /// Panics if `mask` permits no way below `total_ways`.
    pub fn victim(&mut self, set: usize, mask: WayMask, total_ways: usize) -> usize {
        let perm = mask.bits() & WayMask::all(total_ways).bits();
        assert!(perm != 0, "way mask selects no way");
        match self {
            ReplacementPolicy::Lru { stamps, ways, .. } => {
                let base = set * *ways;
                let mut best = usize::MAX;
                let mut best_stamp = u64::MAX;
                for w in SetBits(perm) {
                    let s = stamps[base + w];
                    if s < best_stamp {
                        best_stamp = s;
                        best = w;
                    }
                }
                best
            }
            ReplacementPolicy::TreePlru { bits, ways } => {
                // Walk the tree toward the PLRU leaf; if it is outside the
                // mask, fall back to the first permitted way that the tree
                // has pointed away from longest (approximate with the
                // plru leaf scan order).
                let leaf = plru_victim(bits[set], *ways);
                if mask.contains(leaf) {
                    leaf
                } else {
                    perm.trailing_zeros() as usize
                }
            }
            ReplacementPolicy::Srrip { rrpv, ways } => {
                let base = set * *ways;
                // Age permitted ways until one reaches RRPV 3.
                loop {
                    if let Some(w) = SetBits(perm).find(|&w| rrpv[base + w] == 3) {
                        return w;
                    }
                    for w in SetBits(perm) {
                        rrpv[base + w] = (rrpv[base + w] + 1).min(3);
                    }
                }
            }
            ReplacementPolicy::Random { state } => {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                let n = perm.count_ones() as u64;
                let k = (*state % n) as usize;
                SetBits(perm).nth(k).expect("k < popcount")
            }
        }
    }
}

/// Flips the tree bits so they point *away* from `way`.
fn touch_plru(bits: &mut u64, way: usize, ways: usize) {
    let mut node = 0usize; // root
    let mut lo = 0usize;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if way < mid {
            // Went left: point the bit right.
            *bits |= 1 << node;
            node = 2 * node + 1;
            hi = mid;
        } else {
            *bits &= !(1 << node);
            node = 2 * node + 2;
            lo = mid;
        }
    }
}

/// Follows the tree bits to the PLRU leaf.
fn plru_victim(bits: u64, ways: usize) -> usize {
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = ways;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if bits >> node & 1 == 1 {
            // Bit points right.
            node = 2 * node + 2;
            lo = mid;
        } else {
            node = 2 * node + 1;
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let mut p = ReplacementPolicy::new(ReplacementKind::Lru, 1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
        }
        p.on_touch(0, 0);
        assert_eq!(p.victim(0, WayMask::all(4), 4), 1);
    }

    #[test]
    fn lru_respects_mask() {
        let mut p = ReplacementPolicy::new(ReplacementKind::Lru, 1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
        }
        assert_eq!(p.victim(0, WayMask::range(2, 4), 4), 2);
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut p = ReplacementPolicy::new(ReplacementKind::TreePlru, 1, 8);
        for w in 0..8 {
            p.on_insert(0, w);
        }
        for _ in 0..100 {
            let v = p.victim(0, WayMask::all(8), 8);
            p.on_touch(0, v);
            // Immediately after touching, the same way is not the victim.
            assert_ne!(p.victim(0, WayMask::all(8), 8), v);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_pow2() {
        let _ = ReplacementPolicy::new(ReplacementKind::TreePlru, 1, 12);
    }

    #[test]
    fn srrip_promotes_on_hit() {
        let mut p = ReplacementPolicy::new(ReplacementKind::Srrip, 1, 2);
        p.on_insert(0, 0);
        p.on_insert(0, 1);
        p.on_touch(0, 0); // way 0 becomes near-immune
        let v = p.victim(0, WayMask::all(2), 2);
        assert_eq!(v, 1, "the non-promoted way ages out first");
    }

    #[test]
    fn srrip_terminates_by_aging() {
        let mut p = ReplacementPolicy::new(ReplacementKind::Srrip, 1, 4);
        for w in 0..4 {
            p.on_insert(0, w);
            p.on_touch(0, w);
        }
        // All at RRPV 0: victim still found by aging.
        let v = p.victim(0, WayMask::all(4), 4);
        assert!(v < 4);
    }

    #[test]
    fn random_is_deterministic_and_in_mask() {
        let mut a = ReplacementPolicy::new(ReplacementKind::Random, 1, 8);
        let mut b = ReplacementPolicy::new(ReplacementKind::Random, 1, 8);
        for _ in 0..50 {
            let (va, vb) = (
                a.victim(0, WayMask::range(3, 6), 8),
                b.victim(0, WayMask::range(3, 6), 8),
            );
            assert_eq!(va, vb);
            assert!((3..6).contains(&va));
        }
    }

    #[test]
    fn kind_roundtrips() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Srrip,
            ReplacementKind::Random,
        ] {
            let ways = if kind == ReplacementKind::TreePlru {
                8
            } else {
                12
            };
            assert_eq!(ReplacementPolicy::new(kind, 4, ways).kind(), kind);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", ReplacementKind::TreePlru), "TreePLRU");
        assert_eq!(format!("{}", ReplacementKind::Lru), "LRU");
    }
}
