//! Set-associative cache arrays with LRU replacement and way masks.
//!
//! [`SetAssocCache`] is the building block for every cache level. It is a
//! pure state machine over cache-line tags — data contents are never
//! modelled, only presence and dirtiness. Allocation can be restricted to a
//! subset of ways via a [`WayMask`], which models both the DDIO way
//! partition and CAT-style way partitioning (the `*_1way` configurations of
//! Fig. 4).

use std::fmt;

use crate::addr::LineAddr;
use crate::replacement::{ReplacementKind, ReplacementPolicy};

/// A bitmask selecting a subset of a cache's ways.
///
/// # Examples
///
/// ```
/// use idio_cache::set::WayMask;
///
/// let ddio = WayMask::first(2);
/// assert!(ddio.contains(0) && ddio.contains(1) && !ddio.contains(2));
/// let rest = ddio.complement(11);
/// assert_eq!(rest.count(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(u64);

impl WayMask {
    /// A mask selecting no ways. Allocation with this mask always fails.
    pub const EMPTY: WayMask = WayMask(0);

    /// Selects all `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` exceeds 64.
    pub fn all(ways: usize) -> Self {
        assert!(ways <= 64, "at most 64 ways supported");
        if ways == 64 {
            WayMask(u64::MAX)
        } else {
            WayMask((1u64 << ways) - 1)
        }
    }

    /// Selects the first `n` ways (ways `0..n`).
    pub fn first(n: usize) -> Self {
        Self::all(n)
    }

    /// Selects ways `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > 64`.
    pub fn range(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= 64, "invalid way range");
        WayMask(Self::all(hi).0 & !Self::all(lo).0)
    }

    /// Whether way `w` is selected.
    #[inline]
    pub const fn contains(self, w: usize) -> bool {
        w < 64 && (self.0 >> w) & 1 == 1
    }

    /// Number of selected ways.
    #[inline]
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Ways in `0..total` not selected by `self`.
    pub fn complement(self, total: usize) -> WayMask {
        WayMask(WayMask::all(total).0 & !self.0)
    }

    /// Union of two masks.
    #[inline]
    pub const fn union(self, other: WayMask) -> WayMask {
        WayMask(self.0 | other.0)
    }

    /// Whether no ways are selected.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Intersection of two masks.
    #[inline]
    pub const fn intersect(self, other: WayMask) -> WayMask {
        WayMask(self.0 & other.0)
    }

    /// The raw bit pattern (bit `w` set ⇔ way `w` selected).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// A mask from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u64) -> WayMask {
        WayMask(bits)
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ways{:#b}", self.0)
    }
}

/// A resident cache line's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEntry {
    /// The resident line address.
    pub line: LineAddr,
    /// Whether the line holds data newer than the next level / DRAM.
    pub dirty: bool,
}

/// A line evicted to make room for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the evicted line was dirty.
    pub dirty: bool,
    /// The way it was evicted from.
    pub way: usize,
}

/// Iterates the set bit positions of a word, ascending.
pub(crate) struct SetBits(pub(crate) u64);

impl Iterator for SetBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let w = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(w)
    }
}

/// A set-associative cache array with per-set LRU replacement.
///
/// Internally the array is flat: one tag word per slot plus per-set
/// `valid`/`dirty` bitmasks, so a lookup is a bit-scan over at most
/// `ways` tag compares with no pointer chasing and no `Option` padding,
/// and an invalid-way search is a single `trailing_zeros`. This is the
/// hottest data structure in the simulator — every DMA line, CPU access
/// and prefetch lands here.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::LineAddr;
/// use idio_cache::set::{SetAssocCache, WayMask};
///
/// // A 4-set, 2-way cache (512 bytes).
/// let mut c = SetAssocCache::new("toy", 4, 2);
/// let mask = WayMask::all(2);
/// assert!(c.insert(LineAddr::new(0), false, mask).0.is_none());
/// assert!(c.contains(LineAddr::new(0)));
/// // Filling the same set twice more evicts the LRU line.
/// c.insert(LineAddr::new(4), false, mask);
/// let (victim, _) = c.insert(LineAddr::new(8), false, mask);
/// assert_eq!(victim.unwrap().line, LineAddr::new(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    name: &'static str,
    num_sets: usize,
    ways: usize,
    /// Tag (raw line number) per slot; slot index = `set * ways + way`.
    /// Only meaningful where the set's `valid` bit is on.
    tags: Box<[u64]>,
    /// Per-set validity bitmask (bit `w` = way `w` holds a line).
    valid: Box<[u64]>,
    /// Per-set dirty bitmask (subset of `valid`).
    dirty: Box<[u64]>,
    policy: ReplacementPolicy,
    resident: usize,
    /// Half-open `[lo, hi)` raw-line ranges whose occupancy is counted
    /// incrementally; see [`SetAssocCache::track_ranges`].
    tracked: Box<[(u64, u64)]>,
    /// Cold plane parallel to `valid`: bit `w` of `tracked_bits[set]` says
    /// whether the line in that slot lies inside a tracked range. The
    /// range membership is computed once at fill time, so evictions and
    /// removals read one bit instead of re-scanning `tracked`. Empty when
    /// nothing is tracked.
    tracked_bits: Box<[u64]>,
    tracked_resident: usize,
}

impl SetAssocCache {
    /// Creates a cache with `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero, or `ways > 64`.
    pub fn new(name: &'static str, num_sets: usize, ways: usize) -> Self {
        Self::with_policy(name, num_sets, ways, ReplacementKind::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero, `ways > 64`, or the policy
    /// has associativity constraints the geometry violates (tree-PLRU
    /// needs a power-of-two way count).
    pub fn with_policy(
        name: &'static str,
        num_sets: usize,
        ways: usize,
        kind: ReplacementKind,
    ) -> Self {
        assert!(num_sets > 0, "cache needs at least one set");
        assert!(ways > 0 && ways <= 64, "ways must be in 1..=64");
        SetAssocCache {
            name,
            num_sets,
            ways,
            tags: vec![0; num_sets * ways].into_boxed_slice(),
            valid: vec![0; num_sets].into_boxed_slice(),
            dirty: vec![0; num_sets].into_boxed_slice(),
            policy: ReplacementPolicy::new(kind, num_sets, ways),
            resident: 0,
            tracked: Box::new([]),
            tracked_bits: Box::new([]),
            tracked_resident: 0,
        }
    }

    /// Creates a cache from a capacity in bytes (64-byte lines).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways * 64`.
    pub fn with_capacity(name: &'static str, bytes: u64, ways: usize) -> Self {
        let lines = bytes / crate::addr::LINE_SIZE;
        assert!(
            bytes.is_multiple_of(crate::addr::LINE_SIZE * ways as u64),
            "capacity {bytes} not divisible into {ways}-way sets"
        );
        Self::new(name, (lines / ways as u64) as usize, ways)
    }

    /// Creates a cache from a capacity in bytes with an explicit
    /// replacement policy.
    ///
    /// # Panics
    ///
    /// As [`SetAssocCache::with_policy`] and
    /// [`SetAssocCache::with_capacity`].
    pub fn with_capacity_policy(
        name: &'static str,
        bytes: u64,
        ways: usize,
        kind: ReplacementKind,
    ) -> Self {
        let lines = bytes / crate::addr::LINE_SIZE;
        assert!(
            bytes.is_multiple_of(crate::addr::LINE_SIZE * ways as u64),
            "capacity {bytes} not divisible into {ways}-way sets"
        );
        Self::with_policy(name, (lines / ways as u64) as usize, ways, kind)
    }

    /// The replacement policy in use.
    pub fn replacement_kind(&self) -> ReplacementKind {
        self.policy.kind()
    }

    /// The cache's name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.get() % self.num_sets as u64) as usize
    }

    /// The way holding `line` in set `idx`, if any. The single-residency
    /// invariant (insert refreshes instead of duplicating) makes the
    /// match unique, so scan order does not matter.
    #[inline]
    fn find_way(&self, idx: usize, line: LineAddr) -> Option<usize> {
        let base = idx * self.ways;
        let tag = line.get();
        SetBits(self.valid[idx]).find(|&w| self.tags[base + w] == tag)
    }

    #[inline]
    fn entry_at(&self, idx: usize, w: usize) -> LineEntry {
        LineEntry {
            line: LineAddr::new(self.tags[idx * self.ways + w]),
            dirty: (self.dirty[idx] >> w) & 1 == 1,
        }
    }

    /// Whether `line` is resident. Does not touch LRU state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(self.set_index(line), line).is_some()
    }

    /// Looks up `line` without updating LRU state.
    pub fn probe(&self, line: LineAddr) -> Option<LineEntry> {
        let idx = self.set_index(line);
        self.find_way(idx, line).map(|w| self.entry_at(idx, w))
    }

    /// Looks up `line`, updating replacement state on hit. Returns the
    /// entry.
    pub fn touch(&mut self, line: LineAddr) -> Option<LineEntry> {
        let idx = self.set_index(line);
        let w = self.find_way(idx, line)?;
        self.policy.on_touch(idx, w);
        Some(self.entry_at(idx, w))
    }

    /// Marks `line` dirty if resident; returns whether it was resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        match self.find_way(idx, line) {
            Some(w) => {
                self.dirty[idx] |= 1 << w;
                true
            }
            None => false,
        }
    }

    /// Removes `line` if resident, returning its entry. No writeback is
    /// implied — the caller decides what to do with a dirty victim.
    pub fn remove(&mut self, line: LineAddr) -> Option<LineEntry> {
        let idx = self.set_index(line);
        let w = self.find_way(idx, line)?;
        let entry = self.entry_at(idx, w);
        self.valid[idx] &= !(1 << w);
        self.dirty[idx] &= !(1 << w);
        self.resident -= 1;
        self.untrack_slot(idx, w);
        Some(entry)
    }

    /// Allocates `line` into a way permitted by `mask`, evicting the LRU
    /// permitted line if the permitted ways are full.
    ///
    /// Returns `(victim, way)`: the evicted line (if any) and the way the
    /// new line was placed in. If `line` is already resident (in any way),
    /// the existing entry is refreshed instead: its LRU stamp is updated,
    /// `dirty` is OR-ed in, and no eviction occurs.
    ///
    /// # Panics
    ///
    /// Panics if `mask` selects no way below `self.ways()`.
    pub fn insert(
        &mut self,
        line: LineAddr,
        dirty: bool,
        mask: WayMask,
    ) -> (Option<Victim>, usize) {
        let idx = self.set_index(line);

        // Refresh if already resident (any way, even outside the mask:
        // an in-place update does not migrate ways).
        if let Some(w) = self.find_way(idx, line) {
            self.dirty[idx] |= u64::from(dirty) << w;
            self.policy.on_touch(idx, w);
            return (None, w);
        }

        // Prefer the lowest invalid permitted way.
        let ways_bits = WayMask::all(self.ways).0;
        let free = !self.valid[idx] & mask.0 & ways_bits;
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            self.fill_slot(idx, w, line, dirty);
            self.policy.on_insert(idx, w);
            self.resident += 1;
            self.track_slot(idx, w, line);
            return (None, w);
        }

        // Evict the policy's victim among the permitted ways.
        assert!(
            mask.0 & ways_bits != 0,
            "{}: way mask {mask} selects no way",
            self.name
        );
        let victim_way = self.policy.victim(idx, mask, self.ways);
        let old = self.entry_at(idx, victim_way);
        self.untrack_slot(idx, victim_way);
        self.fill_slot(idx, victim_way, line, dirty);
        self.policy.on_insert(idx, victim_way);
        self.track_slot(idx, victim_way, line);
        (
            Some(Victim {
                line: old.line,
                dirty: old.dirty,
                way: victim_way,
            }),
            victim_way,
        )
    }

    #[inline]
    fn fill_slot(&mut self, idx: usize, w: usize, line: LineAddr, dirty: bool) {
        self.tags[idx * self.ways + w] = line.get();
        self.valid[idx] |= 1 << w;
        self.dirty[idx] = (self.dirty[idx] & !(1 << w)) | (u64::from(dirty) << w);
    }

    /// The way `line` currently occupies, if resident.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        self.find_way(self.set_index(line), line)
    }

    /// Iterates over all resident lines (set-major order).
    pub fn iter(&self) -> impl Iterator<Item = LineEntry> + '_ {
        (0..self.num_sets)
            .flat_map(move |idx| SetBits(self.valid[idx]).map(move |w| self.entry_at(idx, w)))
    }

    /// Removes every resident line, returning the dirty ones.
    pub fn drain_dirty(&mut self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for idx in 0..self.num_sets {
            let base = idx * self.ways;
            for w in SetBits(self.valid[idx] & self.dirty[idx]) {
                out.push(LineAddr::new(self.tags[base + w]));
            }
            self.resident -= self.valid[idx].count_ones() as usize;
            self.valid[idx] = 0;
            self.dirty[idx] = 0;
        }
        self.tracked_bits.fill(0);
        self.tracked_resident = 0;
        out
    }

    /// Declares the half-open `[lo, hi)` raw-line ranges whose combined
    /// residency [`SetAssocCache::tracked_resident`] reports. The count
    /// is maintained incrementally on insert/evict/remove, replacing the
    /// full-array occupancy scans the telemetry sampler used to do.
    /// Replaces any previous ranges; the counter is recomputed from the
    /// current contents.
    pub fn track_ranges(&mut self, ranges: &[(u64, u64)]) {
        self.tracked = ranges.to_vec().into_boxed_slice();
        self.tracked_bits = vec![0; self.num_sets].into_boxed_slice();
        self.tracked_resident = 0;
        for idx in 0..self.num_sets {
            let base = idx * self.ways;
            for w in SetBits(self.valid[idx]) {
                let l = self.tags[base + w];
                if ranges.iter().any(|&(lo, hi)| l >= lo && l < hi) {
                    self.tracked_bits[idx] |= 1 << w;
                    self.tracked_resident += 1;
                }
            }
        }
    }

    /// Number of resident lines inside the tracked ranges. Zero when no
    /// ranges are tracked.
    #[inline]
    pub fn tracked_resident(&self) -> usize {
        self.tracked_resident
    }

    #[inline]
    fn in_tracked(&self, line: LineAddr) -> bool {
        let l = line.get();
        self.tracked.iter().any(|&(lo, hi)| l >= lo && l < hi)
    }

    /// Records the tracked-range membership of the line just filled into
    /// `(idx, w)`. The range scan happens here, once per fill; the
    /// membership bit makes the eventual eviction or removal O(1).
    #[inline]
    fn track_slot(&mut self, idx: usize, w: usize, line: LineAddr) {
        if self.tracked.is_empty() {
            return;
        }
        if self.in_tracked(line) {
            self.tracked_bits[idx] |= 1 << w;
            self.tracked_resident += 1;
        } else {
            self.tracked_bits[idx] &= !(1 << w);
        }
    }

    /// Clears the tracked bit of slot `(idx, w)` on eviction/removal,
    /// decrementing the occupancy counter if the departing line was in a
    /// tracked range.
    #[inline]
    fn untrack_slot(&mut self, idx: usize, w: usize) {
        if self.tracked.is_empty() {
            return;
        }
        if self.tracked_bits[idx] & (1 << w) != 0 {
            self.tracked_bits[idx] &= !(1 << w);
            self.tracked_resident -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn with_capacity_geometry() {
        // 1 MiB 8-way: 2048 sets.
        let c = SetAssocCache::with_capacity("mlc", 1 << 20, 8);
        assert_eq!(c.num_sets(), 2048);
        assert_eq!(c.capacity_lines(), 16384);
        // 3 MiB 12-way LLC: 4096 sets.
        let l = SetAssocCache::with_capacity("llc", 3 << 20, 12);
        assert_eq!(l.num_sets(), 4096);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn with_capacity_rejects_ragged() {
        let _ = SetAssocCache::with_capacity("bad", 1000, 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new("t", 1, 3);
        let m = WayMask::all(3);
        c.insert(line(1), false, m);
        c.insert(line(2), false, m);
        c.insert(line(3), false, m);
        // Touch line 1 so line 2 becomes LRU.
        c.touch(line(1));
        let (v, _) = c.insert(line(4), false, m);
        assert_eq!(v.unwrap().line, line(2));
    }

    #[test]
    fn insert_refreshes_existing_without_eviction() {
        let mut c = SetAssocCache::new("t", 1, 2);
        let m = WayMask::all(2);
        c.insert(line(1), false, m);
        c.insert(line(2), false, m);
        let (v, _) = c.insert(line(1), true, m);
        assert!(v.is_none());
        assert!(c.probe(line(1)).unwrap().dirty);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn way_mask_restricts_allocation() {
        let mut c = SetAssocCache::new("llc", 1, 4);
        let ddio = WayMask::first(2);
        // Four inserts through a 2-way mask keep only 2 lines.
        for i in 0..4 {
            c.insert(line(i), true, ddio);
        }
        assert_eq!(c.resident_lines(), 2);
        assert!(c.way_of(line(2)).unwrap() < 2);
        assert!(c.way_of(line(3)).unwrap() < 2);
        // The other ways are still free for unmasked inserts.
        let (v, w) = c.insert(line(10), false, WayMask::all(4));
        assert!(v.is_none());
        assert!(w >= 2);
    }

    #[test]
    fn masked_insert_refresh_does_not_migrate_way() {
        let mut c = SetAssocCache::new("llc", 1, 4);
        c.insert(line(1), false, WayMask::range(2, 4));
        let w0 = c.way_of(line(1)).unwrap();
        // Re-inserting through the DDIO mask must refresh in place.
        let (v, w) = c.insert(line(1), true, WayMask::first(2));
        assert!(v.is_none());
        assert_eq!(w, w0);
        assert!(c.probe(line(1)).unwrap().dirty);
    }

    #[test]
    fn remove_returns_dirty_state() {
        let mut c = SetAssocCache::new("t", 2, 2);
        c.insert(line(5), true, WayMask::all(2));
        let e = c.remove(line(5)).unwrap();
        assert!(e.dirty);
        assert!(!c.contains(line(5)));
        assert!(c.remove(line(5)).is_none());
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn mark_dirty_only_if_resident() {
        let mut c = SetAssocCache::new("t", 2, 2);
        assert!(!c.mark_dirty(line(9)));
        c.insert(line(9), false, WayMask::all(2));
        assert!(c.mark_dirty(line(9)));
        assert!(c.probe(line(9)).unwrap().dirty);
    }

    #[test]
    fn victims_report_their_way() {
        let mut c = SetAssocCache::new("t", 1, 2);
        let m = WayMask::all(2);
        c.insert(line(1), false, m);
        c.insert(line(2), false, m);
        let (v, w) = c.insert(line(3), false, m);
        let v = v.unwrap();
        assert_eq!(v.way, w);
        assert_eq!(v.line, line(1));
    }

    #[test]
    fn drain_dirty_reports_only_dirty_lines() {
        let mut c = SetAssocCache::new("t", 4, 2);
        c.insert(line(0), true, WayMask::all(2));
        c.insert(line(1), false, WayMask::all(2));
        c.insert(line(2), true, WayMask::all(2));
        let mut d = c.drain_dirty();
        d.sort();
        assert_eq!(d, vec![line(0), line(2)]);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn way_mask_algebra() {
        let m = WayMask::range(2, 5);
        assert_eq!(m.count(), 3);
        assert!(!m.contains(1) && m.contains(2) && m.contains(4) && !m.contains(5));
        let c = m.complement(6);
        assert_eq!(c.count(), 3);
        assert!(c.contains(0) && c.contains(1) && c.contains(5));
        assert_eq!(m.union(c), WayMask::all(6));
        assert!(WayMask::EMPTY.is_empty());
    }

    #[test]
    #[should_panic(expected = "selects no way")]
    fn empty_mask_insert_panics_when_full() {
        let mut c = SetAssocCache::new("t", 1, 1);
        c.insert(line(0), false, WayMask::all(1));
        c.insert(line(1), false, WayMask::EMPTY);
    }

    #[test]
    fn tracked_resident_follows_inserts_evictions_and_removals() {
        let mut c = SetAssocCache::new("t", 1, 2);
        let m = WayMask::all(2);
        c.insert(line(3), false, m); // in-range before tracking starts
        c.track_ranges(&[(0, 10)]);
        assert_eq!(c.tracked_resident(), 1, "recomputed from current contents");
        c.insert(line(5), false, m); // in range
        assert_eq!(c.tracked_resident(), 2);
        c.insert(line(21), false, m); // out of range, evicts line 3 (LRU)
        assert_eq!(c.tracked_resident(), 1);
        c.insert(line(5), true, m); // refresh: no change
        assert_eq!(c.tracked_resident(), 1);
        c.remove(line(5));
        assert_eq!(c.tracked_resident(), 0);
        c.insert(line(9), false, m);
        c.drain_dirty();
        assert_eq!(c.tracked_resident(), 0);
    }

    #[test]
    fn tracked_resident_matches_full_scan() {
        // The incremental counter must agree with the scan it replaced
        // under a random workload.
        let ranges = [(0u64, 40u64), (100, 140)];
        let mut c = SetAssocCache::new("t", 8, 4);
        c.track_ranges(&ranges);
        let mut state = 0x1D10_CA5Eu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..2_000 {
            let l = line(rng() % 200);
            match rng() % 4 {
                0 => {
                    c.remove(l);
                }
                1 => {
                    c.touch(l);
                }
                _ => {
                    c.insert(l, rng() % 2 == 0, WayMask::all(4));
                }
            }
            let scan = c
                .iter()
                .filter(|e| {
                    let l = e.line.get();
                    ranges.iter().any(|&(lo, hi)| l >= lo && l < hi)
                })
                .count();
            assert_eq!(c.tracked_resident(), scan);
        }
    }

    #[test]
    fn iter_reports_set_major_order_with_dirtiness() {
        let mut c = SetAssocCache::new("t", 2, 2);
        c.insert(line(1), true, WayMask::all(2)); // set 1
        c.insert(line(2), false, WayMask::all(2)); // set 0
        c.insert(line(3), false, WayMask::all(2)); // set 1
        let all: Vec<(u64, bool)> = c.iter().map(|e| (e.line.get(), e.dirty)).collect();
        assert_eq!(all, vec![(2, false), (1, true), (3, false)]);
    }
}
