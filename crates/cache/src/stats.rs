//! Typed event counters for the cache hierarchy.
//!
//! These counters are the raw material for every figure in the paper's
//! evaluation: MLC writeback rates (Figs. 4, 5, 9, 11, 13), LLC writeback
//! rates, DRAM read/write transactions (Fig. 10), invalidation rates, and
//! the prefetcher effectiveness counters used in ablations.

use idio_engine::stats::Counter;

use crate::addr::CoreId;

/// Per-core private-cache counters.
///
/// All fields are plain counters over cache-line transactions; this is a
/// passive data structure with public fields by design.
#[derive(Debug, Clone, Default)]
pub struct CoreCacheStats {
    /// L1D hits.
    pub l1_hits: Counter,
    /// MLC hits (L1 misses that hit in the MLC).
    pub mlc_hits: Counter,
    /// MLC misses (demand requests forwarded to the LLC).
    pub mlc_misses: Counter,
    /// Demand LLC hits attributed to this core (the shared
    /// [`SharedCacheStats::llc_hits`] counter cannot say *whose* miss hit).
    pub llc_hits: Counter,
    /// Demand LLC misses attributed to this core (requests that went all
    /// the way to DRAM).
    pub llc_misses: Counter,
    /// Lines evicted from the MLC into the LLC. In the non-inclusive
    /// hierarchy every MLC eviction transfers the line to the LLC, so this
    /// counts *all* MLC victims ("MLC writebacks" in the paper's figures).
    pub mlc_wb: Counter,
    /// The subset of [`CoreCacheStats::mlc_wb`] whose line was dirty.
    pub mlc_wb_dirty: Counter,
    /// MLC lines invalidated by an inbound PCIe write (NIC reusing a DMA
    /// buffer that was still core-resident).
    pub mlc_inval_by_dma: Counter,
    /// MLC lines moved back to the LLC by an outbound PCIe read (TX path).
    pub mlc_wb_by_pcie_rd: Counter,
    /// Lines dropped by the self-invalidate instruction (no writeback).
    pub self_invalidations: Counter,
    /// Prefetch hints accepted into the MLC prefetch queue.
    pub prefetch_hints: Counter,
    /// Prefetches that moved a line LLC → MLC.
    pub prefetch_fills: Counter,
    /// Prefetches dropped because the line was no longer in the LLC.
    pub prefetch_misses: Counter,
    /// Prefetch hints dropped because the queue was full.
    pub prefetch_queue_drops: Counter,
    /// Lines transferred directly from another core's MLC.
    pub c2c_transfers: Counter,
}

/// Shared LLC and DMA-path counters.
#[derive(Debug, Clone, Default)]
pub struct SharedCacheStats {
    /// Demand (CPU-side) LLC hits.
    pub llc_hits: Counter,
    /// Demand (CPU-side) LLC misses.
    pub llc_misses: Counter,
    /// Dirty LLC victims written back to DRAM ("LLC writebacks").
    pub llc_wb: Counter,
    /// Clean LLC victims silently dropped.
    pub llc_evict_clean: Counter,
    /// PCIe writes that write-allocated a line into the DDIO ways.
    pub ddio_allocs: Counter,
    /// PCIe writes that updated a line already resident in the LLC.
    pub ddio_updates: Counter,
    /// Victims evicted out of a DDIO way by a DDIO allocation (the "DMA
    /// leak" when dirty).
    pub ddio_evictions: Counter,
    /// PCIe writes steered directly to DRAM (IDIO selective direct DRAM
    /// access, or systems with DCA disabled).
    pub dma_direct_dram: Counter,
    /// PCIe reads served from the LLC.
    pub pcie_rd_llc_hits: Counter,
    /// PCIe reads that had to fetch from DRAM.
    pub pcie_rd_dram: Counter,
    /// Total inbound PCIe write transactions observed.
    pub pcie_writes: Counter,
    /// Total outbound PCIe read transactions observed.
    pub pcie_reads: Counter,
    /// DRAM line reads issued by the hierarchy (demand + PCIe).
    pub dram_reads: Counter,
    /// DRAM line writes issued by the hierarchy (LLC WBs + direct DMA).
    pub dram_writes: Counter,
    /// Lines whose LLC copy was dropped by an extended-scope
    /// self-invalidation.
    pub llc_self_invalidations: Counter,
    /// MLC lines back-invalidated because their snoop-filter directory
    /// entry was evicted (bounded-directory configurations only).
    pub dir_back_invalidations: Counter,
}

/// Complete hierarchy statistics: one [`CoreCacheStats`] per core plus the
/// shared counters.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// Per-core private-cache counters, indexed by core id.
    pub core: Vec<CoreCacheStats>,
    /// Shared LLC/DMA counters.
    pub shared: SharedCacheStats,
}

impl HierarchyStats {
    /// Creates zeroed statistics for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        HierarchyStats {
            core: vec![CoreCacheStats::default(); num_cores],
            shared: SharedCacheStats::default(),
        }
    }

    /// Per-core counters for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: CoreId) -> &CoreCacheStats {
        &self.core[core.index()]
    }

    /// Total MLC writebacks across all cores.
    pub fn total_mlc_wb(&self) -> u64 {
        self.core.iter().map(|c| c.mlc_wb.get()).sum()
    }

    /// Total MLC invalidations by DMA across all cores.
    pub fn total_mlc_inval_by_dma(&self) -> u64 {
        self.core.iter().map(|c| c.mlc_inval_by_dma.get()).sum()
    }

    /// Total self-invalidations across all cores.
    pub fn total_self_invalidations(&self) -> u64 {
        self.core.iter().map(|c| c.self_invalidations.get()).sum()
    }

    /// Total prefetch fills across all cores.
    pub fn total_prefetch_fills(&self) -> u64 {
        self.core.iter().map(|c| c.prefetch_fills.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_cores() {
        let mut s = HierarchyStats::new(3);
        s.core[0].mlc_wb.add(5);
        s.core[2].mlc_wb.add(7);
        s.core[1].mlc_inval_by_dma.add(2);
        assert_eq!(s.total_mlc_wb(), 12);
        assert_eq!(s.total_mlc_inval_by_dma(), 2);
        assert_eq!(s.core(CoreId::new(0)).mlc_wb.get(), 5);
    }

    #[test]
    fn default_is_zeroed() {
        let s = HierarchyStats::new(2);
        assert_eq!(s.total_mlc_wb(), 0);
        assert_eq!(s.shared.llc_wb.get(), 0);
    }
}
