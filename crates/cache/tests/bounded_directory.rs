//! Bounded-directory and replacement-policy configurations of the
//! hierarchy.

use idio_cache::addr::{CoreId, LineAddr};
use idio_cache::config::HierarchyConfig;
use idio_cache::directory::MlcDirectory;
use idio_cache::hierarchy::Hierarchy;
use idio_cache::replacement::ReplacementKind;

const C0: CoreId = CoreId::new(0);
const C1: CoreId = CoreId::new(1);

fn cfg() -> HierarchyConfig {
    HierarchyConfig::paper_default(2)
}

#[test]
fn unbounded_directory_never_evicts() {
    let mut d = MlcDirectory::new(2);
    for i in 0..100_000u64 {
        assert!(d.add(LineAddr::new(i), C0).is_none());
    }
    assert_eq!(d.len(), 100_000);
}

#[test]
fn bounded_directory_evicts_fifo() {
    let mut d = MlcDirectory::with_capacity(2, Some(3));
    assert!(d.add(LineAddr::new(1), C0).is_none());
    assert!(d.add(LineAddr::new(2), C1).is_none());
    assert!(d.add(LineAddr::new(3), C0).is_none());
    let ev = d.add(LineAddr::new(4), C0).expect("capacity eviction");
    assert_eq!(ev.line, LineAddr::new(1));
    assert_eq!(ev.holders.iter().collect::<Vec<_>>(), vec![C0]);
    assert_eq!(d.len(), 3);
    assert!(!d.is_cached(LineAddr::new(1)));
    assert!(d.is_cached(LineAddr::new(4)));
}

#[test]
fn re_add_does_not_trigger_eviction() {
    let mut d = MlcDirectory::with_capacity(2, Some(2));
    assert!(d.add(LineAddr::new(1), C0).is_none());
    assert!(d.add(LineAddr::new(2), C0).is_none());
    // Adding a second holder to an existing entry is not a new entry.
    assert!(d.add(LineAddr::new(1), C1).is_none());
    assert_eq!(d.holders(LineAddr::new(1)).len(), 2);
}

#[test]
fn stale_queue_entries_are_skipped() {
    let mut d = MlcDirectory::with_capacity(2, Some(2));
    let _ = d.add(LineAddr::new(1), C0);
    let _ = d.add(LineAddr::new(2), C0);
    d.remove(LineAddr::new(1), C0); // leaves a stale order entry
    assert!(
        d.add(LineAddr::new(3), C0).is_none(),
        "room freed by remove"
    );
    // Next insertion must evict line 2 (1 is stale), not panic.
    let ev = d.add(LineAddr::new(4), C0).unwrap();
    assert_eq!(ev.line, LineAddr::new(2));
}

#[test]
#[should_panic(expected = "capacity must be positive")]
fn zero_capacity_rejected() {
    let _ = MlcDirectory::with_capacity(2, Some(0));
}

#[test]
fn hierarchy_back_invalidates_on_directory_pressure() {
    let mut c = cfg();
    c.directory_entries = Some(64);
    let mut h = Hierarchy::new(c);
    // Touch far more than 64 distinct lines: older MLC lines must be
    // back-invalidated to keep the directory consistent.
    for i in 0..1000u64 {
        h.cpu_write(C0, LineAddr::new(i * 7));
    }
    assert!(h.stats().shared.dir_back_invalidations.get() > 0);
    // The MLC holds at most directory-capacity lines now.
    assert!(h.mlc(C0).resident_lines() <= 64);
    h.check_invariants();
}

#[test]
fn back_invalidated_dirty_lines_are_preserved_in_llc() {
    let mut c = cfg();
    c.directory_entries = Some(8);
    let mut h = Hierarchy::new(c);
    for i in 0..32u64 {
        h.cpu_write(C0, LineAddr::new(i));
    }
    // The displaced dirty lines must still be readable (from LLC or DRAM),
    // i.e. no data was silently dropped: a re-read never panics and the
    // invariants hold.
    for i in 0..32u64 {
        h.cpu_read(C0, LineAddr::new(i));
    }
    h.check_invariants();
}

#[test]
fn hierarchy_accepts_every_replacement_policy() {
    for kind in [
        ReplacementKind::Lru,
        ReplacementKind::TreePlru,
        ReplacementKind::Srrip,
        ReplacementKind::Random,
    ] {
        let mut c = cfg();
        c.private_replacement = kind;
        // The 12-way LLC cannot use tree-PLRU (not a power of two).
        c.llc_replacement = if kind == ReplacementKind::TreePlru {
            ReplacementKind::Lru
        } else {
            kind
        };
        let mut h = Hierarchy::new(c);
        for i in 0..10_000u64 {
            h.cpu_read(C0, LineAddr::new(i % 3000));
            if i % 3 == 0 {
                h.pcie_write(
                    LineAddr::new(i % 500),
                    idio_cache::hierarchy::DmaPlacement::Llc,
                );
            }
        }
        h.check_invariants();
        assert_eq!(h.mlc(C0).replacement_kind(), kind);
    }
}

#[test]
fn llc_replacement_changes_victim_pattern() {
    // Identical access streams under LRU vs Random LLC replacement should
    // (with overwhelming probability) produce different writeback counts.
    let run = |kind| {
        let mut c = cfg();
        c.llc_replacement = kind;
        let mut h = Hierarchy::new(c);
        for i in 0..200_000u64 {
            h.cpu_write(C0, LineAddr::new(i % 70_000));
        }
        h.stats().shared.llc_wb.get()
    };
    let lru = run(ReplacementKind::Lru);
    let random = run(ReplacementKind::Random);
    assert_ne!(lru, random);
}
