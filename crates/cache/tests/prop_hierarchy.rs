//! Property tests: the hierarchy's structural invariants survive any
//! sequence of operations, and the set-associative array never exceeds its
//! capacity.

use idio_cache::addr::{CoreId, LineAddr};
use idio_cache::config::{CacheGeometry, HierarchyConfig};
use idio_cache::hierarchy::{DmaPlacement, Hierarchy, InvalidateScope};
use idio_cache::set::{SetAssocCache, WayMask};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    CpuRead(u16, u64),
    CpuWrite(u16, u64),
    PcieWriteLlc(u64),
    PcieWriteDram(u64),
    PcieRead(u64),
    Invalidate(u16, u64),
    Prefetch(u16, u64),
    Flush(u64),
}

fn op_strategy(cores: u16, lines: u64) -> impl Strategy<Value = Op> {
    let line = 0..lines;
    let core = 0..cores;
    prop_oneof![
        (core.clone(), line.clone()).prop_map(|(c, l)| Op::CpuRead(c, l)),
        (core.clone(), line.clone()).prop_map(|(c, l)| Op::CpuWrite(c, l)),
        line.clone().prop_map(Op::PcieWriteLlc),
        line.clone().prop_map(Op::PcieWriteDram),
        line.clone().prop_map(Op::PcieRead),
        (core.clone(), line.clone()).prop_map(|(c, l)| Op::Invalidate(c, l)),
        (core, line.clone()).prop_map(|(c, l)| Op::Prefetch(c, l)),
        line.prop_map(Op::Flush),
    ]
}

fn tiny_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        num_cores: 2,
        l1d: CacheGeometry::new(2 * 2 * 64, 2, 2),
        mlc: CacheGeometry::new(4 * 2 * 64, 2, 12),
        mlc_overrides: vec![None; 2],
        llc: CacheGeometry::new(4 * 4 * 64, 4, 24),
        ddio_ways: 2,
        core_alloc_ways: None,
        private_replacement: idio_cache::replacement::ReplacementKind::Lru,
        llc_replacement: idio_cache::replacement::ReplacementKind::Lru,
        directory_entries: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn invariants_hold_under_arbitrary_op_sequences(
        ops in proptest::collection::vec(op_strategy(2, 64), 1..200)
    ) {
        let mut h = tiny_hierarchy();
        for op in ops {
            match op {
                Op::CpuRead(c, l) => { h.cpu_read(CoreId::new(c), LineAddr::new(l)); }
                Op::CpuWrite(c, l) => { h.cpu_write(CoreId::new(c), LineAddr::new(l)); }
                Op::PcieWriteLlc(l) => { h.pcie_write(LineAddr::new(l), DmaPlacement::Llc); }
                Op::PcieWriteDram(l) => { h.pcie_write(LineAddr::new(l), DmaPlacement::Dram); }
                Op::PcieRead(l) => { h.pcie_read(LineAddr::new(l)); }
                Op::Invalidate(c, l) => {
                    h.self_invalidate(CoreId::new(c), LineAddr::new(l), InvalidateScope::IncludeLlc);
                }
                Op::Prefetch(c, l) => { h.prefetch_fill(CoreId::new(c), LineAddr::new(l)); }
                Op::Flush(l) => { h.flush_line(LineAddr::new(l)); }
            }
        }
        h.check_invariants();
    }

    #[test]
    fn reads_are_always_eventually_private(
        warm in proptest::collection::vec(op_strategy(2, 64), 0..100),
        core in 0..2u16,
        line in 0..64u64,
    ) {
        let mut h = tiny_hierarchy();
        for op in warm {
            match op {
                Op::CpuRead(c, l) => { h.cpu_read(CoreId::new(c), LineAddr::new(l)); }
                Op::CpuWrite(c, l) => { h.cpu_write(CoreId::new(c), LineAddr::new(l)); }
                Op::PcieWriteLlc(l) => { h.pcie_write(LineAddr::new(l), DmaPlacement::Llc); }
                Op::PcieWriteDram(l) => { h.pcie_write(LineAddr::new(l), DmaPlacement::Dram); }
                Op::PcieRead(l) => { h.pcie_read(LineAddr::new(l)); }
                Op::Invalidate(c, l) => {
                    h.self_invalidate(CoreId::new(c), LineAddr::new(l), InvalidateScope::PrivateOnly);
                }
                Op::Prefetch(c, l) => { h.prefetch_fill(CoreId::new(c), LineAddr::new(l)); }
                Op::Flush(l) => { h.flush_line(LineAddr::new(l)); }
            }
        }
        // Whatever the state, after a CPU read the line is in that core's
        // L1 and MLC and in no other core's private caches.
        let c = CoreId::new(core);
        h.cpu_read(c, LineAddr::new(line));
        prop_assert!(h.l1d(c).contains(LineAddr::new(line)));
        prop_assert!(h.mlc(c).contains(LineAddr::new(line)));
        let other = CoreId::new(1 - core);
        prop_assert!(!h.mlc(other).contains(LineAddr::new(line)));
        prop_assert!(!h.llc().contains(LineAddr::new(line)));
        h.check_invariants();
    }

    #[test]
    fn pcie_write_always_clears_private_copies(
        warm in proptest::collection::vec(op_strategy(2, 32), 0..60),
        line in 0..32u64,
    ) {
        let mut h = tiny_hierarchy();
        for op in warm {
            if let Op::CpuRead(c, l) = op {
                h.cpu_read(CoreId::new(c), LineAddr::new(l));
            }
        }
        h.pcie_write(LineAddr::new(line), DmaPlacement::Llc);
        for c in 0..2 {
            prop_assert!(!h.mlc(CoreId::new(c)).contains(LineAddr::new(line)));
            prop_assert!(!h.l1d(CoreId::new(c)).contains(LineAddr::new(line)));
        }
        prop_assert!(h.llc().probe(LineAddr::new(line)).unwrap().dirty);
    }

    #[test]
    fn set_assoc_never_exceeds_capacity(
        inserts in proptest::collection::vec((0..256u64, any::<bool>()), 1..500),
        ways in 1..8usize,
        sets in 1..8usize,
    ) {
        let mut c = SetAssocCache::new("prop", sets, ways);
        let mask = WayMask::all(ways);
        for (line, dirty) in inserts {
            c.insert(LineAddr::new(line), dirty, mask);
            prop_assert!(c.resident_lines() <= c.capacity_lines());
        }
        // Every resident line is findable and in a permitted way.
        let resident: Vec<_> = c.iter().map(|e| e.line).collect();
        for line in resident {
            prop_assert!(c.way_of(line).unwrap() < ways);
        }
    }

    #[test]
    fn set_assoc_insert_then_remove_roundtrips(
        line in 0..1024u64,
        dirty in any::<bool>(),
    ) {
        let mut c = SetAssocCache::new("prop", 16, 4);
        c.insert(LineAddr::new(line), dirty, WayMask::all(4));
        let e = c.remove(LineAddr::new(line)).unwrap();
        prop_assert_eq!(e.dirty, dirty);
        prop_assert!(!c.contains(LineAddr::new(line)));
        prop_assert_eq!(c.resident_lines(), 0);
    }
}
