//! Randomized property tests: the hierarchy's structural invariants
//! survive any sequence of operations, and the set-associative array never
//! exceeds its capacity. Driven by the in-repo deterministic harness
//! (`idio_engine::check`) — the build environment has no crates.io access.

use idio_cache::addr::{CoreId, LineAddr};
use idio_cache::config::{CacheGeometry, HierarchyConfig};
use idio_cache::hierarchy::{DmaPlacement, Hierarchy, InvalidateScope};
use idio_cache::set::{SetAssocCache, WayMask};
use idio_engine::check::{Cases, Gen};

#[derive(Debug, Clone, Copy)]
enum Op {
    CpuRead(u16, u64),
    CpuWrite(u16, u64),
    PcieWriteLlc(u64),
    PcieWriteDram(u64),
    PcieRead(u64),
    Invalidate(u16, u64),
    Prefetch(u16, u64),
    Flush(u64),
}

fn gen_op(g: &mut Gen, cores: u16, lines: u64) -> Op {
    let c = g.u16(0..cores);
    let l = g.u64(0..lines);
    match g.u64(0..8) {
        0 => Op::CpuRead(c, l),
        1 => Op::CpuWrite(c, l),
        2 => Op::PcieWriteLlc(l),
        3 => Op::PcieWriteDram(l),
        4 => Op::PcieRead(l),
        5 => Op::Invalidate(c, l),
        6 => Op::Prefetch(c, l),
        _ => Op::Flush(l),
    }
}

fn apply(h: &mut Hierarchy, op: Op, scope: InvalidateScope) {
    match op {
        Op::CpuRead(c, l) => {
            h.cpu_read(CoreId::new(c), LineAddr::new(l));
        }
        Op::CpuWrite(c, l) => {
            h.cpu_write(CoreId::new(c), LineAddr::new(l));
        }
        Op::PcieWriteLlc(l) => {
            h.pcie_write(LineAddr::new(l), DmaPlacement::Llc);
        }
        Op::PcieWriteDram(l) => {
            h.pcie_write(LineAddr::new(l), DmaPlacement::Dram);
        }
        Op::PcieRead(l) => {
            h.pcie_read(LineAddr::new(l));
        }
        Op::Invalidate(c, l) => {
            h.self_invalidate(CoreId::new(c), LineAddr::new(l), scope);
        }
        Op::Prefetch(c, l) => {
            h.prefetch_fill(CoreId::new(c), LineAddr::new(l));
        }
        Op::Flush(l) => {
            h.flush_line(LineAddr::new(l));
        }
    }
}

fn tiny_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        num_cores: 2,
        l1d: CacheGeometry::new(2 * 2 * 64, 2, 2),
        mlc: CacheGeometry::new(4 * 2 * 64, 2, 12),
        mlc_overrides: vec![None; 2],
        llc: CacheGeometry::new(4 * 4 * 64, 4, 24),
        ddio_ways: 2,
        core_alloc_ways: None,
        private_replacement: idio_cache::replacement::ReplacementKind::Lru,
        llc_replacement: idio_cache::replacement::ReplacementKind::Lru,
        directory_entries: None,
    })
}

#[test]
fn invariants_hold_under_arbitrary_op_sequences() {
    Cases::new(256).run(|g| {
        let ops = g.vec(1..200, |g| gen_op(g, 2, 64));
        let mut h = tiny_hierarchy();
        for op in ops {
            apply(&mut h, op, InvalidateScope::IncludeLlc);
        }
        h.check_invariants();
    });
}

#[test]
fn reads_are_always_eventually_private() {
    Cases::new(256).run(|g| {
        let warm = g.vec(0..100, |g| gen_op(g, 2, 64));
        let core = g.u16(0..2);
        let line = g.u64(0..64);
        let mut h = tiny_hierarchy();
        for op in warm {
            apply(&mut h, op, InvalidateScope::PrivateOnly);
        }
        // Whatever the state, after a CPU read the line is in that core's
        // L1 and MLC and in no other core's private caches.
        let c = CoreId::new(core);
        h.cpu_read(c, LineAddr::new(line));
        assert!(h.l1d(c).contains(LineAddr::new(line)));
        assert!(h.mlc(c).contains(LineAddr::new(line)));
        let other = CoreId::new(1 - core);
        assert!(!h.mlc(other).contains(LineAddr::new(line)));
        assert!(!h.llc().contains(LineAddr::new(line)));
        h.check_invariants();
    });
}

#[test]
fn pcie_write_always_clears_private_copies() {
    Cases::new(256).run(|g| {
        let warm = g.vec(0..60, |g| gen_op(g, 2, 32));
        let line = g.u64(0..32);
        let mut h = tiny_hierarchy();
        for op in warm {
            if let Op::CpuRead(c, l) = op {
                h.cpu_read(CoreId::new(c), LineAddr::new(l));
            }
        }
        h.pcie_write(LineAddr::new(line), DmaPlacement::Llc);
        for c in 0..2 {
            assert!(!h.mlc(CoreId::new(c)).contains(LineAddr::new(line)));
            assert!(!h.l1d(CoreId::new(c)).contains(LineAddr::new(line)));
        }
        assert!(h.llc().probe(LineAddr::new(line)).unwrap().dirty);
    });
}

#[test]
fn set_assoc_never_exceeds_capacity() {
    Cases::new(256).run(|g| {
        let inserts = g.vec(1..500, |g| (g.u64(0..256), g.bool()));
        let ways = g.usize(1..8);
        let sets = g.usize(1..8);
        let mut c = SetAssocCache::new("prop", sets, ways);
        let mask = WayMask::all(ways);
        for (line, dirty) in inserts {
            c.insert(LineAddr::new(line), dirty, mask);
            assert!(c.resident_lines() <= c.capacity_lines());
        }
        // Every resident line is findable and in a permitted way.
        let resident: Vec<_> = c.iter().map(|e| e.line).collect();
        for line in resident {
            assert!(c.way_of(line).unwrap() < ways);
        }
    });
}

#[test]
fn set_assoc_insert_then_remove_roundtrips() {
    Cases::new(256).run(|g| {
        let line = g.u64(0..1024);
        let dirty = g.bool();
        let mut c = SetAssocCache::new("prop", 16, 4);
        c.insert(LineAddr::new(line), dirty, WayMask::all(4));
        let e = c.remove(LineAddr::new(line)).unwrap();
        assert_eq!(e.dirty, dirty);
        assert!(!c.contains(LineAddr::new(line)));
        assert_eq!(c.resident_lines(), 0);
    });
}
