//! Equivalence check for the SoA hot/cold cache layout: drive
//! [`SetAssocCache`] and a deliberately naive reference model through the
//! same randomized operation stream and demand identical observable
//! behaviour — victims, placement ways, occupancy, dirty bits, and the
//! incrementally-maintained tracked-range counter.
//!
//! The production array keeps tags and valid/dirty bitmasks in flat hot
//! planes, replacement stamps in a flattened `Box<[u64]>`, and tracked
//! membership in a cold per-set bitmask computed once at fill time. The
//! reference model stores one struct per resident line and rescans the
//! tracked ranges on every query — slow, but obviously correct. Any
//! divergence in the layout plumbing (a stale `tracked_bits` bit, a wrong
//! flattened index, a tie-break change in the allocation-free victim scan)
//! shows up as a mismatch here.
//!
//! Driven by the in-repo deterministic harness (`idio_engine::check`).

use idio_cache::addr::LineAddr;
use idio_cache::set::{SetAssocCache, WayMask};
use idio_engine::check::{Cases, Gen};

/// One resident line in the reference model.
#[derive(Debug, Clone, Copy)]
struct RefLine {
    line: u64,
    dirty: bool,
    /// Monotonic last-use stamp; mirrors the production LRU counter,
    /// which advances once per insert or touch event.
    stamp: u64,
}

/// Naive per-line reference: `Vec<Option<RefLine>>` per set, tracked
/// ranges rescanned on demand.
struct RefCache {
    sets: Vec<Vec<Option<RefLine>>>,
    ways: usize,
    next_stamp: u64,
    tracked: Vec<(u64, u64)>,
}

impl RefCache {
    fn new(num_sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![vec![None; ways]; num_sets],
            ways,
            next_stamp: 0,
            tracked: Vec::new(),
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    fn find_way(&self, idx: usize, line: u64) -> Option<usize> {
        self.sets[idx]
            .iter()
            .position(|s| s.is_some_and(|e| e.line == line))
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Mirrors `SetAssocCache::insert` for the LRU policy: refresh in
    /// place when resident, else lowest free permitted way, else evict
    /// the permitted way with the smallest stamp (first minimum wins).
    fn insert(&mut self, line: u64, dirty: bool, mask: u64) -> (Option<(u64, bool, usize)>, usize) {
        let idx = self.set_index(line);
        if let Some(w) = self.find_way(idx, line) {
            let stamp = self.bump();
            let e = self.sets[idx][w].as_mut().expect("resident");
            e.dirty |= dirty;
            e.stamp = stamp;
            return (None, w);
        }
        let permitted = |w: usize| mask >> w & 1 == 1;
        if let Some(w) = (0..self.ways).find(|&w| permitted(w) && self.sets[idx][w].is_none()) {
            let stamp = self.bump();
            self.sets[idx][w] = Some(RefLine { line, dirty, stamp });
            return (None, w);
        }
        let w = (0..self.ways)
            .filter(|&w| permitted(w))
            .min_by_key(|&w| self.sets[idx][w].expect("full").stamp)
            .expect("mask selects a way");
        let old = self.sets[idx][w].expect("full");
        let stamp = self.bump();
        self.sets[idx][w] = Some(RefLine { line, dirty, stamp });
        (Some((old.line, old.dirty, w)), w)
    }

    fn touch(&mut self, line: u64) -> Option<bool> {
        let idx = self.set_index(line);
        let w = self.find_way(idx, line)?;
        let stamp = self.bump();
        let e = self.sets[idx][w].as_mut().expect("resident");
        e.stamp = stamp;
        Some(e.dirty)
    }

    fn probe(&self, line: u64) -> Option<bool> {
        let idx = self.set_index(line);
        self.find_way(idx, line)
            .map(|w| self.sets[idx][w].expect("resident").dirty)
    }

    fn remove(&mut self, line: u64) -> Option<bool> {
        let idx = self.set_index(line);
        let w = self.find_way(idx, line)?;
        self.sets[idx][w].take().map(|e| e.dirty)
    }

    fn mark_dirty(&mut self, line: u64) -> bool {
        let idx = self.set_index(line);
        match self.find_way(idx, line) {
            Some(w) => {
                self.sets[idx][w].as_mut().expect("resident").dirty = true;
                true
            }
            None => false,
        }
    }

    fn drain_dirty(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if let Some(e) = slot.take() {
                    if e.dirty {
                        out.push(e.line);
                    }
                }
            }
        }
        out
    }

    fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }

    fn tracked_resident(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter().flatten())
            .filter(|e| {
                self.tracked
                    .iter()
                    .any(|&(lo, hi)| e.line >= lo && e.line < hi)
            })
            .count()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, bool),
    /// Insert restricted to a way sub-range (the DDIO/CAT partitioning
    /// path — exercises the allocation-free masked victim scan).
    InsertMasked(u64, bool, usize, usize),
    Touch(u64),
    Probe(u64),
    Remove(u64),
    MarkDirty(u64),
    Retrack(u64, u64),
    DrainDirty,
}

fn gen_op(g: &mut Gen, lines: u64, ways: usize) -> Op {
    let l = g.u64(0..lines);
    match g.u64(0..16) {
        0..=4 => Op::Insert(l, g.bool()),
        5..=6 => {
            let lo = g.usize(0..ways);
            let hi = g.usize(lo + 1..ways + 1);
            Op::InsertMasked(l, g.bool(), lo, hi)
        }
        7..=8 => Op::Touch(l),
        9..=10 => Op::Probe(l),
        11..=12 => Op::Remove(l),
        13 => Op::MarkDirty(l),
        14 => {
            let lo = g.u64(0..lines);
            let hi = g.u64(lo..lines + 1);
            Op::Retrack(lo, hi)
        }
        _ => Op::DrainDirty,
    }
}

#[test]
fn soa_layout_matches_reference_model() {
    Cases::new(512).run(|g| {
        let sets = g.usize(1..6);
        let ways = g.usize(1..7);
        let lines = (sets * ways * 3) as u64;
        let ops = g.vec(1..250, |g| gen_op(g, lines, ways));

        let mut real = SetAssocCache::new("prop-soa", sets, ways);
        let mut model = RefCache::new(sets, ways);
        // Start with a tracked window so the fill-time membership bits are
        // live from the first op, not only after a Retrack.
        real.track_ranges(&[(0, lines / 2)]);
        model.tracked = vec![(0, lines / 2)];

        for op in ops {
            match op {
                Op::Insert(l, d) => {
                    let (victim, way) = real.insert(LineAddr::new(l), d, WayMask::all(ways));
                    let (mv, mw) = model.insert(l, d, WayMask::all(ways).bits());
                    assert_eq!(way, mw, "placement way for line {l}");
                    assert_eq!(
                        victim.map(|v| (v.line.get(), v.dirty, v.way)),
                        mv,
                        "victim for line {l}"
                    );
                }
                Op::InsertMasked(l, d, lo, hi) => {
                    let mask = WayMask::range(lo, hi);
                    let (victim, way) = real.insert(LineAddr::new(l), d, mask);
                    let (mv, mw) = model.insert(l, d, mask.bits());
                    assert_eq!(way, mw, "masked placement way for line {l}");
                    assert_eq!(
                        victim.map(|v| (v.line.get(), v.dirty, v.way)),
                        mv,
                        "masked victim for line {l}"
                    );
                }
                Op::Touch(l) => {
                    assert_eq!(
                        real.touch(LineAddr::new(l)).map(|e| e.dirty),
                        model.touch(l),
                        "touch {l}"
                    );
                }
                Op::Probe(l) => {
                    assert_eq!(
                        real.probe(LineAddr::new(l)).map(|e| e.dirty),
                        model.probe(l),
                        "probe {l}"
                    );
                    assert_eq!(real.contains(LineAddr::new(l)), model.probe(l).is_some());
                }
                Op::Remove(l) => {
                    assert_eq!(
                        real.remove(LineAddr::new(l)).map(|e| e.dirty),
                        model.remove(l),
                        "remove {l}"
                    );
                }
                Op::MarkDirty(l) => {
                    assert_eq!(real.mark_dirty(LineAddr::new(l)), model.mark_dirty(l));
                }
                Op::Retrack(lo, hi) => {
                    real.track_ranges(&[(lo, hi)]);
                    model.tracked = vec![(lo, hi)];
                }
                Op::DrainDirty => {
                    assert_eq!(
                        real.drain_dirty(),
                        model
                            .drain_dirty()
                            .into_iter()
                            .map(LineAddr::new)
                            .collect::<Vec<_>>(),
                        "drain order"
                    );
                }
            }
            // The incrementally-maintained counters must agree with the
            // rescan-everything model after every single operation.
            assert_eq!(real.resident_lines(), model.resident(), "occupancy");
            assert_eq!(
                real.tracked_resident(),
                model.tracked_resident(),
                "tracked occupancy"
            );
        }
    });
}
