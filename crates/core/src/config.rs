//! Full-system configuration (Table I defaults plus workload wiring).

use idio_cache::addr::CoreId;
use idio_cache::config::{CacheGeometry, HierarchyConfig};
use idio_cache::hierarchy::InvalidateScope;
use idio_engine::telemetry::TraceFilter;
use idio_engine::time::{Duration, SimTime};
use idio_mem::DramConfig;
use idio_net::gen::{Arrival, TrafficPattern};
use idio_net::packet::Dscp;
use idio_nic::classifier::ClassifierConfig;
use idio_nic::dma::DmaConfig;
use idio_pool::PoolSpec;
use idio_stack::nf::NfKind;
use idio_stack::pmd::PmdConfig;
use idio_stack::timing::TimingConfig;

use idio_cache::set::WayMask;

use crate::controller::IdioConfig;
use crate::policy::{CatMode, PolicySpec, PolicyTable, SteeringPolicy};
use crate::prefetcher::PrefetcherConfig;

/// How flows are steered to queues (Sec. II-C's two Flow Director
/// flavours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowSteering {
    /// Externally programmed perfect-match filters: every workload's flow
    /// is pinned to its queue up front (applications pinned to cores).
    #[default]
    Perfect,
    /// Application Targeting Routing: no filters up front; initial packets
    /// spread by RSS, and the NIC learns each flow's queue from the TX
    /// traffic it observes.
    Atr,
}

/// One network-function instance pinned to one core with its own NIC
/// queue and traffic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// The core running the NF (also its queue's ADQ pin target).
    pub core: CoreId,
    /// Which Table II workload.
    pub kind: NfKind,
    /// Arrival pattern of this instance's flow.
    pub traffic: TrafficPattern,
    /// Frame size in bytes.
    pub packet_len: u16,
    /// DSCP marking applied by the (simulated) sender.
    pub dscp: Dscp,
    /// The queue's mbuf pool. `None` is the legacy implicit status quo
    /// (per-slot buffers, no pool telemetry); `Some(PoolSpec::Dram)` is
    /// the same working set *with* LLC-budget spill accounting;
    /// `Some(PoolSpec::Recycle { .. })` is the RDCA cache-resident
    /// recycling pool. Resolved against the DDIO partition and ring
    /// geometry when the system is built.
    pub pool: Option<PoolSpec>,
}

/// One tenant of a multi-tenant run: a group of workload instances
/// (queues/cores) fed by a *single* aggregate traffic source whose flows
/// are spread across the group.
///
/// In tenant mode the per-workload [`WorkloadSpec::traffic`] is ignored:
/// arrivals come from one [`idio_net::gen::MultiFlowGen`] per tenant (or a
/// replayed trace), dealt round-robin over `flows` distinct five-tuples.
/// Under [`FlowSteering::Perfect`] flow `i` is pinned to the tenant's
/// `workloads[i % len]` queue via the flow director; under
/// [`FlowSteering::Atr`] flows spread by RSS until the NIC learns them.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Stable tenant name (report key; must be unique within a config).
    pub name: String,
    /// Indices into [`SystemConfig::workloads`] owned by this tenant.
    /// A workload belongs to at most one tenant.
    pub workloads: Vec<usize>,
    /// Number of concurrently-active flows (five-tuples) the tenant's load
    /// is dealt over — up to [`idio_net::gen::MAX_FLOW_SET_FLOWS`] (16M),
    /// derived on demand by a streaming [`idio_net::gen::FlowSet`] rather
    /// than materialised. Ignored when `replay` is set (the trace brings
    /// its own flows).
    pub flows: u32,
    /// First UDP destination port. Small flow counts use the legacy
    /// derivation (flow `i` targets `base_port + i`; tenants must then use
    /// disjoint port ranges); counts past the port range (or churning
    /// tenants) spill the flow index into the source address, keyed by the
    /// tenant's index, and cannot alias other tenants.
    pub base_port: u16,
    /// Flow lifetime: each active-flow slot retires its flow and starts a
    /// fresh five-tuple after this long (staggered across slots), so the
    /// working set turns over like a real tenant's connection table.
    /// `None` = the flow population is fixed for the whole run.
    pub churn: Option<Duration>,
    /// Packets dealt to one flow per visit before rotating to the next
    /// (a packet train). 1 = plain round-robin.
    pub train: u32,
    /// Aggregate arrival pattern of the whole tenant (independent of
    /// `flows`: the flow count only changes how the load is dealt out).
    pub traffic: TrafficPattern,
    /// Frame size in bytes (all flows of a tenant share it).
    pub packet_len: u16,
    /// DSCP marking applied by the tenant's (simulated) senders.
    pub dscp: Dscp,
    /// Recorded arrivals replacing the analytic `traffic` pattern (see
    /// `idio_net::trace`). Flows found in the trace are pinned first-seen
    /// round-robin across the tenant's queues.
    pub replay: Option<Vec<Arrival>>,
    /// Steering-policy override for every queue this tenant owns. `None`
    /// inherits [`SystemConfig::policy`]; a per-queue entry in
    /// [`SystemConfig::queue_policies`] overrides this in turn.
    pub policy: Option<PolicySpec>,
}

impl TenantSpec {
    /// The cores this tenant's workloads run on, resolved against `cfg`.
    pub fn cores<'a>(&'a self, cfg: &'a SystemConfig) -> impl Iterator<Item = CoreId> + 'a {
        self.workloads.iter().map(|&wi| cfg.workloads[wi].core)
    }
}

/// The LLCAntagonist co-runner (Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntagonistSpec {
    /// The core running the antagonist.
    pub core: CoreId,
    /// Its buffer size in bytes.
    pub buffer_bytes: u64,
    /// Compute cycles between dependent accesses.
    pub think_cycles: u64,
}

impl AntagonistSpec {
    /// The paper's setting: pinned core with an LLC-thrashing buffer.
    pub fn paper_default(core: CoreId) -> Self {
        AntagonistSpec {
            core,
            buffer_bytes: 3 << 20,
            think_cycles: 2,
        }
    }
}

/// Everything needed to build and run a [`crate::system::System`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Cache hierarchy (Table I; antagonist MLC override applied by the
    /// builder).
    pub hierarchy: HierarchyConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Core timing model.
    pub timing: TimingConfig,
    /// Polling-mode driver parameters.
    pub pmd: PmdConfig,
    /// NIC ring depth per queue.
    pub ring_size: u32,
    /// Flow Director perfect-match (EP) filter capacity. Tenant flows are
    /// pinned up to this bound (sampled evenly across each tenant's flow
    /// index space); the rest steer via ATR learning and RSS. Sec. II-C
    /// puts the real table at ~8K entries.
    pub perfect_filter_entries: usize,
    /// ATR filter-table entry lifetime: learned entries past this age are
    /// dropped on next touch and the flow falls back to RSS until
    /// re-learned. `None` = entries never age (legacy behavior).
    pub atr_lifetime: Option<Duration>,
    /// Idle window after which a `Recycle` pool self-invalidates its
    /// buffers and releases its LLC footprint (checked at control ticks).
    /// `None` = pools hold their footprint forever (legacy behavior).
    pub pool_idle_flush: Option<Duration>,
    /// NIC-side classifier settings.
    pub classifier: ClassifierConfig,
    /// PCIe/DMA settings.
    pub dma: DmaConfig,
    /// The system-default placement policy — the bottom layer of the
    /// policy table. [`TenantSpec::policy`] and
    /// [`SystemConfig::queue_policies`] override it per tenant / per
    /// queue; [`SystemConfig::policy_table`] resolves the layering.
    pub policy: SteeringPolicy,
    /// Per-queue policy overrides (queue index = workload index), the top
    /// layer of the policy table: an entry here wins over both the owning
    /// tenant's [`TenantSpec::policy`] and the system default.
    pub queue_policies: std::collections::BTreeMap<usize, PolicySpec>,
    /// IDIO controller settings.
    pub idio: IdioConfig,
    /// MLC prefetcher settings.
    pub prefetcher: PrefetcherConfig,
    /// Scope of the self-invalidate instruction.
    pub invalidate_scope: InvalidateScope,
    /// NF instances (at most one per core).
    pub workloads: Vec<WorkloadSpec>,
    /// Optional antagonist co-runner.
    pub antagonist: Option<AntagonistSpec>,
    /// Trace replays: workload index → recorded arrivals that replace the
    /// workload's analytic traffic pattern (see `idio_net::trace`).
    /// Ignored in tenant mode (use [`TenantSpec::replay`] there).
    pub trace_replays: std::collections::BTreeMap<usize, Vec<Arrival>>,
    /// Tenant groups. Empty = legacy mode (one flow per workload, each
    /// workload driven by its own `traffic`); non-empty = tenant mode
    /// (arrivals come from per-tenant multi-flow sources, spread across
    /// each tenant's queues via the flow director / RSS).
    pub tenants: Vec<TenantSpec>,
    /// Flow Director operating mode.
    pub steering: FlowSteering,
    /// Traffic generation horizon.
    pub duration: SimTime,
    /// Extra time allowed for queued packets to drain after traffic stops.
    pub drain_grace: Duration,
    /// Statistics sampling interval (10 µs in the paper's figures).
    pub sample_interval: Duration,
    /// Which components the run's tracer records (off by default; see
    /// [`idio_engine::telemetry::Tracer`]). Trace output is deterministic:
    /// a pure function of the configuration and seed.
    pub trace: TraceFilter,
    /// Measure host wall-clock per event type in the engine loop.
    /// Dispatch *counts* are always collected (they are deterministic);
    /// the wall-clock measurement is host noise and is opt-in so it never
    /// taxes—or leaks into—deterministic runs.
    pub profile_events: bool,
    /// Record one NDJSON line per control tick (steering-mix delta, per-core
    /// prefetch-FSM states, CAT timeline) into
    /// [`RunReport::tick_metrics`](crate::report::RunReport::tick_metrics).
    /// Off by default: the timeline is deterministic but verbose (one line
    /// per microsecond of simulated time).
    pub tick_metrics: bool,
    /// PRNG seed (antagonist access pattern).
    pub seed: u64,
}

impl SystemConfig {
    /// The Fig. 9 baseline scenario: `n` TouchDrop instances on `n` cores
    /// (plus room for an antagonist if added later), Table I hierarchy with
    /// the 3 MiB LLC, 1024-deep rings, 1514-byte packets.
    pub fn touchdrop_scenario(n: usize, traffic: TrafficPattern) -> Self {
        let workloads = (0..n as u16)
            .map(|i| WorkloadSpec {
                core: CoreId::new(i),
                kind: NfKind::TouchDrop,
                traffic,
                packet_len: 1514,
                dscp: Dscp::BEST_EFFORT,
                pool: None,
            })
            .collect();
        SystemConfig {
            hierarchy: HierarchyConfig::paper_default(n.max(1)),
            dram: DramConfig::default(),
            timing: TimingConfig::default(),
            pmd: PmdConfig::default(),
            ring_size: 1024,
            perfect_filter_entries: idio_nic::DEFAULT_FILTER_TABLE_ENTRIES,
            atr_lifetime: None,
            pool_idle_flush: None,
            classifier: ClassifierConfig::paper_default(),
            dma: DmaConfig::default(),
            policy: SteeringPolicy::Ddio,
            queue_policies: std::collections::BTreeMap::new(),
            idio: IdioConfig::paper_default(),
            prefetcher: PrefetcherConfig::default(),
            invalidate_scope: InvalidateScope::IncludeLlc,
            workloads,
            antagonist: None,
            trace_replays: std::collections::BTreeMap::new(),
            tenants: Vec::new(),
            steering: FlowSteering::default(),
            duration: SimTime::from_ms(10),
            drain_grace: Duration::from_ms(5),
            sample_interval: Duration::from_us(10),
            trace: TraceFilter::off(),
            profile_events: false,
            tick_metrics: false,
            seed: 0xD10,
        }
    }

    /// Returns the config with a different system-default policy.
    pub fn with_policy(mut self, policy: SteeringPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the config with a per-queue policy override (queue index =
    /// workload index).
    pub fn with_queue_policy(mut self, queue: usize, policy: impl Into<PolicySpec>) -> Self {
        self.queue_policies.insert(queue, policy.into());
        self
    }

    /// Resolves the layered policy configuration (system default →
    /// per-tenant override → per-queue override) into the dense
    /// [`PolicyTable`] the hot path indexes. A preset-only configuration
    /// with no overrides resolves to a single-domain table whose behavior
    /// is exactly the old global enum's.
    pub fn policy_table(&self) -> PolicyTable {
        let default = PolicySpec::Preset(self.policy);
        let mut per_queue = vec![default; self.workloads.len()];
        for t in &self.tenants {
            if let Some(p) = t.policy {
                for &wi in &t.workloads {
                    if let Some(slot) = per_queue.get_mut(wi) {
                        *slot = p;
                    }
                }
            }
        }
        for (&q, &p) in &self.queue_policies {
            if let Some(slot) = per_queue.get_mut(q) {
                *slot = p;
            }
        }
        PolicyTable::new(default, &per_queue)
    }

    /// Adds the antagonist on the next free core, shrinking that core's MLC
    /// to 256 KiB per Sec. VI.
    pub fn with_antagonist(mut self) -> Self {
        let core = CoreId::new(self.num_cores() as u16);
        self.antagonist = Some(AntagonistSpec::paper_default(core));
        self
    }

    /// Number of cores the configuration requires.
    pub fn num_cores(&self) -> usize {
        let wl_max = self
            .workloads
            .iter()
            .map(|w| w.core.index() + 1)
            .max()
            .unwrap_or(0);
        let ant = self.antagonist.map(|a| a.core.index() + 1).unwrap_or(0);
        wl_max.max(ant).max(1)
    }

    /// Finalises the hierarchy config: core count and antagonist MLC
    /// override.
    pub(crate) fn effective_hierarchy(&self) -> HierarchyConfig {
        let mut h = self.hierarchy.clone();
        let n = self.num_cores();
        if h.num_cores < n {
            h.num_cores = n;
        }
        h.mlc_overrides.resize(h.num_cores, None);
        if let Some(a) = self.antagonist {
            // Sec. VI: the antagonist core's MLC is set to 256 KiB so it
            // stays sensitive to LLC contention.
            h.mlc_overrides[a.core.index()] = Some(CacheGeometry::new(
                256 << 10,
                h.mlc.ways,
                h.mlc.latency_cycles,
            ));
        }
        h
    }

    /// Validates cross-cutting constraints.
    ///
    /// # Errors
    ///
    /// Returns a message when cores are double-booked, a workload core
    /// collides with the antagonist, or a nested config is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty() && self.antagonist.is_none() {
            return Err("no workload configured".into());
        }
        let mut seen = std::collections::HashSet::new();
        for w in &self.workloads {
            if !seen.insert(w.core) {
                return Err(format!("core {} has two workloads", w.core));
            }
        }
        if let Some(a) = self.antagonist {
            if seen.contains(&a.core) {
                return Err(format!("antagonist collides with an NF on {}", a.core));
            }
        }
        if self.ring_size == 0 {
            return Err("ring size must be positive".into());
        }
        for (i, w) in self.workloads.iter().enumerate() {
            if let Some(PoolSpec::Recycle { slots: Some(0) }) = w.pool {
                return Err(format!("workload {i}: recycle pool with zero slots"));
            }
        }
        for (&idx, arrivals) in &self.trace_replays {
            if idx >= self.workloads.len() {
                return Err(format!("trace replay for nonexistent workload {idx}"));
            }
            if arrivals.windows(2).any(|w| w[0].at > w[1].at) {
                return Err(format!("trace replay {idx} is not time-ordered"));
            }
        }
        for &q in self.queue_policies.keys() {
            if q >= self.workloads.len() {
                return Err(format!("policy override for nonexistent queue {q}"));
            }
        }
        self.validate_tenants()?;
        let h = self.effective_hierarchy();
        h.validate()?;
        // Static CAT way masks must fit the LLC and stay clear of the
        // DDIO partition (which remains reserved for inbound DMA).
        for (d, caps) in self.policy_table().domain_caps().iter().enumerate() {
            if let CatMode::Static(m) = caps.cat {
                if m.is_empty() {
                    return Err(format!("policy domain {d}: CAT way mask selects no way"));
                }
                if m.intersect(WayMask::all(h.llc.ways)) != m {
                    return Err(format!(
                        "policy domain {d}: CAT way mask {m} wider than the {}-way LLC",
                        h.llc.ways
                    ));
                }
                if !m.intersect(h.ddio_mask()).is_empty() {
                    return Err(format!(
                        "policy domain {d}: CAT way mask {m} overlaps the {} DDIO ways",
                        h.ddio_ways
                    ));
                }
            }
        }
        self.dram.validate()?;
        self.dma.validate()?;
        self.pmd.validate()?;
        if self.sample_interval == Duration::ZERO {
            return Err("sample interval must be positive".into());
        }
        Ok(())
    }

    /// Whether tenant `t` uses the wide (source-address-spilling) flow
    /// derivation: churn always does; so does a flow count that exceeds
    /// the tenant's port range. Everything else keeps the legacy
    /// port-offset derivation byte-for-byte.
    pub(crate) fn tenant_is_wide(t: &TenantSpec) -> bool {
        t.churn.is_some() || u32::from(t.base_port) + t.flows > 65536
    }

    /// Tenant-mode invariants: every tenant owns at least one existing
    /// workload, no workload has two tenants, names are unique, flow
    /// counts fit the streaming `FlowSet`, and *narrow* tenants' synthetic
    /// flow port ranges do not collide (colliding ranges would make two
    /// tenants share a five-tuple and merge at the flow director). Wide
    /// tenants embed their tenant index in the source address and cannot
    /// alias anything.
    fn validate_tenants(&self) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        let mut owned = std::collections::HashSet::new();
        let mut port_ranges: Vec<(String, u32, u32)> = Vec::new();
        for (ti, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() {
                return Err("tenant with empty name".into());
            }
            if !names.insert(t.name.as_str()) {
                return Err(format!("duplicate tenant name '{}'", t.name));
            }
            if t.workloads.is_empty() {
                return Err(format!("tenant '{}' owns no workloads", t.name));
            }
            for &wi in &t.workloads {
                if wi >= self.workloads.len() {
                    return Err(format!("tenant '{}' references workload {wi}", t.name));
                }
                if !owned.insert(wi) {
                    return Err(format!("workload {wi} belongs to two tenants"));
                }
            }
            if t.train == 0 {
                return Err(format!("tenant '{}' has a zero-packet train", t.name));
            }
            if t.churn == Some(Duration::ZERO) {
                return Err(format!("tenant '{}' has a zero flow lifetime", t.name));
            }
            if let Some(arrivals) = &t.replay {
                if arrivals.windows(2).any(|w| w[0].at > w[1].at) {
                    return Err(format!("tenant '{}' replay is not time-ordered", t.name));
                }
            } else {
                if t.flows == 0 {
                    return Err(format!("tenant '{}' has zero flows", t.name));
                }
                if t.flows > idio_net::MAX_FLOW_SET_FLOWS {
                    return Err(format!(
                        "tenant '{}' has {} flows; the streaming flow set caps at {}",
                        t.name,
                        t.flows,
                        idio_net::MAX_FLOW_SET_FLOWS
                    ));
                }
                if Self::tenant_is_wide(t) {
                    if ti > usize::from(idio_net::MAX_FLOW_SET_TAG) {
                        return Err(format!(
                            "tenant '{}': at most {} tenants may use wide flow sets",
                            t.name,
                            usize::from(idio_net::MAX_FLOW_SET_TAG) + 1
                        ));
                    }
                } else {
                    let end = u32::from(t.base_port) + t.flows;
                    for (other, lo, hi) in &port_ranges {
                        if u32::from(t.base_port) < *hi && *lo < end {
                            return Err(format!(
                                "tenants '{}' and '{other}' have overlapping flow ports",
                                t.name
                            ));
                        }
                    }
                    port_ranges.push((t.name.clone(), u32::from(t.base_port), end));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_net::gen::{BurstSpec, TrafficPattern};

    fn bursty() -> TrafficPattern {
        TrafficPattern::Bursty(BurstSpec::for_ring(
            1024,
            1514,
            100.0,
            Duration::from_ms(10),
        ))
    }

    #[test]
    fn touchdrop_scenario_matches_paper() {
        let cfg = SystemConfig::touchdrop_scenario(2, bursty());
        assert_eq!(cfg.workloads.len(), 2);
        assert_eq!(cfg.ring_size, 1024);
        assert_eq!(cfg.hierarchy.llc.size_bytes, 3 << 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn antagonist_gets_shrunk_mlc() {
        let cfg = SystemConfig::touchdrop_scenario(2, bursty()).with_antagonist();
        assert_eq!(cfg.num_cores(), 3);
        let h = cfg.effective_hierarchy();
        assert_eq!(h.num_cores, 3);
        assert_eq!(h.mlc_for_core(2).size_bytes, 256 << 10);
        assert_eq!(h.mlc_for_core(0).size_bytes, 1 << 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn double_booked_core_rejected() {
        let mut cfg = SystemConfig::touchdrop_scenario(2, bursty());
        cfg.workloads[1].core = CoreId::new(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn antagonist_collision_rejected() {
        let mut cfg = SystemConfig::touchdrop_scenario(2, bursty()).with_antagonist();
        cfg.antagonist = Some(AntagonistSpec::paper_default(CoreId::new(1)));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn policy_builder() {
        let cfg = SystemConfig::touchdrop_scenario(1, bursty()).with_policy(SteeringPolicy::Idio);
        assert_eq!(cfg.policy, SteeringPolicy::Idio);
    }

    fn tenant(name: &str, workloads: Vec<usize>, base_port: u16) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            workloads,
            flows: 4,
            base_port,
            churn: None,
            train: 1,
            traffic: TrafficPattern::Steady { rate_gbps: 10.0 },
            packet_len: 1514,
            dscp: Dscp::BEST_EFFORT,
            replay: None,
            policy: None,
        }
    }

    #[test]
    fn tenant_mode_validates() {
        let mut cfg = SystemConfig::touchdrop_scenario(4, bursty());
        cfg.tenants = vec![tenant("a", vec![0, 1], 5000), tenant("b", vec![2, 3], 6000)];
        assert!(cfg.validate().is_ok());
        assert_eq!(
            cfg.tenants[1].cores(&cfg).collect::<Vec<_>>(),
            vec![CoreId::new(2), CoreId::new(3)]
        );
    }

    #[test]
    fn policy_layers_resolve_queue_over_tenant_over_default() {
        let mut cfg =
            SystemConfig::touchdrop_scenario(4, bursty()).with_policy(SteeringPolicy::Idio);
        cfg.tenants = vec![tenant("a", vec![0, 1], 5000), tenant("b", vec![2, 3], 6000)];
        cfg.tenants[1].policy = Some(PolicySpec::Preset(SteeringPolicy::Ddio));
        cfg = cfg.with_queue_policy(3, SteeringPolicy::IatDynamic);
        assert!(cfg.validate().is_ok());
        let t = cfg.policy_table();
        assert_eq!(t.num_domains(), 3);
        // Queues 0/1 inherit the default, 2 takes the tenant override, 3
        // the queue override on top of it.
        assert_eq!(t.queue_domains(), &[0, 0, 1, 2]);
        assert_eq!(t.spec(0), PolicySpec::Preset(SteeringPolicy::Idio));
        assert_eq!(t.spec(1), PolicySpec::Preset(SteeringPolicy::Ddio));
        assert_eq!(t.spec(2), PolicySpec::Preset(SteeringPolicy::IatDynamic));
    }

    #[test]
    fn preset_only_config_resolves_to_one_domain() {
        let cfg = SystemConfig::touchdrop_scenario(3, bursty()).with_policy(SteeringPolicy::Idio);
        let t = cfg.policy_table();
        assert_eq!(t.num_domains(), 1);
        assert_eq!(t.queue_domains(), &[0, 0, 0]);
        assert_eq!(t.caps(0), SteeringPolicy::Idio.caps());
    }

    #[test]
    fn cat_masks_validated_against_llc_and_ddio_partition() {
        use crate::policy::{CatMode, PolicyCaps};
        let cat = |cat: CatMode| {
            PolicySpec::Custom(PolicyCaps {
                cat,
                ..SteeringPolicy::Idio.caps()
            })
        };
        // A clean non-DDIO mask validates (paper LLC: 12 ways, 2 DDIO).
        let ok = SystemConfig::touchdrop_scenario(2, bursty())
            .with_queue_policy(0, cat(CatMode::Static(WayMask::range(4, 8))));
        assert!(ok.validate().is_ok());
        // Auto needs no mask to validate.
        let auto =
            SystemConfig::touchdrop_scenario(2, bursty()).with_queue_policy(0, cat(CatMode::Auto));
        assert!(auto.validate().is_ok());
        let wide = SystemConfig::touchdrop_scenario(2, bursty())
            .with_queue_policy(0, cat(CatMode::Static(WayMask::range(10, 14))));
        assert!(wide.validate().unwrap_err().contains("wider"));
        let overlap = SystemConfig::touchdrop_scenario(2, bursty())
            .with_queue_policy(0, cat(CatMode::Static(WayMask::range(1, 4))));
        assert!(overlap.validate().unwrap_err().contains("overlaps"));
        let empty = SystemConfig::touchdrop_scenario(2, bursty())
            .with_queue_policy(0, cat(CatMode::Static(WayMask::EMPTY)));
        assert!(empty.validate().unwrap_err().contains("no way"));
    }

    #[test]
    fn queue_policy_for_unknown_queue_rejected() {
        let cfg = SystemConfig::touchdrop_scenario(2, bursty())
            .with_queue_policy(7, SteeringPolicy::Ddio);
        assert!(cfg.validate().unwrap_err().contains("nonexistent queue 7"));
    }

    #[test]
    fn tenant_violations_rejected() {
        let base = SystemConfig::touchdrop_scenario(4, bursty());
        let reject = |tenants: Vec<TenantSpec>, why: &str| {
            let mut cfg = base.clone();
            cfg.tenants = tenants;
            assert!(cfg.validate().is_err(), "{why}");
        };
        reject(vec![tenant("", vec![0], 5000)], "empty name");
        reject(
            vec![tenant("a", vec![0], 5000), tenant("a", vec![1], 6000)],
            "duplicate name",
        );
        reject(vec![tenant("a", vec![], 5000)], "no workloads");
        reject(vec![tenant("a", vec![9], 5000)], "bad workload index");
        reject(
            vec![tenant("a", vec![0, 1], 5000), tenant("b", vec![1], 6000)],
            "workload owned twice",
        );
        reject(
            vec![tenant("a", vec![0], 5000), tenant("b", vec![1], 5003)],
            "overlapping ports",
        );
        let mut zero = tenant("a", vec![0], 5000);
        zero.flows = 0;
        reject(vec![zero], "zero flows");
        let mut unordered = tenant("a", vec![0], 5000);
        unordered.replay = Some(vec![
            Arrival {
                at: SimTime::from_us(2),
                packet: idio_net::packet::Packet::new(
                    0,
                    128,
                    idio_net::packet::FiveTuple::udp(1, 2, 3, 4),
                    Dscp::BEST_EFFORT,
                ),
            },
            Arrival {
                at: SimTime::from_us(1),
                packet: idio_net::packet::Packet::new(
                    1,
                    128,
                    idio_net::packet::FiveTuple::udp(1, 2, 3, 4),
                    Dscp::BEST_EFFORT,
                ),
            },
        ]);
        reject(vec![unordered], "unordered replay");
    }
}
