//! Full-system configuration (Table I defaults plus workload wiring).

use idio_cache::addr::CoreId;
use idio_cache::config::{CacheGeometry, HierarchyConfig};
use idio_cache::hierarchy::InvalidateScope;
use idio_engine::telemetry::TraceFilter;
use idio_engine::time::{Duration, SimTime};
use idio_mem::DramConfig;
use idio_net::gen::{Arrival, TrafficPattern};
use idio_net::packet::Dscp;
use idio_nic::classifier::ClassifierConfig;
use idio_nic::dma::DmaConfig;
use idio_stack::nf::NfKind;
use idio_stack::pmd::PmdConfig;
use idio_stack::timing::TimingConfig;

use crate::controller::IdioConfig;
use crate::policy::SteeringPolicy;
use crate::prefetcher::PrefetcherConfig;

/// How flows are steered to queues (Sec. II-C's two Flow Director
/// flavours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowSteering {
    /// Externally programmed perfect-match filters: every workload's flow
    /// is pinned to its queue up front (applications pinned to cores).
    #[default]
    Perfect,
    /// Application Targeting Routing: no filters up front; initial packets
    /// spread by RSS, and the NIC learns each flow's queue from the TX
    /// traffic it observes.
    Atr,
}

/// One network-function instance pinned to one core with its own NIC
/// queue and traffic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// The core running the NF (also its queue's ADQ pin target).
    pub core: CoreId,
    /// Which Table II workload.
    pub kind: NfKind,
    /// Arrival pattern of this instance's flow.
    pub traffic: TrafficPattern,
    /// Frame size in bytes.
    pub packet_len: u16,
    /// DSCP marking applied by the (simulated) sender.
    pub dscp: Dscp,
}

/// The LLCAntagonist co-runner (Sec. VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntagonistSpec {
    /// The core running the antagonist.
    pub core: CoreId,
    /// Its buffer size in bytes.
    pub buffer_bytes: u64,
    /// Compute cycles between dependent accesses.
    pub think_cycles: u64,
}

impl AntagonistSpec {
    /// The paper's setting: pinned core with an LLC-thrashing buffer.
    pub fn paper_default(core: CoreId) -> Self {
        AntagonistSpec {
            core,
            buffer_bytes: 3 << 20,
            think_cycles: 2,
        }
    }
}

/// Everything needed to build and run a [`crate::system::System`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Cache hierarchy (Table I; antagonist MLC override applied by the
    /// builder).
    pub hierarchy: HierarchyConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Core timing model.
    pub timing: TimingConfig,
    /// Polling-mode driver parameters.
    pub pmd: PmdConfig,
    /// NIC ring depth per queue.
    pub ring_size: u32,
    /// NIC-side classifier settings.
    pub classifier: ClassifierConfig,
    /// PCIe/DMA settings.
    pub dma: DmaConfig,
    /// The placement policy under test.
    pub policy: SteeringPolicy,
    /// IDIO controller settings.
    pub idio: IdioConfig,
    /// MLC prefetcher settings.
    pub prefetcher: PrefetcherConfig,
    /// Scope of the self-invalidate instruction.
    pub invalidate_scope: InvalidateScope,
    /// NF instances (at most one per core).
    pub workloads: Vec<WorkloadSpec>,
    /// Optional antagonist co-runner.
    pub antagonist: Option<AntagonistSpec>,
    /// Trace replays: workload index → recorded arrivals that replace the
    /// workload's analytic traffic pattern (see `idio_net::trace`).
    pub trace_replays: std::collections::BTreeMap<usize, Vec<Arrival>>,
    /// Flow Director operating mode.
    pub steering: FlowSteering,
    /// Traffic generation horizon.
    pub duration: SimTime,
    /// Extra time allowed for queued packets to drain after traffic stops.
    pub drain_grace: Duration,
    /// Statistics sampling interval (10 µs in the paper's figures).
    pub sample_interval: Duration,
    /// Which components the run's tracer records (off by default; see
    /// [`idio_engine::telemetry::Tracer`]). Trace output is deterministic:
    /// a pure function of the configuration and seed.
    pub trace: TraceFilter,
    /// Measure host wall-clock per event type in the engine loop.
    /// Dispatch *counts* are always collected (they are deterministic);
    /// the wall-clock measurement is host noise and is opt-in so it never
    /// taxes—or leaks into—deterministic runs.
    pub profile_events: bool,
    /// PRNG seed (antagonist access pattern).
    pub seed: u64,
}

impl SystemConfig {
    /// The Fig. 9 baseline scenario: `n` TouchDrop instances on `n` cores
    /// (plus room for an antagonist if added later), Table I hierarchy with
    /// the 3 MiB LLC, 1024-deep rings, 1514-byte packets.
    pub fn touchdrop_scenario(n: usize, traffic: TrafficPattern) -> Self {
        let workloads = (0..n as u16)
            .map(|i| WorkloadSpec {
                core: CoreId::new(i),
                kind: NfKind::TouchDrop,
                traffic,
                packet_len: 1514,
                dscp: Dscp::BEST_EFFORT,
            })
            .collect();
        SystemConfig {
            hierarchy: HierarchyConfig::paper_default(n.max(1)),
            dram: DramConfig::default(),
            timing: TimingConfig::default(),
            pmd: PmdConfig::default(),
            ring_size: 1024,
            classifier: ClassifierConfig::paper_default(),
            dma: DmaConfig::default(),
            policy: SteeringPolicy::Ddio,
            idio: IdioConfig::paper_default(),
            prefetcher: PrefetcherConfig::default(),
            invalidate_scope: InvalidateScope::IncludeLlc,
            workloads,
            antagonist: None,
            trace_replays: std::collections::BTreeMap::new(),
            steering: FlowSteering::default(),
            duration: SimTime::from_ms(10),
            drain_grace: Duration::from_ms(5),
            sample_interval: Duration::from_us(10),
            trace: TraceFilter::off(),
            profile_events: false,
            seed: 0xD10,
        }
    }

    /// Returns the config with a different policy.
    pub fn with_policy(mut self, policy: SteeringPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Adds the antagonist on the next free core, shrinking that core's MLC
    /// to 256 KiB per Sec. VI.
    pub fn with_antagonist(mut self) -> Self {
        let core = CoreId::new(self.num_cores() as u16);
        self.antagonist = Some(AntagonistSpec::paper_default(core));
        self
    }

    /// Number of cores the configuration requires.
    pub fn num_cores(&self) -> usize {
        let wl_max = self
            .workloads
            .iter()
            .map(|w| w.core.index() + 1)
            .max()
            .unwrap_or(0);
        let ant = self.antagonist.map(|a| a.core.index() + 1).unwrap_or(0);
        wl_max.max(ant).max(1)
    }

    /// Finalises the hierarchy config: core count and antagonist MLC
    /// override.
    pub(crate) fn effective_hierarchy(&self) -> HierarchyConfig {
        let mut h = self.hierarchy.clone();
        let n = self.num_cores();
        if h.num_cores < n {
            h.num_cores = n;
        }
        h.mlc_overrides.resize(h.num_cores, None);
        if let Some(a) = self.antagonist {
            // Sec. VI: the antagonist core's MLC is set to 256 KiB so it
            // stays sensitive to LLC contention.
            h.mlc_overrides[a.core.index()] = Some(CacheGeometry::new(
                256 << 10,
                h.mlc.ways,
                h.mlc.latency_cycles,
            ));
        }
        h
    }

    /// Validates cross-cutting constraints.
    ///
    /// # Errors
    ///
    /// Returns a message when cores are double-booked, a workload core
    /// collides with the antagonist, or a nested config is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.workloads.is_empty() && self.antagonist.is_none() {
            return Err("no workload configured".into());
        }
        let mut seen = std::collections::HashSet::new();
        for w in &self.workloads {
            if !seen.insert(w.core) {
                return Err(format!("core {} has two workloads", w.core));
            }
        }
        if let Some(a) = self.antagonist {
            if seen.contains(&a.core) {
                return Err(format!("antagonist collides with an NF on {}", a.core));
            }
        }
        if self.ring_size == 0 {
            return Err("ring size must be positive".into());
        }
        for (&idx, arrivals) in &self.trace_replays {
            if idx >= self.workloads.len() {
                return Err(format!("trace replay for nonexistent workload {idx}"));
            }
            if arrivals.windows(2).any(|w| w[0].at > w[1].at) {
                return Err(format!("trace replay {idx} is not time-ordered"));
            }
        }
        self.effective_hierarchy().validate()?;
        self.dram.validate()?;
        self.dma.validate()?;
        self.pmd.validate()?;
        if self.sample_interval == Duration::ZERO {
            return Err("sample interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_net::gen::{BurstSpec, TrafficPattern};

    fn bursty() -> TrafficPattern {
        TrafficPattern::Bursty(BurstSpec::for_ring(
            1024,
            1514,
            100.0,
            Duration::from_ms(10),
        ))
    }

    #[test]
    fn touchdrop_scenario_matches_paper() {
        let cfg = SystemConfig::touchdrop_scenario(2, bursty());
        assert_eq!(cfg.workloads.len(), 2);
        assert_eq!(cfg.ring_size, 1024);
        assert_eq!(cfg.hierarchy.llc.size_bytes, 3 << 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn antagonist_gets_shrunk_mlc() {
        let cfg = SystemConfig::touchdrop_scenario(2, bursty()).with_antagonist();
        assert_eq!(cfg.num_cores(), 3);
        let h = cfg.effective_hierarchy();
        assert_eq!(h.num_cores, 3);
        assert_eq!(h.mlc_for_core(2).size_bytes, 256 << 10);
        assert_eq!(h.mlc_for_core(0).size_bytes, 1 << 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn double_booked_core_rejected() {
        let mut cfg = SystemConfig::touchdrop_scenario(2, bursty());
        cfg.workloads[1].core = CoreId::new(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn antagonist_collision_rejected() {
        let mut cfg = SystemConfig::touchdrop_scenario(2, bursty()).with_antagonist();
        cfg.antagonist = Some(AntagonistSpec::paper_default(CoreId::new(1)));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn policy_builder() {
        let cfg = SystemConfig::touchdrop_scenario(1, bursty()).with_policy(SteeringPolicy::Idio);
        assert_eq!(cfg.policy, SteeringPolicy::Idio);
    }
}
