//! The on-chip IDIO controller (Alg. 1).
//!
//! The controller sits next to the PCIe root complex. Its **data plane**
//! steers every inbound DMA write using the classifier metadata carried in
//! the TLP reserved bits: headers are hinted toward the destination core's
//! MLC; class-1 payloads go straight to DRAM; class-0 payloads follow the
//! per-core *status* register. Its **control plane** measures per-core MLC
//! writeback pressure every 1 µs against a long-run average (8192 samples)
//! and drives the Fig. 8 FSM.

use idio_cache::addr::CoreId;
use idio_cache::set::WayMask;
use idio_engine::time::Duration;
use idio_nic::tlp::{AppClass, TlpMeta};

use crate::fsm::{MlcStatus, PrefetchFsm};
use crate::policy::{PolicyCaps, PrefetchMode};

/// Controller configuration (Sec. V-B and VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdioConfig {
    /// Control-plane sampling interval (1 µs).
    pub control_interval: Duration,
    /// Number of control intervals averaged into `mlcWBAvg` (8192).
    pub avg_window: u32,
    /// MLC-pressure threshold `mlcTHR`, in writebacks per control interval.
    /// The paper's 50 MTPS over 1 µs is 50 writebacks/interval.
    pub mlc_thr: u32,
    /// The rate intent behind `mlc_thr`, in milli-MTPS (fixed point so the
    /// config stays `Eq`/`Hash`-able). When set, the effective threshold
    /// is recomputed from this and the *current* `control_interval`, so
    /// changing the interval after [`IdioConfig::with_mlc_thr_mtps`] can
    /// never leave a stale `mlc_thr`.
    pub mlc_thr_mtps_milli: Option<u64>,
}

impl IdioConfig {
    /// The paper's experimentally chosen values.
    pub fn paper_default() -> Self {
        IdioConfig {
            control_interval: Duration::from_us(1),
            avg_window: 8192,
            mlc_thr: 50,
            mlc_thr_mtps_milli: None,
        }
    }

    /// Sets `mlcTHR` from a rate in MTPS (million transactions/second).
    ///
    /// The intent is stored, so a later `control_interval` change
    /// (via [`IdioConfig::with_control_interval`] or direct field
    /// assignment) transparently rescales the effective threshold. Rates
    /// that round to zero writebacks per interval are rounded *up* to 1 —
    /// a zero threshold would silently disable pressure detection.
    ///
    /// # Panics
    ///
    /// Panics if `mtps` is not finite and strictly positive.
    pub fn with_mlc_thr_mtps(mut self, mtps: f64) -> Self {
        assert!(
            mtps.is_finite() && mtps > 0.0,
            "mlcTHR rate must be finite and positive, got {mtps}"
        );
        self.mlc_thr_mtps_milli = Some(((mtps * 1e3).round() as u64).max(1));
        self.mlc_thr = self.effective_mlc_thr();
        self
    }

    /// Sets the control interval, rescaling `mlc_thr` when it was derived
    /// from an MTPS rate.
    pub fn with_control_interval(mut self, interval: Duration) -> Self {
        self.control_interval = interval;
        self.mlc_thr = self.effective_mlc_thr();
        self
    }

    /// The threshold actually applied by the controller, in writebacks per
    /// `control_interval`: recomputed from the stored MTPS intent (if any)
    /// and the current interval, and never zero.
    pub fn effective_mlc_thr(&self) -> u32 {
        let thr = match self.mlc_thr_mtps_milli {
            Some(milli) => {
                // milli-MTPS → transactions/second → per interval.
                let per_interval = milli as f64 * 1e3 * self.control_interval.as_secs_f64();
                per_interval.round().min(u32::MAX as f64) as u32
            }
            None => self.mlc_thr,
        };
        thr.max(1)
    }
}

impl Default for IdioConfig {
    fn default() -> Self {
        IdioConfig::paper_default()
    }
}

/// Placement decision for one inbound DMA line write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Write-allocate/update in the LLC DDIO ways (classic DDIO).
    Llc,
    /// Land in the LLC and hint the destination core's MLC prefetcher.
    Mlc(CoreId),
    /// Bypass the hierarchy: direct DRAM write.
    Dram,
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreTelemetry {
    /// `mlcWB` counter snapshot at the last control tick.
    last_wb: u64,
    /// Writebacks observed in the most recent interval.
    wb_1us: u32,
    /// Accumulator across the averaging window (`mlcWBAcc`).
    wb_acc: u64,
    /// Long-run average per interval (`mlcWBAvg`).
    wb_avg: u32,
    /// Intervals accumulated so far in the current window.
    intervals: u32,
}

/// The IDIO controller state.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::CoreId;
/// use idio_core::controller::{IdioConfig, IdioController, Placement};
/// use idio_core::policy::SteeringPolicy;
/// use idio_nic::tlp::{AppClass, TlpMeta};
///
/// let mut ctrl = IdioController::new(IdioConfig::paper_default(), 2);
/// let header = TlpMeta {
///     dest_core: CoreId::new(1),
///     app_class: AppClass::Class0,
///     is_header: true,
///     is_burst: true,
/// };
/// // Headers always steer toward the destination MLC under IDIO.
/// assert_eq!(
///     ctrl.steer(SteeringPolicy::Idio, header),
///     Placement::Mlc(CoreId::new(1))
/// );
/// // ...and the burst flag armed payload steering too.
/// let payload = TlpMeta { is_header: false, is_burst: false, ..header };
/// assert_eq!(
///     ctrl.steer(SteeringPolicy::Idio, payload),
///     Placement::Mlc(CoreId::new(1))
/// );
/// ```
#[derive(Debug, Clone)]
pub struct IdioController {
    cfg: IdioConfig,
    fsm: Vec<PrefetchFsm>,
    telemetry: Vec<CoreTelemetry>,
}

impl IdioController {
    /// Creates a controller for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the averaging window is zero.
    pub fn new(mut cfg: IdioConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(cfg.avg_window > 0, "averaging window must be positive");
        // Resolve the threshold once against the final interval, so an
        // intent stored before an interval change still applies correctly.
        cfg.mlc_thr = cfg.effective_mlc_thr();
        IdioController {
            cfg,
            fsm: vec![PrefetchFsm::new(); num_cores],
            telemetry: vec![CoreTelemetry::default(); num_cores],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IdioConfig {
        &self.cfg
    }

    /// Current FSM status for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn status(&self, core: CoreId) -> MlcStatus {
        self.fsm[core.index()].status()
    }

    /// The per-core FSM behind a steering decision, diagnosing a
    /// descriptor that targets a core this controller was never sized for
    /// (a mis-wired queue→core map) instead of a bare index panic.
    #[inline]
    fn fsm_checked(&mut self, core: CoreId, event: &'static str) -> &mut PrefetchFsm {
        let cores = self.fsm.len();
        match self.fsm.get_mut(core.index()) {
            Some(f) => f,
            None => panic!(
                "{event}: steering descriptor targets {core}, but the controller \
                 manages cores 0..{cores} (mis-wired queue→core map?)"
            ),
        }
    }

    /// Current long-run MLC writeback average for `core` (per interval).
    pub fn mlc_wb_avg(&self, core: CoreId) -> u32 {
        self.telemetry[core.index()].wb_avg
    }

    /// **Data plane** (Alg. 1 lines 1–11): steering decision for one DMA
    /// write, given the capabilities of the queue's resolved policy.
    ///
    /// Accepts either a [`PolicyCaps`] (the hot path hands in the caps
    /// resolved for the packet's queue) or a [`crate::policy::SteeringPolicy`]
    /// preset, which converts to its capability set.
    pub fn steer(&mut self, policy: impl Into<PolicyCaps>, meta: TlpMeta) -> Placement {
        let caps: PolicyCaps = policy.into();
        let mode = caps.prefetch;
        if mode == PrefetchMode::Off {
            // DDIO / Invalidate configs: everything to the LLC. (Class-1
            // direct DRAM requires the IDIO data path too.)
            return Placement::Llc;
        }

        let core = meta.dest_core;
        if meta.is_burst {
            self.fsm_checked(core, "steer").reset_on_burst();
        }
        if meta.is_header {
            return Placement::Mlc(core);
        }
        if meta.app_class == AppClass::Class1 && caps.direct_dram {
            return Placement::Dram;
        }
        let steer_mlc = match mode {
            PrefetchMode::Always => true,
            PrefetchMode::Dynamic => self.fsm_checked(core, "steer").status() == MlcStatus::Mlc,
            PrefetchMode::Off => unreachable!("handled above"),
        };
        if steer_mlc {
            Placement::Mlc(core)
        } else {
            Placement::Llc
        }
    }

    /// **Control plane**, 1 µs tick (Alg. 1 lines 14–19): feed the current
    /// per-core cumulative MLC-writeback counters.
    ///
    /// # Panics
    ///
    /// Panics if `mlc_wb_counters` has the wrong length.
    pub fn control_tick(&mut self, mlc_wb_counters: &[u64]) {
        assert_eq!(mlc_wb_counters.len(), self.telemetry.len());
        for (i, &wb) in mlc_wb_counters.iter().enumerate() {
            let t = &mut self.telemetry[i];
            let delta = wb.saturating_sub(t.last_wb);
            t.last_wb = wb;
            t.wb_1us = delta.min(u64::from(u32::MAX)) as u32;
            let high = t.wb_1us > t.wb_avg.saturating_add(self.cfg.mlc_thr);
            self.fsm[i].update(high);
            t.wb_acc += u64::from(t.wb_1us);
            t.intervals += 1;
            if t.intervals >= self.cfg.avg_window {
                // Alg. 1 lines 20–24: refresh the long-run average.
                t.wb_avg =
                    (t.wb_acc / u64::from(self.cfg.avg_window)).min(u64::from(u32::MAX)) as u32;
                t.wb_acc = 0;
                t.intervals = 0;
            }
        }
    }
}

/// Configuration of the closed-loop CAT way allocator.
///
/// Mirrors the IAT way-tuner's cadence and hysteresis: slices grow
/// promptly under pressure and are given back only after a sustained
/// quiet period, so the partition does not flap at the control rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatConfig {
    /// Control ticks between slice evaluations (25 → every 25 µs at the
    /// paper's 1 µs control interval, matching the IAT tuner).
    pub period: u64,
    /// Per-evaluation MLC-writeback delta (summed over the domain's
    /// cores) above which the domain is considered under pressure.
    pub grow_thr: u64,
    /// Consecutive quiet evaluations before a way is given back.
    pub quiet_evals: u32,
    /// Smallest slice an auto domain ever holds.
    pub min_ways: usize,
    /// Largest slice an auto domain ever holds.
    pub max_ways: usize,
    /// Ways always left to the shared (non-CAT) core pool.
    pub min_shared: usize,
}

impl CatConfig {
    /// Defaults matched to the 12-way paper LLC: slices of 1..6 ways per
    /// domain, at least 2 ways always shared, IAT-tuner cadence. The
    /// 6-way ceiling matters: the LLC has twice the sets of an MLC, so a
    /// slice only out-holds the 8-way MLC once it exceeds 4 ways — a
    /// smaller cap could never protect anything the MLC did not already.
    pub fn paper_default() -> Self {
        CatConfig {
            period: 25,
            grow_thr: 25,
            quiet_evals: 40,
            min_ways: 1,
            max_ways: 6,
            min_shared: 2,
        }
    }
}

impl Default for CatConfig {
    fn default() -> Self {
        CatConfig::paper_default()
    }
}

#[derive(Debug, Clone, Copy)]
struct CatSlot {
    /// Current slice width in ways.
    ways: usize,
    /// Domain MLC-WB counter snapshot at the last evaluation.
    last_wb: u64,
    /// Consecutive quiet evaluations (hysteresis).
    quiet: u32,
}

/// The way layout computed by [`CatController::plan`] for the current
/// LLC geometry: one exclusive mask per auto domain, plus the mask the
/// remaining (non-CAT) cores share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatPlan {
    /// Per-domain exclusive mask; `None` for domains that are not
    /// auto-managed, or whose slice could not be carved (no budget).
    pub domain_mask: Vec<Option<WayMask>>,
    /// Ways left to cores outside every auto domain (never empty).
    pub shared: WayMask,
}

/// Closed-loop CAT way allocator (modelled after Intel RDT/CAT on top
/// of the DDIO partition).
///
/// Each policy domain whose caps request `cat = auto` is granted an
/// *exclusive* slice of the core-side LLC ways, carved from the **top**
/// of the way range — the DDIO partition grows from the bottom (and the
/// IAT tuner may widen it at run time), so the two allocators never
/// collide. Cores outside every auto domain share whatever remains in
/// the middle. The loop widens a slice while the domain's MLC-writeback
/// pressure keeps climbing (victims of its private caches are landing
/// in its slice) and narrows it only after a sustained quiet period.
#[derive(Debug, Clone)]
pub struct CatController {
    cfg: CatConfig,
    /// One slot per policy domain; `None` = domain is not auto-managed.
    slots: Vec<Option<CatSlot>>,
    ticks: u64,
    reallocations: u64,
}

impl CatController {
    /// Creates an allocator for the given domains; `auto[d]` says whether
    /// domain `d` asked for closed-loop management. Every managed domain
    /// starts at `min_ways`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero period, zero slice
    /// floor, or an inverted `min_ways > max_ways` range).
    pub fn new(cfg: CatConfig, auto: &[bool]) -> Self {
        assert!(cfg.period > 0, "evaluation period must be positive");
        assert!(cfg.min_ways > 0, "a CAT slice needs at least one way");
        assert!(
            cfg.min_ways <= cfg.max_ways,
            "min_ways must not exceed max_ways"
        );
        CatController {
            cfg,
            slots: auto
                .iter()
                .map(|&a| {
                    a.then_some(CatSlot {
                        ways: cfg.min_ways,
                        last_wb: 0,
                        quiet: 0,
                    })
                })
                .collect(),
            ticks: 0,
            reallocations: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CatConfig {
        &self.cfg
    }

    /// Current slice width of domain `d` (`None` when not auto-managed).
    pub fn ways(&self, d: usize) -> Option<usize> {
        self.slots.get(d).and_then(|s| s.as_ref()).map(|s| s.ways)
    }

    /// Number of slice-width changes the loop has made so far.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Control-tick entry point: feed the cumulative MLC-writeback
    /// counter of every policy domain (summed over the domain's cores).
    /// Evaluates slices every `period` ticks; returns `true` when any
    /// slice width changed and masks must be re-planned.
    ///
    /// `budget` is the number of ways currently available to auto slices
    /// in total (LLC ways − DDIO ways − `min_shared`); growth stops when
    /// the summed slices would exceed it, so an IAT-widened DDIO
    /// partition transparently squeezes CAT's head-room.
    ///
    /// # Panics
    ///
    /// Panics if `domain_wb` has the wrong length.
    pub fn tick(&mut self, domain_wb: &[u64], budget: usize) -> bool {
        assert_eq!(domain_wb.len(), self.slots.len());
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.cfg.period) {
            return false;
        }
        let mut total: usize = self.slots.iter().flatten().map(|s| s.ways).sum();
        let mut changed = false;
        for (d, slot) in self.slots.iter_mut().enumerate() {
            let Some(s) = slot else { continue };
            let wb = domain_wb[d];
            let delta = wb.saturating_sub(s.last_wb);
            s.last_wb = wb;
            if delta > self.cfg.grow_thr {
                s.quiet = 0;
                if s.ways < self.cfg.max_ways && total < budget {
                    s.ways += 1;
                    total += 1;
                    changed = true;
                    self.reallocations += 1;
                }
            } else if delta == 0 {
                s.quiet += 1;
                if s.quiet >= self.cfg.quiet_evals && s.ways > self.cfg.min_ways {
                    s.ways -= 1;
                    total -= 1;
                    s.quiet = 0;
                    changed = true;
                    self.reallocations += 1;
                }
            } else {
                s.quiet = 0;
            }
        }
        changed
    }

    /// Lays the current slices out over the given LLC geometry.
    ///
    /// Slices are carved top-down in domain order, never touching the
    /// bottom `ddio_ways + min_shared` ways; a slice that no longer fits
    /// (the DDIO partition grew) is clamped, and dropped to the shared
    /// pool when clamped below one way. Deterministic: same slices and
    /// geometry → same plan.
    pub fn plan(&self, llc_ways: usize, ddio_ways: usize) -> CatPlan {
        let floor = ddio_ways + self.cfg.min_shared;
        let mut cursor = llc_ways;
        let domain_mask = self
            .slots
            .iter()
            .map(|slot| {
                let s = slot.as_ref()?;
                let k = s.ways.min(cursor.saturating_sub(floor));
                if k == 0 {
                    return None;
                }
                let m = WayMask::range(cursor - k, cursor);
                cursor -= k;
                Some(m)
            })
            .collect();
        CatPlan {
            domain_mask,
            shared: WayMask::range(ddio_ways, cursor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SteeringPolicy;

    const C0: CoreId = CoreId::new(0);

    fn meta(header: bool, burst: bool, class: AppClass) -> TlpMeta {
        TlpMeta {
            dest_core: C0,
            app_class: class,
            is_header: header,
            is_burst: burst,
        }
    }

    #[test]
    fn thr_conversion_matches_paper() {
        let cfg = IdioConfig::paper_default().with_mlc_thr_mtps(50.0);
        assert_eq!(cfg.mlc_thr, 50);
        let cfg = IdioConfig::paper_default().with_mlc_thr_mtps(10.0);
        assert_eq!(cfg.mlc_thr, 10);
    }

    #[test]
    fn mtps_intent_survives_interval_change() {
        // Regression: with_mlc_thr_mtps used to bake the interval in at
        // call time, so changing the interval afterwards left a stale
        // threshold (50 instead of 100 here).
        let cfg = IdioConfig::paper_default()
            .with_mlc_thr_mtps(50.0)
            .with_control_interval(Duration::from_us(2));
        assert_eq!(cfg.mlc_thr, 100);
        assert_eq!(cfg.effective_mlc_thr(), 100);

        // Direct field assignment is also rescued at controller build.
        let mut cfg = IdioConfig::paper_default().with_mlc_thr_mtps(50.0);
        cfg.control_interval = Duration::from_us(4);
        assert_eq!(cfg.effective_mlc_thr(), 200);
        let c = IdioController::new(cfg, 1);
        assert_eq!(c.config().mlc_thr, 200);
    }

    #[test]
    fn tiny_mtps_rounds_up_to_one_not_zero() {
        // Regression: 0.2 MTPS over 1 µs is 0.2 WB/interval, which used to
        // round to a threshold of 0 — a value that makes *any* writeback
        // count as pressure, silently disabling MLC steering.
        let cfg = IdioConfig::paper_default().with_mlc_thr_mtps(0.2);
        assert_eq!(cfg.mlc_thr, 1);
        assert_eq!(cfg.effective_mlc_thr(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_mtps_is_rejected() {
        let _ = IdioConfig::paper_default().with_mlc_thr_mtps(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nan_mtps_is_rejected() {
        let _ = IdioConfig::paper_default().with_mlc_thr_mtps(f64::NAN);
    }

    #[test]
    fn ddio_policy_never_leaves_llc() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        for m in [
            meta(true, true, AppClass::Class0),
            meta(false, false, AppClass::Class1),
        ] {
            assert_eq!(c.steer(SteeringPolicy::Ddio, m), Placement::Llc);
            assert_eq!(c.steer(SteeringPolicy::InvalidateOnly, m), Placement::Llc);
        }
    }

    #[test]
    fn class1_payload_goes_to_dram_headers_stay_onchip() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        let payload = meta(false, false, AppClass::Class1);
        let header = meta(true, false, AppClass::Class1);
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Dram);
        assert_eq!(c.steer(SteeringPolicy::Idio, header), Placement::Mlc(C0));
        // PrefetchOnly lacks mechanism 3: class-1 payload stays in LLC.
        assert_eq!(
            c.steer(SteeringPolicy::PrefetchOnly, payload),
            Placement::Llc
        );
    }

    #[test]
    fn dynamic_payload_follows_fsm() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        let payload = meta(false, false, AppClass::Class0);
        // Default FSM state: disabled → LLC.
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Llc);
        // Burst arms it.
        let burst_payload = meta(false, true, AppClass::Class0);
        assert_eq!(
            c.steer(SteeringPolicy::Idio, burst_payload),
            Placement::Mlc(C0)
        );
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Mlc(C0));
    }

    #[test]
    fn static_policy_ignores_fsm() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        let payload = meta(false, false, AppClass::Class0);
        assert_eq!(
            c.steer(SteeringPolicy::StaticIdio, payload),
            Placement::Mlc(C0)
        );
    }

    #[test]
    fn sustained_pressure_disables_dynamic_steering() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        c.steer(SteeringPolicy::Idio, meta(false, true, AppClass::Class0));
        assert_eq!(c.status(C0), MlcStatus::Mlc);
        // Three intervals with wb rate far above avg+thr (avg starts 0).
        let mut wb = 0u64;
        for _ in 0..3 {
            wb += 200; // 200 WB/us >> 0 + 50
            c.control_tick(&[wb]);
        }
        assert_eq!(c.status(C0), MlcStatus::Llc);
        let payload = meta(false, false, AppClass::Class0);
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Llc);
    }

    #[test]
    fn quiet_intervals_keep_steering_enabled() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        c.steer(SteeringPolicy::Idio, meta(false, true, AppClass::Class0));
        let mut wb = 0u64;
        for _ in 0..100 {
            wb += 30; // below thr
            c.control_tick(&[wb]);
        }
        assert_eq!(c.status(C0), MlcStatus::Mlc);
    }

    #[test]
    fn average_window_updates() {
        let cfg = IdioConfig {
            control_interval: Duration::from_us(1),
            avg_window: 4,
            mlc_thr: 50,
            mlc_thr_mtps_milli: None,
        };
        let mut c = IdioController::new(cfg, 1);
        let mut wb = 0u64;
        for _ in 0..4 {
            wb += 100;
            c.control_tick(&[wb]);
        }
        assert_eq!(c.mlc_wb_avg(C0), 100);
        // With avg raised to 100, 140 WB/us is no longer "high".
        c.steer(SteeringPolicy::Idio, meta(false, true, AppClass::Class0));
        wb += 140;
        c.control_tick(&[wb]);
        assert_eq!(c.status(C0), MlcStatus::Mlc);
    }

    #[test]
    fn per_core_isolation() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 2);
        let m1 = TlpMeta {
            dest_core: CoreId::new(1),
            app_class: AppClass::Class0,
            is_header: false,
            is_burst: true,
        };
        c.steer(SteeringPolicy::Idio, m1);
        assert_eq!(c.status(CoreId::new(1)), MlcStatus::Mlc);
        assert_eq!(c.status(C0), MlcStatus::Llc);
    }

    // ---- CAT allocator -----------------------------------------------------

    /// Fast-cadence config so tests don't need hundreds of ticks.
    fn cat_cfg() -> CatConfig {
        CatConfig {
            period: 1,
            grow_thr: 25,
            quiet_evals: 3,
            ..CatConfig::paper_default()
        }
    }

    #[test]
    fn cat_slices_start_at_the_floor_and_carve_from_the_top() {
        let c = CatController::new(cat_cfg(), &[false, true, true]);
        assert_eq!(c.ways(0), None);
        assert_eq!(c.ways(1), Some(1));
        assert_eq!(c.ways(2), Some(1));
        let plan = c.plan(12, 2);
        assert_eq!(plan.domain_mask[0], None);
        // Domain 1 takes the top way, domain 2 the next one down.
        assert_eq!(plan.domain_mask[1], Some(WayMask::range(11, 12)));
        assert_eq!(plan.domain_mask[2], Some(WayMask::range(10, 11)));
        assert_eq!(plan.shared, WayMask::range(2, 10));
        // Exclusive: masks are pairwise disjoint and avoid the DDIO ways.
        let m1 = plan.domain_mask[1].unwrap();
        let m2 = plan.domain_mask[2].unwrap();
        assert!(m1.intersect(m2).is_empty());
        assert!(m1.intersect(plan.shared).is_empty());
        assert!(m1.intersect(WayMask::first(2)).is_empty());
    }

    #[test]
    fn cat_grows_under_pressure_and_shrinks_after_quiet() {
        let mut c = CatController::new(cat_cfg(), &[true]);
        let budget = 12 - 2 - 2;
        // Sustained pressure: the slice widens one way per evaluation up
        // to the per-domain cap.
        let mut wb = 0u64;
        for _ in 0..10 {
            wb += 100;
            c.tick(&[wb], budget);
        }
        assert_eq!(c.ways(0), Some(6));
        // Silence: only after `quiet_evals` consecutive quiet checks does
        // a way go back, one at a time.
        assert!(!c.tick(&[wb], budget));
        assert!(!c.tick(&[wb], budget));
        assert!(c.tick(&[wb], budget));
        assert_eq!(c.ways(0), Some(5));
        // Low-but-nonzero traffic resets the quiet streak.
        assert!(!c.tick(&[wb + 1], budget));
        assert!(!c.tick(&[wb + 1], budget));
        assert!(!c.tick(&[wb + 1], budget));
        assert_eq!(c.ways(0), Some(5));
        assert!(c.reallocations() >= 4);
    }

    #[test]
    fn cat_growth_respects_the_shared_budget() {
        // Three hungry domains, budget of 4 ways total: growth stops when
        // the summed slices hit the budget, regardless of per-domain cap.
        let mut c = CatController::new(cat_cfg(), &[true, true, true]);
        let mut wb = 0u64;
        for _ in 0..10 {
            wb += 1000;
            c.tick(&[wb, wb, wb], 4);
        }
        let total: usize = (0..3).map(|d| c.ways(d).unwrap()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn cat_plan_clamps_when_ddio_grows() {
        let mut c = CatController::new(cat_cfg(), &[true, true]);
        let mut wb = 0u64;
        for _ in 0..10 {
            wb += 100;
            c.tick(&[wb, wb], 8);
        }
        assert_eq!(c.ways(0), Some(4));
        assert_eq!(c.ways(1), Some(4));
        // DDIO at 4 ways leaves 12-4-2 = 6 ways for slices: domain 0
        // keeps its 4, domain 1 is clamped to 2, shared keeps 2.
        let plan = c.plan(12, 4);
        assert_eq!(plan.domain_mask[0], Some(WayMask::range(8, 12)));
        assert_eq!(plan.domain_mask[1], Some(WayMask::range(6, 8)));
        assert_eq!(plan.shared, WayMask::range(4, 6));
        // An absurdly wide DDIO partition drops slices entirely rather
        // than leaving any core with an empty mask.
        let plan = c.plan(12, 10);
        assert_eq!(plan.domain_mask[0], None);
        assert_eq!(plan.domain_mask[1], None);
        assert_eq!(plan.shared, WayMask::range(10, 12));
    }

    #[test]
    fn cat_evaluates_only_on_period_boundaries() {
        let mut c = CatController::new(
            CatConfig {
                period: 25,
                ..cat_cfg()
            },
            &[true],
        );
        for t in 1..=24 {
            assert!(!c.tick(&[t * 1000], 8));
        }
        assert_eq!(c.ways(0), Some(1));
        assert!(c.tick(&[25_000], 8));
        assert_eq!(c.ways(0), Some(2));
    }
}
