//! The on-chip IDIO controller (Alg. 1).
//!
//! The controller sits next to the PCIe root complex. Its **data plane**
//! steers every inbound DMA write using the classifier metadata carried in
//! the TLP reserved bits: headers are hinted toward the destination core's
//! MLC; class-1 payloads go straight to DRAM; class-0 payloads follow the
//! per-core *status* register. Its **control plane** measures per-core MLC
//! writeback pressure every 1 µs against a long-run average (8192 samples)
//! and drives the Fig. 8 FSM.

use idio_cache::addr::CoreId;
use idio_engine::time::Duration;
use idio_nic::tlp::{AppClass, TlpMeta};

use crate::fsm::{MlcStatus, PrefetchFsm};
use crate::policy::{PolicyCaps, PrefetchMode};

/// Controller configuration (Sec. V-B and VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdioConfig {
    /// Control-plane sampling interval (1 µs).
    pub control_interval: Duration,
    /// Number of control intervals averaged into `mlcWBAvg` (8192).
    pub avg_window: u32,
    /// MLC-pressure threshold `mlcTHR`, in writebacks per control interval.
    /// The paper's 50 MTPS over 1 µs is 50 writebacks/interval.
    pub mlc_thr: u32,
    /// The rate intent behind `mlc_thr`, in milli-MTPS (fixed point so the
    /// config stays `Eq`/`Hash`-able). When set, the effective threshold
    /// is recomputed from this and the *current* `control_interval`, so
    /// changing the interval after [`IdioConfig::with_mlc_thr_mtps`] can
    /// never leave a stale `mlc_thr`.
    pub mlc_thr_mtps_milli: Option<u64>,
}

impl IdioConfig {
    /// The paper's experimentally chosen values.
    pub fn paper_default() -> Self {
        IdioConfig {
            control_interval: Duration::from_us(1),
            avg_window: 8192,
            mlc_thr: 50,
            mlc_thr_mtps_milli: None,
        }
    }

    /// Sets `mlcTHR` from a rate in MTPS (million transactions/second).
    ///
    /// The intent is stored, so a later `control_interval` change
    /// (via [`IdioConfig::with_control_interval`] or direct field
    /// assignment) transparently rescales the effective threshold. Rates
    /// that round to zero writebacks per interval are rounded *up* to 1 —
    /// a zero threshold would silently disable pressure detection.
    ///
    /// # Panics
    ///
    /// Panics if `mtps` is not finite and strictly positive.
    pub fn with_mlc_thr_mtps(mut self, mtps: f64) -> Self {
        assert!(
            mtps.is_finite() && mtps > 0.0,
            "mlcTHR rate must be finite and positive, got {mtps}"
        );
        self.mlc_thr_mtps_milli = Some(((mtps * 1e3).round() as u64).max(1));
        self.mlc_thr = self.effective_mlc_thr();
        self
    }

    /// Sets the control interval, rescaling `mlc_thr` when it was derived
    /// from an MTPS rate.
    pub fn with_control_interval(mut self, interval: Duration) -> Self {
        self.control_interval = interval;
        self.mlc_thr = self.effective_mlc_thr();
        self
    }

    /// The threshold actually applied by the controller, in writebacks per
    /// `control_interval`: recomputed from the stored MTPS intent (if any)
    /// and the current interval, and never zero.
    pub fn effective_mlc_thr(&self) -> u32 {
        let thr = match self.mlc_thr_mtps_milli {
            Some(milli) => {
                // milli-MTPS → transactions/second → per interval.
                let per_interval = milli as f64 * 1e3 * self.control_interval.as_secs_f64();
                per_interval.round().min(u32::MAX as f64) as u32
            }
            None => self.mlc_thr,
        };
        thr.max(1)
    }
}

impl Default for IdioConfig {
    fn default() -> Self {
        IdioConfig::paper_default()
    }
}

/// Placement decision for one inbound DMA line write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Write-allocate/update in the LLC DDIO ways (classic DDIO).
    Llc,
    /// Land in the LLC and hint the destination core's MLC prefetcher.
    Mlc(CoreId),
    /// Bypass the hierarchy: direct DRAM write.
    Dram,
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreTelemetry {
    /// `mlcWB` counter snapshot at the last control tick.
    last_wb: u64,
    /// Writebacks observed in the most recent interval.
    wb_1us: u32,
    /// Accumulator across the averaging window (`mlcWBAcc`).
    wb_acc: u64,
    /// Long-run average per interval (`mlcWBAvg`).
    wb_avg: u32,
    /// Intervals accumulated so far in the current window.
    intervals: u32,
}

/// The IDIO controller state.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::CoreId;
/// use idio_core::controller::{IdioConfig, IdioController, Placement};
/// use idio_core::policy::SteeringPolicy;
/// use idio_nic::tlp::{AppClass, TlpMeta};
///
/// let mut ctrl = IdioController::new(IdioConfig::paper_default(), 2);
/// let header = TlpMeta {
///     dest_core: CoreId::new(1),
///     app_class: AppClass::Class0,
///     is_header: true,
///     is_burst: true,
/// };
/// // Headers always steer toward the destination MLC under IDIO.
/// assert_eq!(
///     ctrl.steer(SteeringPolicy::Idio, header),
///     Placement::Mlc(CoreId::new(1))
/// );
/// // ...and the burst flag armed payload steering too.
/// let payload = TlpMeta { is_header: false, is_burst: false, ..header };
/// assert_eq!(
///     ctrl.steer(SteeringPolicy::Idio, payload),
///     Placement::Mlc(CoreId::new(1))
/// );
/// ```
#[derive(Debug, Clone)]
pub struct IdioController {
    cfg: IdioConfig,
    fsm: Vec<PrefetchFsm>,
    telemetry: Vec<CoreTelemetry>,
}

impl IdioController {
    /// Creates a controller for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the averaging window is zero.
    pub fn new(mut cfg: IdioConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(cfg.avg_window > 0, "averaging window must be positive");
        // Resolve the threshold once against the final interval, so an
        // intent stored before an interval change still applies correctly.
        cfg.mlc_thr = cfg.effective_mlc_thr();
        IdioController {
            cfg,
            fsm: vec![PrefetchFsm::new(); num_cores],
            telemetry: vec![CoreTelemetry::default(); num_cores],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IdioConfig {
        &self.cfg
    }

    /// Current FSM status for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn status(&self, core: CoreId) -> MlcStatus {
        self.fsm[core.index()].status()
    }

    /// Current long-run MLC writeback average for `core` (per interval).
    pub fn mlc_wb_avg(&self, core: CoreId) -> u32 {
        self.telemetry[core.index()].wb_avg
    }

    /// **Data plane** (Alg. 1 lines 1–11): steering decision for one DMA
    /// write, given the capabilities of the queue's resolved policy.
    ///
    /// Accepts either a [`PolicyCaps`] (the hot path hands in the caps
    /// resolved for the packet's queue) or a [`crate::policy::SteeringPolicy`]
    /// preset, which converts to its capability set.
    pub fn steer(&mut self, policy: impl Into<PolicyCaps>, meta: TlpMeta) -> Placement {
        let caps: PolicyCaps = policy.into();
        let mode = caps.prefetch;
        if mode == PrefetchMode::Off {
            // DDIO / Invalidate configs: everything to the LLC. (Class-1
            // direct DRAM requires the IDIO data path too.)
            return Placement::Llc;
        }

        let core = meta.dest_core;
        if meta.is_burst {
            self.fsm[core.index()].reset_on_burst();
        }
        if meta.is_header {
            return Placement::Mlc(core);
        }
        if meta.app_class == AppClass::Class1 && caps.direct_dram {
            return Placement::Dram;
        }
        let steer_mlc = match mode {
            PrefetchMode::Always => true,
            PrefetchMode::Dynamic => self.fsm[core.index()].status() == MlcStatus::Mlc,
            PrefetchMode::Off => unreachable!("handled above"),
        };
        if steer_mlc {
            Placement::Mlc(core)
        } else {
            Placement::Llc
        }
    }

    /// **Control plane**, 1 µs tick (Alg. 1 lines 14–19): feed the current
    /// per-core cumulative MLC-writeback counters.
    ///
    /// # Panics
    ///
    /// Panics if `mlc_wb_counters` has the wrong length.
    pub fn control_tick(&mut self, mlc_wb_counters: &[u64]) {
        assert_eq!(mlc_wb_counters.len(), self.telemetry.len());
        for (i, &wb) in mlc_wb_counters.iter().enumerate() {
            let t = &mut self.telemetry[i];
            let delta = wb.saturating_sub(t.last_wb);
            t.last_wb = wb;
            t.wb_1us = delta.min(u64::from(u32::MAX)) as u32;
            let high = t.wb_1us > t.wb_avg.saturating_add(self.cfg.mlc_thr);
            self.fsm[i].update(high);
            t.wb_acc += u64::from(t.wb_1us);
            t.intervals += 1;
            if t.intervals >= self.cfg.avg_window {
                // Alg. 1 lines 20–24: refresh the long-run average.
                t.wb_avg =
                    (t.wb_acc / u64::from(self.cfg.avg_window)).min(u64::from(u32::MAX)) as u32;
                t.wb_acc = 0;
                t.intervals = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SteeringPolicy;

    const C0: CoreId = CoreId::new(0);

    fn meta(header: bool, burst: bool, class: AppClass) -> TlpMeta {
        TlpMeta {
            dest_core: C0,
            app_class: class,
            is_header: header,
            is_burst: burst,
        }
    }

    #[test]
    fn thr_conversion_matches_paper() {
        let cfg = IdioConfig::paper_default().with_mlc_thr_mtps(50.0);
        assert_eq!(cfg.mlc_thr, 50);
        let cfg = IdioConfig::paper_default().with_mlc_thr_mtps(10.0);
        assert_eq!(cfg.mlc_thr, 10);
    }

    #[test]
    fn mtps_intent_survives_interval_change() {
        // Regression: with_mlc_thr_mtps used to bake the interval in at
        // call time, so changing the interval afterwards left a stale
        // threshold (50 instead of 100 here).
        let cfg = IdioConfig::paper_default()
            .with_mlc_thr_mtps(50.0)
            .with_control_interval(Duration::from_us(2));
        assert_eq!(cfg.mlc_thr, 100);
        assert_eq!(cfg.effective_mlc_thr(), 100);

        // Direct field assignment is also rescued at controller build.
        let mut cfg = IdioConfig::paper_default().with_mlc_thr_mtps(50.0);
        cfg.control_interval = Duration::from_us(4);
        assert_eq!(cfg.effective_mlc_thr(), 200);
        let c = IdioController::new(cfg, 1);
        assert_eq!(c.config().mlc_thr, 200);
    }

    #[test]
    fn tiny_mtps_rounds_up_to_one_not_zero() {
        // Regression: 0.2 MTPS over 1 µs is 0.2 WB/interval, which used to
        // round to a threshold of 0 — a value that makes *any* writeback
        // count as pressure, silently disabling MLC steering.
        let cfg = IdioConfig::paper_default().with_mlc_thr_mtps(0.2);
        assert_eq!(cfg.mlc_thr, 1);
        assert_eq!(cfg.effective_mlc_thr(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_mtps_is_rejected() {
        let _ = IdioConfig::paper_default().with_mlc_thr_mtps(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nan_mtps_is_rejected() {
        let _ = IdioConfig::paper_default().with_mlc_thr_mtps(f64::NAN);
    }

    #[test]
    fn ddio_policy_never_leaves_llc() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        for m in [
            meta(true, true, AppClass::Class0),
            meta(false, false, AppClass::Class1),
        ] {
            assert_eq!(c.steer(SteeringPolicy::Ddio, m), Placement::Llc);
            assert_eq!(c.steer(SteeringPolicy::InvalidateOnly, m), Placement::Llc);
        }
    }

    #[test]
    fn class1_payload_goes_to_dram_headers_stay_onchip() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        let payload = meta(false, false, AppClass::Class1);
        let header = meta(true, false, AppClass::Class1);
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Dram);
        assert_eq!(c.steer(SteeringPolicy::Idio, header), Placement::Mlc(C0));
        // PrefetchOnly lacks mechanism 3: class-1 payload stays in LLC.
        assert_eq!(
            c.steer(SteeringPolicy::PrefetchOnly, payload),
            Placement::Llc
        );
    }

    #[test]
    fn dynamic_payload_follows_fsm() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        let payload = meta(false, false, AppClass::Class0);
        // Default FSM state: disabled → LLC.
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Llc);
        // Burst arms it.
        let burst_payload = meta(false, true, AppClass::Class0);
        assert_eq!(
            c.steer(SteeringPolicy::Idio, burst_payload),
            Placement::Mlc(C0)
        );
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Mlc(C0));
    }

    #[test]
    fn static_policy_ignores_fsm() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        let payload = meta(false, false, AppClass::Class0);
        assert_eq!(
            c.steer(SteeringPolicy::StaticIdio, payload),
            Placement::Mlc(C0)
        );
    }

    #[test]
    fn sustained_pressure_disables_dynamic_steering() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        c.steer(SteeringPolicy::Idio, meta(false, true, AppClass::Class0));
        assert_eq!(c.status(C0), MlcStatus::Mlc);
        // Three intervals with wb rate far above avg+thr (avg starts 0).
        let mut wb = 0u64;
        for _ in 0..3 {
            wb += 200; // 200 WB/us >> 0 + 50
            c.control_tick(&[wb]);
        }
        assert_eq!(c.status(C0), MlcStatus::Llc);
        let payload = meta(false, false, AppClass::Class0);
        assert_eq!(c.steer(SteeringPolicy::Idio, payload), Placement::Llc);
    }

    #[test]
    fn quiet_intervals_keep_steering_enabled() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 1);
        c.steer(SteeringPolicy::Idio, meta(false, true, AppClass::Class0));
        let mut wb = 0u64;
        for _ in 0..100 {
            wb += 30; // below thr
            c.control_tick(&[wb]);
        }
        assert_eq!(c.status(C0), MlcStatus::Mlc);
    }

    #[test]
    fn average_window_updates() {
        let cfg = IdioConfig {
            control_interval: Duration::from_us(1),
            avg_window: 4,
            mlc_thr: 50,
            mlc_thr_mtps_milli: None,
        };
        let mut c = IdioController::new(cfg, 1);
        let mut wb = 0u64;
        for _ in 0..4 {
            wb += 100;
            c.control_tick(&[wb]);
        }
        assert_eq!(c.mlc_wb_avg(C0), 100);
        // With avg raised to 100, 140 WB/us is no longer "high".
        c.steer(SteeringPolicy::Idio, meta(false, true, AppClass::Class0));
        wb += 140;
        c.control_tick(&[wb]);
        assert_eq!(c.status(C0), MlcStatus::Mlc);
    }

    #[test]
    fn per_core_isolation() {
        let mut c = IdioController::new(IdioConfig::paper_default(), 2);
        let m1 = TlpMeta {
            dest_core: CoreId::new(1),
            app_class: AppClass::Class0,
            is_header: false,
            is_burst: true,
        };
        c.steer(SteeringPolicy::Idio, m1);
        assert_eq!(c.status(CoreId::new(1)), MlcStatus::Mlc);
        assert_eq!(c.status(C0), MlcStatus::Llc);
    }
}
