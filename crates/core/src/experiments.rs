//! Reproduction drivers for every table and figure of the paper's
//! evaluation (Sec. VII).
//!
//! Each figure is expressed *declaratively*: a `figN_spec` function builds
//! a [`FigureSpec`] — the list of simulation configurations (cells) behind
//! the figure plus a pure assembly function that turns the finished
//! [`crate::sweep::CellOutcome`]s into a printable [`FigureResult`]. The sweep
//! orchestrator in [`crate::sweep`] executes the cells, serially or on a
//! worker pool, with per-cell seeds derived from the cell labels so the
//! output is independent of scheduling. The legacy `figN` functions remain
//! as thin serial wrappers.
//!
//! Every function takes a [`Scale`]: [`Scale::full`] approximates the
//! paper's run lengths, [`Scale::quick`] shrinks them for CI and unit
//! tests while preserving the qualitative shapes.

use std::fmt;

use idio_cache::addr::CoreId;
use idio_cache::set::WayMask;
use idio_engine::stats::TimeSeries;
use idio_engine::time::{Duration, SimTime};
use idio_net::gen::{BurstSpec, TrafficPattern};
use idio_net::packet::Dscp;
use idio_stack::nf::NfKind;

use crate::config::{SystemConfig, WorkloadSpec};
use crate::policy::SteeringPolicy;
use crate::report::RunReport;
use crate::sweep::{FigureSpec, SweepCell, SweepOptions};

/// Run-length scaling for the experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of burst periods simulated (first is treated as warm-up
    /// where more than one is available).
    pub periods: u64,
    /// Burst period (paper: 10 ms).
    pub period: Duration,
    /// Horizon for steady-traffic experiments.
    pub steady_duration: Duration,
    /// Ring size for the main experiments (paper: 1024).
    pub ring: u32,
}

impl Scale {
    /// Paper-equivalent run lengths.
    pub fn full() -> Self {
        Scale {
            periods: 3,
            period: Duration::from_ms(10),
            steady_duration: Duration::from_ms(5),
            ring: 1024,
        }
    }

    /// Shrunk runs for tests and CI (same shapes, several times faster).
    ///
    /// The ring stays at 1024: the paper's central phenomenon requires the
    /// DMA ring (1024 × 2 KiB = 2 MiB) to exceed the 1 MiB MLC, so the ring
    /// cannot be scaled down without losing the effect. Time is shrunk
    /// instead.
    pub fn quick() -> Self {
        Scale {
            periods: 2,
            period: Duration::from_ms(2),
            steady_duration: Duration::from_ms(3),
            ring: 1024,
        }
    }

    fn bursty(&self, rate_gbps: f64, packet_len: u16) -> TrafficPattern {
        TrafficPattern::Bursty(BurstSpec::for_ring(
            self.ring,
            packet_len,
            rate_gbps,
            self.period,
        ))
    }

    fn burst_duration(&self) -> SimTime {
        SimTime::ZERO + self.period * self.periods
    }
}

/// One reproduced table/figure: a printable grid plus any raw series.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig9"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows (pre-formatted).
    pub rows: Vec<Vec<String>>,
    /// Named sampled series for timeline figures.
    pub series: Vec<(String, TimeSeries)>,
}

impl FigureResult {
    /// Creates an empty table with the given identity and columns.
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Self {
        FigureResult {
            id,
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Appends one pre-formatted row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

fn fmt_ratio(r: f64) -> String {
    if r.is_infinite() {
        "inf".into()
    } else {
        format!("{r:.3}")
    }
}

/// Builds the standard bursty-traffic configuration behind most figures.
fn bursty_cfg(
    scale: Scale,
    rate_gbps: f64,
    policy: SteeringPolicy,
    kind: NfKind,
    packet_len: u16,
    antagonist: bool,
    dscp: Dscp,
) -> SystemConfig {
    let traffic = scale.bursty(rate_gbps, packet_len);
    let mut cfg = SystemConfig::touchdrop_scenario(2, traffic);
    cfg.ring_size = scale.ring;
    cfg.duration = scale.burst_duration();
    cfg.drain_grace = scale.period;
    for w in &mut cfg.workloads {
        w.kind = kind;
        w.packet_len = packet_len;
        w.dscp = dscp;
    }
    cfg = cfg.with_policy(policy);
    if antagonist {
        cfg = cfg.with_antagonist();
    }
    cfg
}

/// Builds the steady-traffic configuration (Figs. 4/13, bloating, sweeps).
fn steady_cfg(
    scale: Scale,
    rate_gbps: f64,
    ring: u32,
    policy: SteeringPolicy,
    one_way: bool,
) -> SystemConfig {
    let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps });
    cfg.ring_size = ring;
    cfg.duration = SimTime::ZERO + scale.steady_duration;
    cfg.drain_grace = Duration::from_ms(1);
    cfg = cfg.with_policy(policy);
    if one_way {
        // CAT: confine core fills to a single non-DDIO LLC way (Fig. 4's
        // `*_1way` configurations).
        cfg.hierarchy.core_alloc_ways = Some(WayMask::range(2, 3));
    }
    cfg
}

/// Lines of RX data (payload only) delivered in a run — the normalisation
/// base for Fig. 4-style rates.
fn rx_data_lines(report: &RunReport, packet_len: u16) -> u64 {
    report.totals.rx_packets * u64::from(u32::from(packet_len).div_ceil(64))
}

// ---------------------------------------------------------------------------
// Table I / Table II
// ---------------------------------------------------------------------------

/// Table I as a (cell-less) figure spec.
pub fn table1_spec() -> FigureSpec {
    FigureSpec::new("table1", Vec::new(), |_| table1())
}

/// Table I: the simulated configuration, as actually instantiated.
pub fn table1() -> FigureResult {
    let cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 10.0 });
    let h = cfg.effective_hierarchy();
    let mut t = FigureResult::new(
        "table1",
        "Simulation configuration",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("core freq", "3 GHz".into()),
        (
            "L1D (size, assoc, lat)",
            format!(
                "{} KiB, {}, {} CC",
                h.l1d.size_bytes >> 10,
                h.l1d.ways,
                h.l1d.latency_cycles
            ),
        ),
        (
            "MLC (size, assoc, lat)",
            format!(
                "{} MiB, {}, {} CC",
                h.mlc.size_bytes >> 20,
                h.mlc.ways,
                h.mlc.latency_cycles
            ),
        ),
        (
            "LLC (size, assoc, lat)",
            format!(
                "{} MiB, {}, {} CC",
                h.llc.size_bytes >> 20,
                h.llc.ways,
                h.llc.latency_cycles
            ),
        ),
        ("DDIO ways", format!("{}", h.ddio_ways)),
        ("DRAM", "DDR4-3200, 2 ch".into()),
        ("network", "100 Gbps-class, 1514 B packets".into()),
        ("ring size", format!("{}", cfg.ring_size)),
        ("batch size", format!("{}", cfg.pmd.batch_size)),
        (
            "rxBurstTHR",
            format!("{} B / 1 us", cfg.classifier.rx_burst_thr_bytes),
        ),
        (
            "mlcTHR",
            format!("{} WB / 1 us (50 MTPS)", cfg.idio.mlc_thr),
        ),
        ("prefetch queue", format!("{}", cfg.prefetcher.queue_depth)),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.into(), v]);
    }
    t
}

/// Table II as a (cell-less) figure spec.
pub fn table2_spec() -> FigureSpec {
    FigureSpec::new("table2", Vec::new(), |_| table2())
}

/// Table II: the evaluated functions.
pub fn table2() -> FigureResult {
    let mut t = FigureResult::new(
        "table2",
        "Functions used for evaluation",
        &["function", "description"],
    );
    t.push_row(vec![
        "TouchDrop".into(),
        "receive packets, touch data, drop packets".into(),
    ]);
    t.push_row(vec![
        "L2Fwd".into(),
        "receive packets, forward based on Ethernet header".into(),
    ]);
    t.push_row(vec![
        "LLCAntagonist".into(),
        "allocate a buffer and randomly access elements".into(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Fig. 4 — MLC/DRAM leaks vs ring size and load (DDIO baseline)
// ---------------------------------------------------------------------------

/// Fig. 4 as a declarative sweep (11 cells).
pub fn fig4_spec(scale: Scale) -> FigureSpec {
    const NFS: usize = 4;
    // Per-NF steady rates; "high" matches the paper's 2 Gbps/NF.
    let loads = [("low", 0.1), ("med", 0.5), ("high", 2.0)];
    // Steady state needs several full ring recycles (the first pass is a
    // cold-start transient); scale the horizon with the ring size.
    let wraps: u64 = if scale.periods >= 3 { 4 } else { 3 };

    let mut cases: Vec<(String, u32, bool, &str, f64)> = Vec::new();
    for ring in [64u32, 1024, 2048] {
        for (lname, gbps) in loads {
            cases.push((format!("ring{ring}"), ring, false, lname, gbps));
        }
    }
    for ring in [1024u32, 2048] {
        cases.push((format!("ring{ring}_1way"), ring, true, "high", 2.0));
    }

    let mut cells = Vec::new();
    let mut meta: Vec<(String, &'static str, SimTime)> = Vec::new();
    for (name, ring, one_way, lname, gbps) in cases {
        let pkt_time = idio_engine::time::wire_time(1514, gbps);
        let packets_per_nf = (wraps * u64::from(ring)).max(1500);
        let duration = SimTime::ZERO + pkt_time * packets_per_nf;
        let mut cfg =
            SystemConfig::touchdrop_scenario(NFS, TrafficPattern::Steady { rate_gbps: gbps });
        cfg.ring_size = ring;
        cfg.duration = duration;
        cfg.drain_grace = Duration::from_ms(1);
        // Physical-server LLC, scaled to 4 NFs: 12288 sets x 11 ways x 64 B
        // = 8.25 MiB (the paper's 22 MiB hosts 10 NFs at the same ratio).
        cfg.hierarchy = idio_cache::config::HierarchyConfig {
            num_cores: NFS,
            llc: idio_cache::config::CacheGeometry::new(12288 * 11 * 64, 11, 24),
            mlc_overrides: vec![None; NFS],
            ..idio_cache::config::HierarchyConfig::paper_default(NFS)
        };
        if one_way {
            cfg.hierarchy.core_alloc_ways = Some(WayMask::range(2, 3));
        }
        cells.push(SweepCell::new(format!("fig4/{name}/{lname}"), cfg));
        meta.push((name, lname, duration));
    }
    FigureSpec::new("fig4", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig4",
            "MLC and DRAM leaks vs load level and ring size (DDIO, physical-server geometry)",
            &[
                "config",
                "load",
                "mlc_wb/rx",
                "mlc_inval/rx",
                "dram_wr_gbps",
                "dram_rd_gbps",
            ],
        );
        for ((name, lname, duration), o) in meta.into_iter().zip(outcomes) {
            let r = &o.report;
            let rx = rx_data_lines(r, 1514).max(1);
            let secs = duration.as_secs_f64();
            let dram_wr_gbps = r.totals.dram_wr as f64 * 64.0 * 8.0 / secs / 1e9;
            let dram_rd_gbps = r.totals.dram_rd as f64 * 64.0 * 8.0 / secs / 1e9;
            t.push_row(vec![
                name,
                lname.into(),
                fmt_ratio(ratio(r.totals.mlc_wb, rx)),
                fmt_ratio(ratio(r.totals.mlc_inval_by_dma, rx)),
                format!("{dram_wr_gbps:.2}"),
                format!("{dram_rd_gbps:.2}"),
            ]);
        }
        t
    })
}

/// Fig. 4: MLC writeback and MLC invalidation rates (normalised to the RX
/// data rate) and DRAM write bandwidth, across ring sizes and load levels,
/// under baseline DDIO — including the CAT `*_1way` configurations.
///
/// The paper measures this on the *physical* Xeon Gold 6242 (22 MiB LLC,
/// 10 TouchDrop instances), whose LLC+MLC capacity comfortably exceeds the
/// aggregate ring footprint. We reproduce the capacity *ratio* with 4
/// instances on a proportionally sized (8.25 MiB, 11-way) LLC. Each run
/// lasts long enough to deliver a fixed per-core packet count, so the
/// normalised rates are comparable across loads.
///
/// Paper shape: ring 64 ⇒ low normalised MLC WB and high invalidations;
/// ring ≥ 1024 ⇒ MLC WB around/above the RX rate at *every* load; DRAM
/// write bandwidth near zero except in the `_1way` CAT configurations.
pub fn fig4(scale: Scale) -> FigureResult {
    fig4_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 5 — writeback timeline under bursty traffic (DDIO baseline)
// ---------------------------------------------------------------------------

/// Fig. 5 as a declarative sweep (1 cell).
pub fn fig5_spec(scale: Scale) -> FigureSpec {
    let cells = vec![SweepCell::new(
        "fig5/DDIO/100G",
        bursty_cfg(
            scale,
            100.0,
            SteeringPolicy::Ddio,
            NfKind::TouchDrop,
            1514,
            false,
            Dscp::BEST_EFFORT,
        ),
    )];
    FigureSpec::new("fig5", cells, |outcomes| {
        let r = &outcomes[0].report;
        let mut t = FigureResult::new(
            "fig5",
            "MLC and LLC writebacks, bursty traffic, DDIO",
            &["metric", "peak_mtps", "mean_mtps", "total_txn"],
        );
        for (name, series, total) in [
            ("mlc_wb", &r.timelines.mlc_wb, r.totals.mlc_wb),
            ("llc_wb", &r.timelines.llc_wb, r.totals.llc_wb),
            ("dma_wr", &r.timelines.dma_wr, r.totals.pcie_wr),
        ] {
            t.push_row(vec![
                name.into(),
                format!("{:.1}", series.max_value()),
                format!("{:.2}", series.mean()),
                format!("{total}"),
            ]);
        }
        t.series = vec![
            ("mlc_wb".into(), r.timelines.mlc_wb.clone()),
            ("llc_wb".into(), r.timelines.llc_wb.clone()),
            ("dma_wr".into(), r.timelines.dma_wr.clone()),
        ];
        t
    })
}

/// Fig. 5: the MLC/LLC writeback timeline while processing bursty traffic
/// under DDIO, exposing the DMA phase (LLC-writeback spike) and execution
/// phase (MLC-writeback wave).
pub fn fig5(scale: Scale) -> FigureResult {
    fig5_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 9 — policy comparison timelines at 100 and 25 Gbps
// ---------------------------------------------------------------------------

/// Fig. 9 as a declarative sweep (2 rates × 6 policies).
pub fn fig9_spec(scale: Scale) -> FigureSpec {
    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for rate in [100.0f64, 25.0] {
        for policy in SteeringPolicy::ALL {
            cells.push(SweepCell::new(
                format!("fig9/{rate:.0}G/{}", policy.label()),
                bursty_cfg(
                    scale,
                    rate,
                    policy,
                    NfKind::TouchDrop,
                    1514,
                    false,
                    Dscp::BEST_EFFORT,
                ),
            ));
            meta.push((rate, policy));
        }
    }
    FigureSpec::new("fig9", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig9",
            "Policy comparison on one burst (TouchDrop)",
            &[
                "rate",
                "policy",
                "mlc_wb",
                "llc_wb",
                "peak_mlc_wb_mtps",
                "prefetches",
                "exe_ms",
            ],
        );
        for ((rate, policy), o) in meta.into_iter().zip(outcomes) {
            let r = &o.report;
            let exe = r
                .mean_exe_time(1)
                .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into());
            t.push_row(vec![
                format!("{rate:.0}G"),
                policy.label().into(),
                format!("{}", r.totals.mlc_wb),
                format!("{}", r.totals.llc_wb),
                format!("{:.1}", r.timelines.mlc_wb.max_value()),
                format!("{}", r.totals.prefetch_fills),
                exe,
            ]);
            t.series.push((
                format!("{}_{}_mlc_wb", rate as u32, policy.label()),
                r.timelines.mlc_wb.clone(),
            ));
            t.series.push((
                format!("{}_{}_llc_wb", rate as u32, policy.label()),
                r.timelines.llc_wb.clone(),
            ));
        }
        t
    })
}

/// Fig. 9: MLC/LLC writeback behaviour of DDIO, Invalidate, Prefetch,
/// Static and IDIO while processing one burst, at 100 and 25 Gbps burst
/// rates.
///
/// Paper shape: self-invalidation removes most writebacks; prefetching
/// shortens the execution phase; Static ≈ IDIO at 25 Gbps while IDIO
/// regulates MLC pressure at 100 Gbps.
pub fn fig9(scale: Scale) -> FigureResult {
    fig9_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 10 — normalised transactions and exe time
// ---------------------------------------------------------------------------

/// Fig. 10 as a declarative sweep (per scenario × rate: one DDIO base cell
/// plus the compared policies).
pub fn fig10_spec(scale: Scale) -> FigureSpec {
    let mut cells = Vec::new();
    // (scenario, rate, policies) — each entry consumes 1 + policies.len()
    // outcomes: the DDIO base first, then the compared policies.
    let mut plan: Vec<(&'static str, f64, Vec<SteeringPolicy>)> = Vec::new();
    for (scenario, antagonist) in [("solo", false), ("corun", true)] {
        for rate in [100.0f64, 25.0, 10.0] {
            let policies: Vec<SteeringPolicy> = if antagonist {
                vec![SteeringPolicy::Idio]
            } else {
                vec![SteeringPolicy::StaticIdio, SteeringPolicy::Idio]
            };
            cells.push(SweepCell::new(
                format!("fig10/{scenario}/{rate:.0}G/DDIO"),
                bursty_cfg(
                    scale,
                    rate,
                    SteeringPolicy::Ddio,
                    NfKind::TouchDrop,
                    1514,
                    antagonist,
                    Dscp::BEST_EFFORT,
                ),
            ));
            for &policy in &policies {
                cells.push(SweepCell::new(
                    format!("fig10/{scenario}/{rate:.0}G/{}", policy.label()),
                    bursty_cfg(
                        scale,
                        rate,
                        policy,
                        NfKind::TouchDrop,
                        1514,
                        antagonist,
                        Dscp::BEST_EFFORT,
                    ),
                ));
            }
            plan.push((scenario, rate, policies));
        }
    }
    FigureSpec::new("fig10", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig10",
            "Normalised transactions and exe time (vs DDIO)",
            &[
                "scenario",
                "rate",
                "policy",
                "mlc_wb",
                "llc_wb",
                "dram_rd",
                "dram_wr",
                "exe_time",
                "antag_cpa",
            ],
        );
        let mut cursor = 0usize;
        for (scenario, rate, policies) in plan {
            let base = &outcomes[cursor].report;
            cursor += 1;
            let base_exe = base.mean_exe_time(1);
            for policy in policies {
                let r = &outcomes[cursor].report;
                cursor += 1;
                let exe = match (r.mean_exe_time(1), base_exe) {
                    (Some(a), Some(b)) if b > Duration::ZERO => {
                        format!("{:.3}", a.as_ps() as f64 / b.as_ps() as f64)
                    }
                    _ => "-".into(),
                };
                let cpa = match (r.antagonist_cpa, base.antagonist_cpa) {
                    (Some(a), Some(b)) if b > 0.0 => format!("{:.3}", a / b),
                    _ => "-".into(),
                };
                t.push_row(vec![
                    scenario.into(),
                    format!("{rate:.0}G"),
                    policy.label().into(),
                    // NF-core writebacks only: the antagonist's own MLC
                    // churn is identical across policies and would mask
                    // the effect in co-run rows.
                    fmt_ratio(ratio(r.nf_mlc_wb(2), base.nf_mlc_wb(2))),
                    fmt_ratio(ratio(r.totals.llc_wb, base.totals.llc_wb)),
                    fmt_ratio(ratio(r.totals.dram_rd, base.totals.dram_rd)),
                    fmt_ratio(ratio(r.totals.dram_wr, base.totals.dram_wr)),
                    exe,
                    cpa,
                ]);
            }
        }
        t
    })
}

/// Fig. 10: MLC WB, LLC WB, DRAM read/write transactions and burst
/// processing time of Static and IDIO normalised to DDIO, at 100/25/10
/// Gbps, plus the TouchDrop+LLCAntagonist co-run.
///
/// Paper shape: 60–85% MLC WB reduction, near-elimination of DRAM writes,
/// exe time ~0.78–0.82 at 100/25 Gbps and ~1.0 at 10 Gbps.
pub fn fig10(scale: Scale) -> FigureResult {
    fig10_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 11 — L2Fwd (shallow NF) timelines
// ---------------------------------------------------------------------------

/// Fig. 11 as a declarative sweep (2 cells).
pub fn fig11_spec(scale: Scale) -> FigureSpec {
    let policies = [SteeringPolicy::Ddio, SteeringPolicy::Idio];
    let cells = policies
        .iter()
        .map(|&policy| {
            SweepCell::new(
                format!("fig11/{}", policy.label()),
                bursty_cfg(
                    scale,
                    25.0,
                    policy,
                    NfKind::L2Fwd,
                    1024,
                    false,
                    Dscp::BEST_EFFORT,
                ),
            )
        })
        .collect();
    FigureSpec::new("fig11", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig11",
            "L2Fwd, 1024-byte packets",
            &[
                "policy",
                "mlc_wb",
                "llc_wb",
                "prefetches",
                "tx_pkts",
                "p99_us",
            ],
        );
        for (policy, o) in policies.into_iter().zip(outcomes) {
            let r = &o.report;
            let p99 = r
                .p99()
                .map(|d| format!("{:.1}", d.as_us_f64()))
                .unwrap_or_else(|| "-".into());
            t.push_row(vec![
                policy.label().into(),
                format!("{}", r.totals.mlc_wb),
                format!("{}", r.totals.llc_wb),
                format!("{}", r.totals.prefetch_fills),
                format!("{}", r.totals.completed_packets),
                p99,
            ]);
            t.series.push((
                format!("{}_mlc_wb", policy.label()),
                r.timelines.mlc_wb.clone(),
            ));
            t.series.push((
                format!("{}_llc_wb", policy.label()),
                r.timelines.llc_wb.clone(),
            ));
        }
        t
    })
}

/// Fig. 11: L2Fwd with 1024-byte packets under DDIO vs IDIO.
///
/// Paper shape: DDIO shows almost no MLC activity but a growing LLC
/// writeback rate; IDIO admits buffers to the MLC and invalidates after
/// forwarding, strongly reducing LLC writebacks.
pub fn fig11(scale: Scale) -> FigureResult {
    fig11_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Sec. VII — selective direct DRAM access
// ---------------------------------------------------------------------------

/// The direct-DRAM experiment as a declarative sweep (2 cells).
pub fn direct_dram_spec(scale: Scale) -> FigureSpec {
    let policies = [SteeringPolicy::Ddio, SteeringPolicy::Idio];
    let cells = policies
        .iter()
        .map(|&policy| {
            SweepCell::new(
                format!("direct_dram/{}", policy.label()),
                bursty_cfg(
                    scale,
                    25.0,
                    policy,
                    NfKind::L2FwdPayloadDrop,
                    1514,
                    false,
                    Dscp::CLASS1_DEFAULT,
                ),
            )
        })
        .collect();
    FigureSpec::new("direct_dram", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "direct_dram",
            "Selective direct DRAM access (L2FwdPayloadDrop, class 1)",
            &[
                "policy",
                "dma_direct",
                "dram_wr/rx_payload",
                "llc_wb",
                "ddio_allocs",
            ],
        );
        for (policy, o) in policies.into_iter().zip(outcomes) {
            let r = &o.report;
            let payload_lines = r.totals.rx_packets * 23; // 1514 B = 1 header + 23 payload lines
            t.push_row(vec![
                policy.label().into(),
                format!("{}", r.hierarchy.shared.dma_direct_dram.get()),
                fmt_ratio(ratio(r.totals.dram_wr, payload_lines.max(1))),
                format!("{}", r.totals.llc_wb),
                format!("{}", r.hierarchy.shared.ddio_allocs.get()),
            ]);
        }
        t
    })
}

/// The direct-DRAM experiment of Sec. VII: an L2Fwd variant that drops the
/// payload after header processing, with senders marking the flow
/// application class 1. Under IDIO the payload bypasses the LLC entirely:
/// DRAM write bandwidth tracks the RX payload bandwidth and the DDIO ways
/// stop thrashing.
pub fn direct_dram(scale: Scale) -> FigureResult {
    direct_dram_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 12 — tail latency
// ---------------------------------------------------------------------------

/// Fig. 12 as a declarative sweep (per rate: DDIO-solo base, IDIO-solo,
/// DDIO-corun, IDIO-corun).
pub fn fig12_spec(scale: Scale) -> FigureSpec {
    let rates = [100.0f64, 25.0, 10.0];
    let variants: [(&'static str, bool, SteeringPolicy); 4] = [
        ("solo", false, SteeringPolicy::Ddio),
        ("solo", false, SteeringPolicy::Idio),
        ("corun", true, SteeringPolicy::Ddio),
        ("corun", true, SteeringPolicy::Idio),
    ];
    let mut cells = Vec::new();
    for rate in rates {
        for (scenario, antagonist, policy) in variants {
            cells.push(SweepCell::new(
                format!("fig12/{rate:.0}G/{scenario}/{}", policy.label()),
                bursty_cfg(
                    scale,
                    rate,
                    policy,
                    NfKind::TouchDrop,
                    1514,
                    antagonist,
                    Dscp::BEST_EFFORT,
                ),
            ));
        }
    }
    FigureSpec::new("fig12", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig12",
            "p50/p99 latency normalised to DDIO solo",
            &["rate", "scenario", "policy", "p50", "p99", "p99_us"],
        );
        for (i, rate) in rates.into_iter().enumerate() {
            let chunk = &outcomes[i * variants.len()..(i + 1) * variants.len()];
            let base = &chunk[0].report; // DDIO solo
            let (bp50, bp99) = (
                base.p50().unwrap_or(Duration::from_ns(1)),
                base.p99().unwrap_or(Duration::from_ns(1)),
            );
            for ((scenario, _, policy), o) in variants.into_iter().zip(chunk) {
                let r = &o.report;
                let p50 = r.p50().unwrap_or(Duration::ZERO);
                let p99 = r.p99().unwrap_or(Duration::ZERO);
                t.push_row(vec![
                    format!("{rate:.0}G"),
                    scenario.into(),
                    policy.label().into(),
                    format!("{:.3}", p50.as_ps() as f64 / bp50.as_ps() as f64),
                    format!("{:.3}", p99.as_ps() as f64 / bp99.as_ps() as f64),
                    format!("{:.1}", p99.as_us_f64()),
                ]);
            }
        }
        t
    })
}

/// Fig. 12: 50th and 99th percentile TouchDrop latency, solo and co-run
/// with LLCAntagonist, normalised to DDIO solo at each rate.
///
/// Paper shape: IDIO's p99 reduction is largest at 25 Gbps (~30%), smaller
/// at 100 and 10 Gbps; co-running inflates DDIO's tail more than IDIO's.
pub fn fig12(scale: Scale) -> FigureResult {
    fig12_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 13 — steady traffic
// ---------------------------------------------------------------------------

/// Fig. 13 as a declarative sweep (2 cells).
pub fn fig13_spec(scale: Scale) -> FigureSpec {
    let policies = [SteeringPolicy::Ddio, SteeringPolicy::Idio];
    let cells = policies
        .iter()
        .map(|&policy| {
            SweepCell::new(
                format!("fig13/{}", policy.label()),
                steady_cfg(scale, 10.0, scale.ring, policy, false),
            )
        })
        .collect();
    FigureSpec::new("fig13", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig13",
            "Steady 10 Gbps/core TouchDrop",
            &[
                "policy",
                "mlc_wb_mtps",
                "llc_wb_mtps",
                "self_inval",
                "completed",
            ],
        );
        for (policy, o) in policies.into_iter().zip(outcomes) {
            let r = &o.report;
            t.push_row(vec![
                policy.label().into(),
                format!("{:.2}", r.timelines.mlc_wb.mean()),
                format!("{:.2}", r.timelines.llc_wb.mean()),
                format!("{}", r.totals.self_inval),
                format!("{}", r.totals.completed_packets),
            ]);
            t.series.push((
                format!("{}_mlc_wb", policy.label()),
                r.timelines.mlc_wb.clone(),
            ));
            t.series.push((
                format!("{}_llc_wb", policy.label()),
                r.timelines.llc_wb.clone(),
            ));
        }
        t
    })
}

/// Fig. 13: two TouchDrop instances at a steady 10 Gbps each, DDIO vs
/// IDIO.
///
/// Paper shape: DDIO shows a constant MLC writeback rate matching the
/// packet consumption rate; IDIO's self-invalidation removes most of it.
pub fn fig13(scale: Scale) -> FigureResult {
    fig13_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Fig. 14 — mlcTHR sensitivity
// ---------------------------------------------------------------------------

/// Fig. 14 as a declarative sweep (DDIO base + 5 threshold cells).
pub fn fig14_spec(scale: Scale) -> FigureSpec {
    let thresholds = [10.0f64, 25.0, 50.0, 75.0, 100.0];
    let mut cells = vec![SweepCell::new(
        "fig14/DDIO-base",
        bursty_cfg(
            scale,
            100.0,
            SteeringPolicy::Ddio,
            NfKind::TouchDrop,
            1514,
            false,
            Dscp::BEST_EFFORT,
        ),
    )];
    for thr in thresholds {
        let mut cfg = bursty_cfg(
            scale,
            100.0,
            SteeringPolicy::Idio,
            NfKind::TouchDrop,
            1514,
            false,
            Dscp::BEST_EFFORT,
        );
        cfg.idio = cfg.idio.with_mlc_thr_mtps(thr);
        cells.push(SweepCell::new(format!("fig14/thr{thr:.0}"), cfg));
    }
    FigureSpec::new("fig14", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "fig14",
            "Sensitivity to mlcTHR at 100 Gbps (normalised to DDIO)",
            &["mlc_thr_mtps", "mlc_wb", "llc_wb", "dram_wr", "exe_time"],
        );
        let base = &outcomes[0].report;
        let base_exe = base.mean_exe_time(1);
        for (thr, o) in thresholds.into_iter().zip(&outcomes[1..]) {
            let r = &o.report;
            let exe = match (r.mean_exe_time(1), base_exe) {
                (Some(a), Some(b)) if b > Duration::ZERO => {
                    format!("{:.3}", a.as_ps() as f64 / b.as_ps() as f64)
                }
                _ => "-".into(),
            };
            t.push_row(vec![
                format!("{thr:.0}"),
                fmt_ratio(ratio(r.totals.mlc_wb, base.totals.mlc_wb)),
                fmt_ratio(ratio(r.totals.llc_wb, base.totals.llc_wb)),
                fmt_ratio(ratio(r.totals.dram_wr, base.totals.dram_wr)),
                exe,
            ]);
        }
        t
    })
}

/// Fig. 14: the Fig. 10 metrics at 100 Gbps while sweeping `mlcTHR` from
/// 10 to 100 MTPS.
///
/// Paper shape: IDIO's improvements are consistent across the sweep — the
/// self-invalidation/prefetch synergy makes the threshold uncritical.
pub fn fig14(scale: Scale) -> FigureResult {
    fig14_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Sec. VII future work — CPU-paced prefetching
// ---------------------------------------------------------------------------

/// The future-work comparison as a declarative sweep (2 rates × 2
/// prefetcher variants).
pub fn future_work_spec(scale: Scale) -> FigureSpec {
    use crate::prefetcher::PrefetchPacing;
    let variants = [
        ("queued", PrefetchPacing::Queued),
        ("cpu-paced", PrefetchPacing::CpuPaced { window_packets: 64 }),
    ];
    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for rate in [100.0f64, 25.0] {
        for (name, pacing) in variants {
            let mut cfg = bursty_cfg(
                scale,
                rate,
                SteeringPolicy::Idio,
                NfKind::TouchDrop,
                1514,
                false,
                Dscp::BEST_EFFORT,
            );
            cfg.prefetcher.pacing = pacing;
            if matches!(pacing, PrefetchPacing::CpuPaced { .. }) {
                // The paced queue never drops; give it room for a full
                // window of parked-then-released packets.
                cfg.prefetcher.queue_depth = 64 * 32;
            }
            cells.push(SweepCell::new(
                format!("future-work/{rate:.0}G/{name}"),
                cfg,
            ));
            meta.push((rate, name));
        }
    }
    FigureSpec::new("future-work", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "future-work",
            "Queued vs CPU-paced prefetching (IDIO)",
            &[
                "rate",
                "prefetcher",
                "mlc_wb",
                "llc_wb",
                "prefetches",
                "exe_ms",
            ],
        );
        for ((rate, name), o) in meta.into_iter().zip(outcomes) {
            let r = &o.report;
            let exe = r
                .mean_exe_time(1)
                .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into());
            t.push_row(vec![
                format!("{rate:.0}G"),
                name.into(),
                format!("{}", r.totals.mlc_wb),
                format!("{}", r.totals.llc_wb),
                format!("{}", r.totals.prefetch_fills),
                exe,
            ]);
        }
        t
    })
}

/// The paper's future-work suggestion (Sec. VII): "a more sophisticated
/// prefetcher that follows the CPU pointer in the ring buffer to regulate
/// the MLC prefetching rate will likely provide more benefit". Compares
/// the paper's drop-on-full queued prefetcher against the CPU-paced
/// variant at 100 and 25 Gbps.
///
/// Expected shape: identical at 25 Gbps (the queue keeps up anyway); at
/// 100 Gbps the paced prefetcher avoids both the hint drops and the
/// MLC flood/FSM-disable cycle, yielding shorter burst processing.
pub fn future_work(scale: Scale) -> FigureResult {
    future_work_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// DMA bloating occupancy (Sec. III observation 3, measured directly)
// ---------------------------------------------------------------------------

/// The bloating measurement as a declarative sweep (2 cells).
pub fn bloating_spec(scale: Scale) -> FigureSpec {
    let policies = [SteeringPolicy::Ddio, SteeringPolicy::Idio];
    let cells = policies
        .iter()
        .map(|&policy| {
            SweepCell::new(
                format!("bloating/{}", policy.label()),
                steady_cfg(scale, 10.0, scale.ring, policy, false),
            )
        })
        .collect();
    FigureSpec::new("bloating", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "bloating",
            "DMA share of LLC capacity (steady 10 Gbps/core)",
            &["policy", "mean_share", "max_share", "final_share"],
        );
        for (policy, o) in policies.into_iter().zip(outcomes) {
            let series = &o.report.timelines.dma_llc_share;
            let last = series.samples().last().map(|s| s.value).unwrap_or(0.0);
            t.push_row(vec![
                policy.label().into(),
                format!("{:.3}", series.mean()),
                format!("{:.3}", series.max_value()),
                format!("{last:.3}"),
            ]);
            t.series
                .push((format!("{}_dma_share", policy.label()), series.clone()));
        }
        t
    })
}

/// Directly measures *DMA bloating*: the share of LLC lines occupied by
/// DMA buffer regions over time, under DDIO vs IDIO, for steady traffic
/// that recycles a 1024-entry ring.
///
/// Expected shape: under DDIO the dead consumed buffers spread across the
/// non-DDIO ways until I/O data dominates the LLC; IDIO's
/// self-invalidation keeps the share near the DDIO-way footprint.
pub fn bloating(scale: Scale) -> FigureResult {
    bloating_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Buffer recycling modes (Sec. II-B)
// ---------------------------------------------------------------------------

/// The recycling-mode comparison as a declarative sweep (2 stacks × 2
/// policies).
pub fn copy_mode_spec(scale: Scale) -> FigureSpec {
    let stacks = [
        ("run-to-completion", NfKind::TouchDrop),
        ("copy", NfKind::TouchDropCopy),
    ];
    let policies = [SteeringPolicy::Ddio, SteeringPolicy::Idio];
    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for (name, kind) in stacks {
        for policy in policies {
            cells.push(SweepCell::new(
                format!("copy-mode/{name}/{}", policy.label()),
                bursty_cfg(scale, 25.0, policy, kind, 1514, false, Dscp::BEST_EFFORT),
            ));
            meta.push((name, policy));
        }
    }
    FigureSpec::new("copy-mode", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "copy-mode",
            "Run-to-completion vs copy-mode recycling",
            &[
                "stack",
                "policy",
                "mlc_wb",
                "llc_wb",
                "self_inval",
                "exe_ms",
            ],
        );
        for ((name, policy), o) in meta.into_iter().zip(outcomes) {
            let r = &o.report;
            let exe = r
                .mean_exe_time(1)
                .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into());
            t.push_row(vec![
                name.into(),
                policy.label().into(),
                format!("{}", r.totals.mlc_wb),
                format!("{}", r.totals.llc_wb),
                format!("{}", r.totals.self_inval),
                exe,
            ]);
        }
        t
    })
}

/// Compares the Sec. II-B buffer-recycling modes: run-to-completion
/// (TouchDrop) vs copy-mode (TouchDropCopy, how the Linux stack works),
/// under DDIO and IDIO.
///
/// Expected shape: copy-mode roughly doubles the MLC writeback stream
/// under DDIO (dead DMA lines *and* application copies are evicted), and
/// IDIO removes the DMA-buffer share of it while the application copies —
/// live data — still write back.
pub fn copy_mode(scale: Scale) -> FigureResult {
    copy_mode_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Prior-work baseline comparison (IAT, Yuan et al. ISCA'21)
// ---------------------------------------------------------------------------

/// The baseline comparison as a declarative sweep (2 rates × 3 policies).
pub fn baselines_spec(scale: Scale) -> FigureSpec {
    let policies = [
        SteeringPolicy::Ddio,
        SteeringPolicy::IatDynamic,
        SteeringPolicy::Idio,
    ];
    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for rate in [100.0f64, 25.0] {
        for policy in policies {
            cells.push(SweepCell::new(
                format!("baselines/{rate:.0}G/{}", policy.label()),
                bursty_cfg(
                    scale,
                    rate,
                    policy,
                    NfKind::TouchDrop,
                    1514,
                    false,
                    Dscp::BEST_EFFORT,
                ),
            ));
            meta.push((rate, policy));
        }
    }
    FigureSpec::new("baselines", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "baselines",
            "DDIO vs IAT-dynamic vs IDIO (TouchDrop)",
            &["rate", "policy", "mlc_wb", "llc_wb", "dram_wr", "exe_ms"],
        );
        for ((rate, policy), o) in meta.into_iter().zip(outcomes) {
            let r = &o.report;
            let exe = r
                .mean_exe_time(1)
                .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into());
            t.push_row(vec![
                format!("{rate:.0}G"),
                policy.label().into(),
                format!("{}", r.totals.mlc_wb),
                format!("{}", r.totals.llc_wb),
                format!("{}", r.totals.dram_wr),
                exe,
            ]);
        }
        t
    })
}

/// Compares baseline DDIO, the IAT-style dynamic-DDIO-way baseline, and
/// full IDIO on TouchDrop bursts.
///
/// Expected shape (matching the paper's related-work positioning): IAT
/// reduces the DMA leak by growing the I/O partition, but — lacking
/// self-invalidation and MLC steering — it cannot remove the MLC
/// writeback stream or shorten execution the way IDIO does.
pub fn baselines(scale: Scale) -> FigureResult {
    baselines_spec(scale).run_serial()
}

// ---------------------------------------------------------------------------
// Sweeps (ablations extending the paper's Fig. 4 analysis)
// ---------------------------------------------------------------------------

/// The ring-depth sweep as a declarative sweep (5 rings × 2 policies).
pub fn ring_sweep_spec(scale: Scale) -> FigureSpec {
    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for ring in [64u32, 256, 512, 1024, 2048] {
        for policy in [SteeringPolicy::Ddio, SteeringPolicy::Idio] {
            cells.push(SweepCell::new(
                format!("ring-sweep/ring{ring}/{}", policy.label()),
                steady_cfg(scale, 10.0, ring, policy, false),
            ));
            meta.push((ring, policy));
        }
    }
    FigureSpec::new("ring-sweep", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "ring-sweep",
            "Ring-depth sweep at steady 10 Gbps/core",
            &["ring", "policy", "mlc_wb/rx", "inval/rx", "self_inval/rx"],
        );
        for ((ring, policy), o) in meta.into_iter().zip(outcomes) {
            let r = &o.report;
            let rx = rx_data_lines(r, 1514).max(1);
            t.push_row(vec![
                format!("{ring}"),
                policy.label().into(),
                fmt_ratio(ratio(r.totals.mlc_wb, rx)),
                fmt_ratio(ratio(r.totals.mlc_inval_by_dma, rx)),
                fmt_ratio(ratio(r.totals.self_inval, rx)),
            ]);
        }
        t
    })
}

/// Ring-size sweep: normalised MLC writebacks and invalidations for DDIO
/// *and* IDIO across ring depths — extends Fig. 4 (which only measures
/// DDIO) with the proposed design.
///
/// Expected shape: DDIO transitions from invalidation-dominated (ring ≤
/// MLC capacity) to writeback-dominated (ring > MLC); IDIO turns the
/// writebacks back into (self-)invalidations at every depth.
pub fn ring_sweep(scale: Scale) -> FigureResult {
    ring_sweep_spec(scale).run_serial()
}

/// The packet-size sweep as a declarative sweep (per size: DDIO base +
/// IDIO).
pub fn packet_sweep_spec(scale: Scale) -> FigureSpec {
    let lens = [64u16, 256, 1024, 1514];
    let policies = [SteeringPolicy::Ddio, SteeringPolicy::Idio];
    let mut cells = Vec::new();
    for len in lens {
        for policy in policies {
            cells.push(SweepCell::new(
                format!("packet-sweep/{len}B/{}", policy.label()),
                bursty_cfg(
                    scale,
                    25.0,
                    policy,
                    NfKind::TouchDrop,
                    len,
                    false,
                    Dscp::BEST_EFFORT,
                ),
            ));
        }
    }
    FigureSpec::new("packet-sweep", cells, move |outcomes| {
        let mut t = FigureResult::new(
            "packet-sweep",
            "Packet-size sweep, 25 Gbps bursts",
            &["bytes", "policy", "mlc_wb", "llc_wb", "exe_ratio"],
        );
        for (i, len) in lens.into_iter().enumerate() {
            let chunk = &outcomes[i * policies.len()..(i + 1) * policies.len()];
            let base_exe = chunk[0].report.mean_exe_time(1); // DDIO
            for (policy, o) in policies.into_iter().zip(chunk) {
                let r = &o.report;
                let exe = match (r.mean_exe_time(1), base_exe) {
                    (Some(a), Some(b)) if b > Duration::ZERO => {
                        format!("{:.3}", a.as_ps() as f64 / b.as_ps() as f64)
                    }
                    _ => "-".into(),
                };
                t.push_row(vec![
                    format!("{len}"),
                    policy.label().into(),
                    format!("{}", r.totals.mlc_wb),
                    format!("{}", r.totals.llc_wb),
                    exe,
                ]);
            }
        }
        t
    })
}

/// Packet-size sweep at a fixed 25 Gbps burst rate: small frames are
/// header-dominated (IDIO's always-on header steering covers them);
/// large frames exercise payload steering and invalidation.
pub fn packet_sweep(scale: Scale) -> FigureResult {
    packet_sweep_spec(scale).run_serial()
}

/// Declares every experiment at the given scale, in paper order.
pub fn all_specs(scale: Scale) -> Vec<FigureSpec> {
    vec![
        table1_spec(),
        table2_spec(),
        fig4_spec(scale),
        fig5_spec(scale),
        fig9_spec(scale),
        fig10_spec(scale),
        fig11_spec(scale),
        direct_dram_spec(scale),
        fig12_spec(scale),
        fig13_spec(scale),
        fig14_spec(scale),
        future_work_spec(scale),
        bloating_spec(scale),
        copy_mode_spec(scale),
        baselines_spec(scale),
        ring_sweep_spec(scale),
        packet_sweep_spec(scale),
    ]
}

/// Runs every experiment at the given scale, in paper order (serially).
pub fn all(scale: Scale) -> Vec<FigureResult> {
    crate::sweep::run_figures(all_specs(scale), &SweepOptions::serial()).0
}

/// Convenience used by workload specs in ad-hoc experiment code.
pub fn workload(core: u16, kind: NfKind, traffic: TrafficPattern, len: u16) -> WorkloadSpec {
    WorkloadSpec {
        core: CoreId::new(core),
        kind,
        traffic,
        packet_len: len,
        dscp: Dscp::BEST_EFFORT,
        pool: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_is_aligned() {
        let t = table2();
        let s = format!("{t}");
        assert!(s.contains("TouchDrop"));
        assert!(s.contains("LLCAntagonist"));
    }

    #[test]
    fn table1_reflects_config() {
        let t = table1();
        let s = format!("{t}");
        assert!(s.contains("3 MiB"));
        assert!(s.contains("DDIO ways"));
    }

    #[test]
    fn fig5_quick_smoke_has_two_phases() {
        let f = fig5(Scale::quick());
        assert_eq!(f.rows.len(), 3);
        // The timeline series are populated for plotting.
        assert!(f.series.iter().any(|(n, s)| n == "llc_wb" && !s.is_empty()));
        // The DMA-phase LLC-writeback spike exceeds the execution-phase
        // MLC-writeback peak under DDIO at 100 Gbps.
        let peak = |name: &str| {
            f.series
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.max_value())
                .unwrap()
        };
        assert!(peak("llc_wb") > peak("mlc_wb"));
    }

    #[test]
    fn direct_dram_quick_smoke_ratio_is_one() {
        let f = direct_dram(Scale::quick());
        // Row order: DDIO then IDIO; column 2 is dram_wr/rx_payload.
        let idio = &f.rows[1];
        assert_eq!(idio[0], "IDIO");
        assert_eq!(idio[2], "1.000");
        assert_eq!(idio[3], "0", "zero LLC writebacks under direct DRAM");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(0, 0), 1.0);
        assert!(ratio(5, 0).is_infinite());
        assert_eq!(fmt_ratio(ratio(1, 2)), "0.500");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
    }

    #[test]
    fn specs_declare_unique_labels_across_the_suite() {
        let mut labels = Vec::new();
        for spec in all_specs(Scale::quick()) {
            for cell in &spec.cells {
                labels.push(cell.label.clone());
            }
        }
        let total = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), total, "duplicate cell label across figures");
        assert!(total >= 50, "the suite declares a substantial cell pool");
    }
}
