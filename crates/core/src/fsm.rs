//! The per-core prefetch-gating FSM (Fig. 8).
//!
//! A 2-bit saturating counter decides whether inbound payload DMA for a
//! core is steered to its MLC. By default the counter sits at `0b11`
//! (prefetching disabled, *status = LLC*). A burst-arrival notification
//! resets it to `0b00` (prefetching enabled, *status = MLC*). Every control
//! interval the counter is incremented under high MLC-writeback pressure
//! and decremented otherwise, saturating at both ends; once it reaches
//! `0b11` it stays there until the next burst (the disabled state is the
//! default, so only a new burst re-enables prefetching).

/// Destination the FSM selects for payload DMA (the 1-bit *status*
/// register of Alg. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MlcStatus {
    /// status = 0: leave payload in the LLC.
    Llc,
    /// status = 1: steer payload toward the core's MLC.
    Mlc,
}

/// The 2-bit saturating FSM.
///
/// # Examples
///
/// ```
/// use idio_core::fsm::{MlcStatus, PrefetchFsm};
///
/// let mut fsm = PrefetchFsm::new();
/// assert_eq!(fsm.status(), MlcStatus::Llc); // default: disabled
/// fsm.reset_on_burst();
/// assert_eq!(fsm.status(), MlcStatus::Mlc);
/// // Three consecutive high-pressure intervals disable it again.
/// fsm.update(true);
/// fsm.update(true);
/// fsm.update(true);
/// assert_eq!(fsm.status(), MlcStatus::Llc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchFsm {
    state: u8,
}

impl PrefetchFsm {
    /// The disabled (default) state, `0b11`.
    pub const DISABLED: u8 = 0b11;

    /// Creates the FSM in the disabled state.
    pub fn new() -> Self {
        PrefetchFsm {
            state: Self::DISABLED,
        }
    }

    /// Raw counter value (`0b00..=0b11`).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// The *status* bit derived from the counter.
    pub fn status(&self) -> MlcStatus {
        if self.state == Self::DISABLED {
            MlcStatus::Llc
        } else {
            MlcStatus::Mlc
        }
    }

    /// Burst arrival: reset to `0b00` (Alg. 1 line 3).
    pub fn reset_on_burst(&mut self) {
        self.state = 0;
    }

    /// One control-interval update with the measured MLC pressure.
    ///
    /// High pressure increments toward `0b11`; low pressure decrements
    /// toward `0b00`. The `0b11` state is absorbing — only
    /// [`PrefetchFsm::reset_on_burst`] leaves it.
    pub fn update(&mut self, high_pressure: bool) {
        if self.state == Self::DISABLED {
            return;
        }
        if high_pressure {
            self.state += 1;
        } else {
            self.state = self.state.saturating_sub(1);
        }
    }
}

impl Default for PrefetchFsm {
    fn default() -> Self {
        PrefetchFsm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert_eq!(PrefetchFsm::new().status(), MlcStatus::Llc);
        assert_eq!(PrefetchFsm::new().state(), 0b11);
    }

    #[test]
    fn burst_enables() {
        let mut f = PrefetchFsm::new();
        f.reset_on_burst();
        assert_eq!(f.state(), 0);
        assert_eq!(f.status(), MlcStatus::Mlc);
    }

    #[test]
    fn pressure_hysteresis() {
        let mut f = PrefetchFsm::new();
        f.reset_on_burst();
        f.update(true);
        assert_eq!(f.status(), MlcStatus::Mlc, "one high interval tolerated");
        f.update(false);
        assert_eq!(f.state(), 0, "pressure relief decrements");
        f.update(true);
        f.update(true);
        f.update(true);
        assert_eq!(f.status(), MlcStatus::Llc);
    }

    #[test]
    fn disabled_is_absorbing_without_burst() {
        let mut f = PrefetchFsm::new();
        f.update(false);
        f.update(false);
        assert_eq!(
            f.status(),
            MlcStatus::Llc,
            "low pressure alone never re-enables"
        );
        f.reset_on_burst();
        assert_eq!(f.status(), MlcStatus::Mlc);
    }

    #[test]
    fn saturates_at_zero() {
        let mut f = PrefetchFsm::new();
        f.reset_on_burst();
        f.update(false);
        f.update(false);
        assert_eq!(f.state(), 0);
    }
}
