//! Physical address-map layout for the simulated system.
//!
//! A simple bump allocator hands out page-aligned, non-overlapping regions
//! for each queue's descriptor array, DMA buffer pool, and mbuf metadata
//! array, plus the antagonist buffer. Regions are deliberately spread out
//! so distinct structures never share a cache line.

use idio_cache::addr::{Addr, PAGE_SIZE};

/// One workload's memory regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueRegions {
    /// Descriptor array base (128 B per slot).
    pub desc_base: Addr,
    /// DMA buffer pool base (2 KiB per slot).
    pub buf_base: Addr,
    /// mbuf metadata array base (128 B per slot).
    pub meta_base: Addr,
    /// Application-space copy arena (2 KiB per slot; copy-mode stacks).
    pub app_base: Addr,
    /// TX descriptor array base (128 B per slot).
    pub tx_desc_base: Addr,
    /// Ring size the regions were sized for.
    pub ring_size: u32,
}

impl QueueRegions {
    /// mbuf metadata address of `slot`.
    pub fn meta_addr(&self, slot: u32) -> Addr {
        debug_assert!(slot < self.ring_size);
        self.meta_base + u64::from(slot) * idio_stack::nf::MBUF_META_BYTES
    }

    /// Application copy-buffer address of `slot`.
    pub fn app_addr(&self, slot: u32) -> Addr {
        debug_assert!(slot < self.ring_size);
        self.app_base + u64::from(slot) * idio_nic::ring::DEFAULT_BUF_BYTES
    }

    /// Byte range of the DMA buffer pool, for occupancy classification.
    pub fn buf_range(&self) -> (Addr, Addr) {
        (
            self.buf_base,
            self.buf_base + u64::from(self.ring_size) * idio_nic::ring::DEFAULT_BUF_BYTES,
        )
    }
}

/// The bump allocator.
///
/// # Examples
///
/// ```
/// use idio_core::layout::AddressMap;
///
/// let mut map = AddressMap::new();
/// let q0 = map.alloc_queue(1024);
/// let q1 = map.alloc_queue(1024);
/// assert!(q1.desc_base > q0.buf_base, "regions never overlap");
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    cursor: u64,
}

/// Base of the allocatable region (above the simulated kernel image).
const BASE: u64 = 0x1000_0000;

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AddressMap { cursor: BASE }
    }

    /// Allocates a page-aligned region of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64) -> Addr {
        assert!(bytes > 0, "empty allocation");
        let base = self.cursor;
        let span = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.cursor += span;
        Addr::new(base)
    }

    /// Allocates the three regions of one `ring_size`-slot queue.
    pub fn alloc_queue(&mut self, ring_size: u32) -> QueueRegions {
        let n = u64::from(ring_size);
        QueueRegions {
            desc_base: self.alloc(n * idio_nic::ring::DESC_BYTES),
            buf_base: self.alloc(n * idio_nic::ring::DEFAULT_BUF_BYTES),
            meta_base: self.alloc(n * idio_stack::nf::MBUF_META_BYTES),
            app_base: self.alloc(n * idio_nic::ring::DEFAULT_BUF_BYTES),
            tx_desc_base: self.alloc(n * idio_nic::tx::TX_DESC_BYTES),
            ring_size,
        }
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.cursor - BASE
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut m = AddressMap::new();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a.get() % PAGE_SIZE, 0);
        assert_eq!(b.get() % PAGE_SIZE, 0);
        assert!(b.get() >= a.get() + PAGE_SIZE);
    }

    #[test]
    fn queue_regions_sized_correctly() {
        let mut m = AddressMap::new();
        let q = m.alloc_queue(1024);
        // 1024 slots: 128 KiB RX descs + 2 MiB buffers + 128 KiB meta +
        // a 2 MiB application copy arena + 128 KiB TX descs.
        assert_eq!(q.buf_base.get() - q.desc_base.get(), 128 << 10);
        assert_eq!(q.meta_base.get() - q.buf_base.get(), 2 << 20);
        assert_eq!(q.app_base.get() - q.meta_base.get(), 128 << 10);
        assert_eq!(q.tx_desc_base.get() - q.app_base.get(), 2 << 20);
        assert_eq!(
            m.allocated(),
            (128 << 10) + (2 << 20) + (128 << 10) + (2 << 20) + (128 << 10)
        );
        let (lo, hi) = q.buf_range();
        assert_eq!(hi.get() - lo.get(), 2 << 20);
        assert_eq!(q.app_addr(1).get() - q.app_addr(0).get(), 2048);
    }

    #[test]
    fn meta_addr_strides_two_lines() {
        let mut m = AddressMap::new();
        let q = m.alloc_queue(8);
        assert_eq!(q.meta_addr(1).get() - q.meta_addr(0).get(), 128);
    }

    #[test]
    #[should_panic(expected = "empty allocation")]
    fn zero_alloc_rejected() {
        AddressMap::new().alloc(0);
    }
}
