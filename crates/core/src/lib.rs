//! # idio-core
//!
//! The paper's contribution, end to end: **IDIO — Intelligent Direct I/O**
//! (Alian et al., MICRO 2022), a next-generation DDIO that dynamically
//! steers inbound network data between DRAM, the shared LLC, and per-core
//! MLCs, plus the full-system simulator that evaluates it.
//!
//! The three synergistic mechanisms live here:
//!
//! 1. **Self-invalidating I/O buffers** — the stack drops dead DMA buffers
//!    without writebacks (enacted through `idio-cache`'s
//!    invalidate-without-writeback maintenance op);
//! 2. **Network-driven MLC prefetching** — the [`controller::IdioController`]
//!    turns classifier metadata into MLC prefetch hints, gated per core by
//!    the [`fsm::PrefetchFsm`] fed with MLC-writeback telemetry;
//! 3. **Selective direct DRAM access** — class-1 payloads bypass the cache
//!    hierarchy entirely.
//!
//! [`system::System`] wires the substrates (`idio-cache`, `idio-mem`,
//! `idio-net`, `idio-nic`, `idio-stack`) into one deterministic
//! discrete-event simulation; [`experiments`] re-creates every figure of
//! the paper's evaluation on top of it.
//!
//! # Quick start
//!
//! ```
//! use idio_core::config::SystemConfig;
//! use idio_core::policy::SteeringPolicy;
//! use idio_core::system::System;
//! use idio_engine::time::SimTime;
//! use idio_net::gen::TrafficPattern;
//!
//! // Two TouchDrop NFs at 5 Gbps each, under full IDIO.
//! let mut cfg = SystemConfig::touchdrop_scenario(
//!     2,
//!     TrafficPattern::Steady { rate_gbps: 5.0 },
//! );
//! cfg.duration = SimTime::from_us(200);
//! let report = System::new(cfg.with_policy(SteeringPolicy::Idio)).run();
//! assert!(report.totals.self_inval > 0, "buffers were self-invalidated");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;
pub mod experiments;
pub mod fsm;
pub mod layout;
pub mod policy;
pub mod prefetcher;
pub mod report;
pub mod sweep;
pub mod system;

pub use config::{AntagonistSpec, SystemConfig, WorkloadSpec};
pub use controller::{IdioConfig, IdioController, Placement};
pub use fsm::{MlcStatus, PrefetchFsm};
pub use policy::{PrefetchMode, SteeringPolicy};
pub use prefetcher::{MlcPrefetcher, PrefetcherConfig, PrefetcherStats};
pub use report::{BurstWindow, LatencySummary, RunReport, RunTotals, Timelines};
pub use system::System;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use idio_cache as cache;
pub use idio_engine as engine;
pub use idio_mem as mem;
pub use idio_net as net;
pub use idio_nic as nic;
pub use idio_pool as pool;
pub use idio_stack as stack;
