//! The steering-policy matrix used in the evaluation (Fig. 9).
//!
//! The paper compares five inbound-data-placement configurations:
//! baseline **DDIO**, **Invalidate** (self-invalidating buffers only),
//! **Prefetch** (network-driven MLC prefetching only), **Static** (both,
//! with MLC steering hard-wired on), and full dynamic **IDIO** (both, with
//! the Fig. 8 FSM gating MLC steering).

use std::fmt;

use idio_cache::set::WayMask;

/// How MLC steering of payload lines is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchMode {
    /// Never steer payload to the MLC.
    Off,
    /// Always steer class-0 payload to the MLC (the *Static* config: the
    /// status register is hard-wired to MLC).
    Always,
    /// Gate steering with the per-core FSM (full IDIO).
    Dynamic,
}

/// A named placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringPolicy {
    /// Baseline DDIO: everything write-allocates in the LLC DDIO ways.
    Ddio,
    /// DDIO plus self-invalidating I/O buffers (mechanism 1 only).
    InvalidateOnly,
    /// DDIO plus network-driven MLC prefetching (mechanism 2 only,
    /// dynamically gated).
    PrefetchOnly,
    /// Mechanisms 1+2+3 with MLC steering always on for class 0.
    StaticIdio,
    /// Full IDIO: mechanisms 1+2+3 with the dynamic FSM.
    Idio,
    /// The IAT-style prior-work baseline (Yuan et al., ISCA'21): classic
    /// DDIO placement, but the number of DDIO ways is re-tuned at runtime
    /// from LLC-writeback telemetry. No invalidation, no MLC steering.
    IatDynamic,
}

impl SteeringPolicy {
    /// The paper's Fig. 9 policies, in presentation order.
    pub const ALL: [SteeringPolicy; 5] = [
        SteeringPolicy::Ddio,
        SteeringPolicy::InvalidateOnly,
        SteeringPolicy::PrefetchOnly,
        SteeringPolicy::StaticIdio,
        SteeringPolicy::Idio,
    ];

    /// Every implemented policy, including the prior-work IAT baseline.
    pub const EXTENDED: [SteeringPolicy; 6] = [
        SteeringPolicy::Ddio,
        SteeringPolicy::IatDynamic,
        SteeringPolicy::InvalidateOnly,
        SteeringPolicy::PrefetchOnly,
        SteeringPolicy::StaticIdio,
        SteeringPolicy::Idio,
    ];

    /// Whether the software stack self-invalidates consumed buffers.
    pub fn invalidates(self) -> bool {
        matches!(
            self,
            SteeringPolicy::InvalidateOnly | SteeringPolicy::StaticIdio | SteeringPolicy::Idio
        )
    }

    /// Whether the LLC's DDIO way count is re-tuned at runtime.
    pub fn tunes_ddio_ways(self) -> bool {
        matches!(self, SteeringPolicy::IatDynamic)
    }

    /// How payload MLC steering is decided.
    pub fn prefetch_mode(self) -> PrefetchMode {
        match self {
            SteeringPolicy::Ddio | SteeringPolicy::InvalidateOnly | SteeringPolicy::IatDynamic => {
                PrefetchMode::Off
            }
            SteeringPolicy::PrefetchOnly | SteeringPolicy::Idio => PrefetchMode::Dynamic,
            SteeringPolicy::StaticIdio => PrefetchMode::Always,
        }
    }

    /// Whether headers are steered to the destination MLC (any
    /// prefetch-capable policy).
    pub fn prefetches_headers(self) -> bool {
        self.prefetch_mode() != PrefetchMode::Off
    }

    /// Whether class-1 payloads bypass the cache hierarchy (selective
    /// direct DRAM access, mechanism 3).
    pub fn direct_dram(self) -> bool {
        matches!(self, SteeringPolicy::StaticIdio | SteeringPolicy::Idio)
    }

    /// Short display label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            SteeringPolicy::Ddio => "DDIO",
            SteeringPolicy::InvalidateOnly => "Invalidate",
            SteeringPolicy::PrefetchOnly => "Prefetch",
            SteeringPolicy::StaticIdio => "Static",
            SteeringPolicy::Idio => "IDIO",
            SteeringPolicy::IatDynamic => "IAT",
        }
    }

    /// Parses a CLI policy name (the lowercase spellings the `simulate`
    /// binary has always accepted, plus `iat`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ddio" => Some(SteeringPolicy::Ddio),
            "invalidate" => Some(SteeringPolicy::InvalidateOnly),
            "prefetch" => Some(SteeringPolicy::PrefetchOnly),
            "static" => Some(SteeringPolicy::StaticIdio),
            "idio" => Some(SteeringPolicy::Idio),
            "iat" => Some(SteeringPolicy::IatDynamic),
            _ => None,
        }
    }

    /// The capability set this preset resolves to. The named policies are
    /// pure presets over [`PolicyCaps`]: every behavioral question the hot
    /// path asks goes through the caps, never back through the enum.
    pub fn caps(self) -> PolicyCaps {
        PolicyCaps {
            invalidate: self.invalidates(),
            prefetch: self.prefetch_mode(),
            direct_dram: self.direct_dram(),
            tune_ddio_ways: self.tunes_ddio_ways(),
            cat: CatMode::Off,
        }
    }
}

/// How the policy domain's core-side LLC ways are partitioned (Intel
/// CAT layered on the DDIO partition, the IOCA/A4 lever). The mask only
/// constrains *core-side* fills — demand misses and MLC victims of the
/// domain's cores; inbound DMA keeps the DDIO ways regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CatMode {
    /// No partitioning: the domain's cores fill through the hierarchy's
    /// shared core mask (all non-DDIO ways unless configured otherwise).
    #[default]
    Off,
    /// A fixed way mask, validated against the LLC associativity and the
    /// DDIO partition at configuration time.
    Static(WayMask),
    /// The closed-loop CAT controller carves an exclusive slice of the
    /// non-DDIO ways for this domain and resizes it from telemetry.
    Auto,
}

/// The orthogonal capabilities a steering policy resolves to — what the
/// data and control planes actually consult. The six named
/// [`SteeringPolicy`] values are presets over this struct; a custom
/// combination can express configurations the paper never named (e.g.
/// invalidation plus static MLC steering without direct DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PolicyCaps {
    /// The software stack self-invalidates consumed buffers (mechanism 1).
    pub invalidate: bool,
    /// How payload MLC steering is decided (mechanism 2).
    pub prefetch: PrefetchMode,
    /// Class-1 payloads bypass the hierarchy (mechanism 3).
    pub direct_dram: bool,
    /// The LLC's DDIO way count is re-tuned at runtime (IAT-style).
    pub tune_ddio_ways: bool,
    /// Core-side LLC way partitioning for this domain's cores (CAT).
    pub cat: CatMode,
}

impl PolicyCaps {
    /// Whether headers are steered to the destination MLC (any
    /// prefetch-capable capability set).
    pub fn prefetches_headers(self) -> bool {
        self.prefetch != PrefetchMode::Off
    }
}

impl From<SteeringPolicy> for PolicyCaps {
    fn from(p: SteeringPolicy) -> Self {
        p.caps()
    }
}

/// A policy selection in the layered table: a named preset or an explicit
/// capability set. Preset-only configurations resolve to exactly the
/// behavior the global enum produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicySpec {
    /// One of the paper's named policies.
    Preset(SteeringPolicy),
    /// An explicit capability combination.
    Custom(PolicyCaps),
}

impl PolicySpec {
    /// The capability set this spec resolves to.
    pub fn caps(&self) -> PolicyCaps {
        match *self {
            PolicySpec::Preset(p) => p.caps(),
            PolicySpec::Custom(c) => c,
        }
    }

    /// Display label: the preset's figure label, or a deterministic
    /// rendering of the custom capability set.
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::Preset(p) => p.label().to_string(),
            PolicySpec::Custom(c) => {
                let pf = match c.prefetch {
                    PrefetchMode::Off => "off",
                    PrefetchMode::Always => "always",
                    PrefetchMode::Dynamic => "dynamic",
                };
                let cat = match c.cat {
                    CatMode::Off => String::new(),
                    CatMode::Static(m) => format!(",ways={:#b}", m.bits()),
                    CatMode::Auto => ",cat=auto".to_string(),
                };
                format!(
                    "custom(inval={},prefetch={pf},dram={},tune={}{cat})",
                    u8::from(c.invalidate),
                    u8::from(c.direct_dram),
                    u8::from(c.tune_ddio_ways),
                )
            }
        }
    }
}

impl From<SteeringPolicy> for PolicySpec {
    fn from(p: SteeringPolicy) -> Self {
        PolicySpec::Preset(p)
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The layered policy configuration resolved into dense per-queue arrays.
///
/// Resolution happens once (at `System::new` time): the system default,
/// per-tenant overrides and per-queue overrides collapse into a set of
/// *policy domains* — the distinct capability sets active in the run —
/// plus a queue → domain index. The hot path then does exactly one array
/// index per DMA line instead of a layered lookup.
///
/// Domain 0 is always the system default, even when every queue overrides
/// it (the control plane's way tuner and the report's headline label both
/// key off it). Further domains are interned in ascending queue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyTable {
    domains: Vec<PolicySpec>,
    domain_caps: Vec<PolicyCaps>,
    queue_domain: Vec<u16>,
}

impl PolicyTable {
    /// Resolves `per_queue` effective specs (one per receive queue, already
    /// layered: queue override > tenant override > `default`) into interned
    /// domains.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct domains appear (impossible
    /// in practice: domains are bounded by the queue count).
    pub fn new(default: PolicySpec, per_queue: &[PolicySpec]) -> Self {
        let mut domains = vec![default];
        let mut queue_domain = Vec::with_capacity(per_queue.len());
        for spec in per_queue {
            let id = match domains.iter().position(|d| d == spec) {
                Some(i) => i,
                None => {
                    domains.push(*spec);
                    domains.len() - 1
                }
            };
            queue_domain.push(u16::try_from(id).expect("domain count fits u16"));
        }
        let domain_caps = domains.iter().map(|d| d.caps()).collect();
        PolicyTable {
            domains,
            domain_caps,
            queue_domain,
        }
    }

    /// A table where every queue runs the system default (legacy global
    /// behavior).
    pub fn uniform(default: PolicySpec, queues: usize) -> Self {
        PolicyTable {
            domains: vec![default],
            domain_caps: vec![default.caps()],
            queue_domain: vec![0; queues],
        }
    }

    /// Number of distinct policy domains (≥ 1; domain 0 is the default).
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Number of receive queues the table covers.
    pub fn num_queues(&self) -> usize {
        self.queue_domain.len()
    }

    /// The spec of `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn spec(&self, domain: u16) -> PolicySpec {
        self.domains[usize::from(domain)]
    }

    /// The resolved capability set of `domain` — the hot path's one index.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    #[inline]
    pub fn caps(&self, domain: u16) -> PolicyCaps {
        self.domain_caps[usize::from(domain)]
    }

    /// All domain capability sets, indexed by domain id.
    pub fn domain_caps(&self) -> &[PolicyCaps] {
        &self.domain_caps
    }

    /// The domain `queue` resolved to.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    #[inline]
    pub fn queue_domain(&self, queue: usize) -> u16 {
        self.queue_domain[queue]
    }

    /// The per-queue domain array (what the NIC config carries).
    pub fn queue_domains(&self) -> &[u16] {
        &self.queue_domain
    }

    /// Whether any domain (default or override) wants the DDIO way tuner.
    pub fn any_tunes_ddio_ways(&self) -> bool {
        self.domain_caps.iter().any(|c| c.tune_ddio_ways)
    }

    /// Whether any domain carries a CAT partition (static or auto).
    pub fn any_cat(&self) -> bool {
        self.domain_caps.iter().any(|c| c.cat != CatMode::Off)
    }

    /// Whether any domain runs the closed-loop CAT controller.
    pub fn any_cat_auto(&self) -> bool {
        self.domain_caps.iter().any(|c| c.cat == CatMode::Auto)
    }
}

impl fmt::Display for SteeringPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_fig9() {
        use SteeringPolicy::*;
        assert!(!Ddio.invalidates() && Ddio.prefetch_mode() == PrefetchMode::Off);
        assert!(InvalidateOnly.invalidates());
        assert_eq!(InvalidateOnly.prefetch_mode(), PrefetchMode::Off);
        assert!(!PrefetchOnly.invalidates());
        assert_eq!(PrefetchOnly.prefetch_mode(), PrefetchMode::Dynamic);
        assert!(StaticIdio.invalidates());
        assert_eq!(StaticIdio.prefetch_mode(), PrefetchMode::Always);
        assert!(Idio.invalidates());
        assert_eq!(Idio.prefetch_mode(), PrefetchMode::Dynamic);
    }

    #[test]
    fn direct_dram_only_with_full_mechanisms() {
        assert!(!SteeringPolicy::Ddio.direct_dram());
        assert!(!SteeringPolicy::PrefetchOnly.direct_dram());
        assert!(SteeringPolicy::StaticIdio.direct_dram());
        assert!(SteeringPolicy::Idio.direct_dram());
    }

    #[test]
    fn caps_mirror_the_enum_methods() {
        for p in SteeringPolicy::EXTENDED {
            let c = p.caps();
            assert_eq!(c.invalidate, p.invalidates(), "{p}");
            assert_eq!(c.prefetch, p.prefetch_mode(), "{p}");
            assert_eq!(c.direct_dram, p.direct_dram(), "{p}");
            assert_eq!(c.tune_ddio_ways, p.tunes_ddio_ways(), "{p}");
            assert_eq!(c.prefetches_headers(), p.prefetches_headers(), "{p}");
            assert_eq!(PolicyCaps::from(p), c);
        }
    }

    #[test]
    fn spec_labels_and_parsing() {
        for p in SteeringPolicy::EXTENDED {
            assert_eq!(PolicySpec::Preset(p).label(), p.label());
            let name = p.label().to_lowercase();
            let name = match p {
                SteeringPolicy::InvalidateOnly => "invalidate".to_string(),
                SteeringPolicy::StaticIdio => "static".to_string(),
                _ => name,
            };
            assert_eq!(SteeringPolicy::from_name(&name), Some(p), "{name}");
        }
        assert_eq!(SteeringPolicy::from_name("bogus"), None);
        let caps = PolicyCaps {
            invalidate: true,
            prefetch: PrefetchMode::Always,
            direct_dram: false,
            tune_ddio_ways: true,
            cat: CatMode::Off,
        };
        let custom = PolicySpec::Custom(caps);
        assert_eq!(
            custom.label(),
            "custom(inval=1,prefetch=always,dram=0,tune=1)"
        );
        assert_eq!(format!("{custom}"), custom.label());
        let auto = PolicySpec::Custom(PolicyCaps {
            cat: CatMode::Auto,
            ..caps
        });
        assert_eq!(
            auto.label(),
            "custom(inval=1,prefetch=always,dram=0,tune=1,cat=auto)"
        );
        let fixed = PolicySpec::Custom(PolicyCaps {
            cat: CatMode::Static(WayMask::range(4, 8)),
            ..caps
        });
        assert_eq!(
            fixed.label(),
            "custom(inval=1,prefetch=always,dram=0,tune=1,ways=0b11110000)"
        );
    }

    #[test]
    fn cat_helpers_see_through_the_table() {
        let idio = PolicySpec::Preset(SteeringPolicy::Idio);
        let cat = PolicySpec::Custom(PolicyCaps {
            cat: CatMode::Auto,
            ..SteeringPolicy::Idio.caps()
        });
        let t = PolicyTable::new(idio, &[idio, cat]);
        assert!(t.any_cat() && t.any_cat_auto());
        let fixed = PolicySpec::Custom(PolicyCaps {
            cat: CatMode::Static(WayMask::range(2, 4)),
            ..SteeringPolicy::Ddio.caps()
        });
        let u = PolicyTable::new(idio, &[fixed]);
        assert!(u.any_cat() && !u.any_cat_auto());
        assert!(!PolicyTable::uniform(idio, 2).any_cat());
    }

    #[test]
    fn table_interns_domains_in_queue_order() {
        let ddio = PolicySpec::Preset(SteeringPolicy::Ddio);
        let idio = PolicySpec::Preset(SteeringPolicy::Idio);
        let iat = PolicySpec::Preset(SteeringPolicy::IatDynamic);
        let t = PolicyTable::new(idio, &[idio, ddio, iat, ddio]);
        assert_eq!(t.num_domains(), 3, "default + two overrides");
        assert_eq!(t.num_queues(), 4);
        assert_eq!(t.queue_domains(), &[0, 1, 2, 1]);
        assert_eq!(t.spec(0), idio);
        assert_eq!(t.spec(1), ddio);
        assert_eq!(t.caps(2), SteeringPolicy::IatDynamic.caps());
        assert!(t.any_tunes_ddio_ways());
        // A preset override identical to the default folds into domain 0.
        let u = PolicyTable::new(idio, &[idio, idio]);
        assert_eq!(u.num_domains(), 1);
        assert_eq!(u, PolicyTable::uniform(idio, 2));
        assert!(!u.any_tunes_ddio_ways());
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = SteeringPolicy::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(format!("{}", SteeringPolicy::Idio), "IDIO");
    }
}
