//! The steering-policy matrix used in the evaluation (Fig. 9).
//!
//! The paper compares five inbound-data-placement configurations:
//! baseline **DDIO**, **Invalidate** (self-invalidating buffers only),
//! **Prefetch** (network-driven MLC prefetching only), **Static** (both,
//! with MLC steering hard-wired on), and full dynamic **IDIO** (both, with
//! the Fig. 8 FSM gating MLC steering).

use std::fmt;

/// How MLC steering of payload lines is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchMode {
    /// Never steer payload to the MLC.
    Off,
    /// Always steer class-0 payload to the MLC (the *Static* config: the
    /// status register is hard-wired to MLC).
    Always,
    /// Gate steering with the per-core FSM (full IDIO).
    Dynamic,
}

/// A named placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringPolicy {
    /// Baseline DDIO: everything write-allocates in the LLC DDIO ways.
    Ddio,
    /// DDIO plus self-invalidating I/O buffers (mechanism 1 only).
    InvalidateOnly,
    /// DDIO plus network-driven MLC prefetching (mechanism 2 only,
    /// dynamically gated).
    PrefetchOnly,
    /// Mechanisms 1+2+3 with MLC steering always on for class 0.
    StaticIdio,
    /// Full IDIO: mechanisms 1+2+3 with the dynamic FSM.
    Idio,
    /// The IAT-style prior-work baseline (Yuan et al., ISCA'21): classic
    /// DDIO placement, but the number of DDIO ways is re-tuned at runtime
    /// from LLC-writeback telemetry. No invalidation, no MLC steering.
    IatDynamic,
}

impl SteeringPolicy {
    /// The paper's Fig. 9 policies, in presentation order.
    pub const ALL: [SteeringPolicy; 5] = [
        SteeringPolicy::Ddio,
        SteeringPolicy::InvalidateOnly,
        SteeringPolicy::PrefetchOnly,
        SteeringPolicy::StaticIdio,
        SteeringPolicy::Idio,
    ];

    /// Every implemented policy, including the prior-work IAT baseline.
    pub const EXTENDED: [SteeringPolicy; 6] = [
        SteeringPolicy::Ddio,
        SteeringPolicy::IatDynamic,
        SteeringPolicy::InvalidateOnly,
        SteeringPolicy::PrefetchOnly,
        SteeringPolicy::StaticIdio,
        SteeringPolicy::Idio,
    ];

    /// Whether the software stack self-invalidates consumed buffers.
    pub fn invalidates(self) -> bool {
        matches!(
            self,
            SteeringPolicy::InvalidateOnly | SteeringPolicy::StaticIdio | SteeringPolicy::Idio
        )
    }

    /// Whether the LLC's DDIO way count is re-tuned at runtime.
    pub fn tunes_ddio_ways(self) -> bool {
        matches!(self, SteeringPolicy::IatDynamic)
    }

    /// How payload MLC steering is decided.
    pub fn prefetch_mode(self) -> PrefetchMode {
        match self {
            SteeringPolicy::Ddio | SteeringPolicy::InvalidateOnly | SteeringPolicy::IatDynamic => {
                PrefetchMode::Off
            }
            SteeringPolicy::PrefetchOnly | SteeringPolicy::Idio => PrefetchMode::Dynamic,
            SteeringPolicy::StaticIdio => PrefetchMode::Always,
        }
    }

    /// Whether headers are steered to the destination MLC (any
    /// prefetch-capable policy).
    pub fn prefetches_headers(self) -> bool {
        self.prefetch_mode() != PrefetchMode::Off
    }

    /// Whether class-1 payloads bypass the cache hierarchy (selective
    /// direct DRAM access, mechanism 3).
    pub fn direct_dram(self) -> bool {
        matches!(self, SteeringPolicy::StaticIdio | SteeringPolicy::Idio)
    }

    /// Short display label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            SteeringPolicy::Ddio => "DDIO",
            SteeringPolicy::InvalidateOnly => "Invalidate",
            SteeringPolicy::PrefetchOnly => "Prefetch",
            SteeringPolicy::StaticIdio => "Static",
            SteeringPolicy::Idio => "IDIO",
            SteeringPolicy::IatDynamic => "IAT",
        }
    }
}

impl fmt::Display for SteeringPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_fig9() {
        use SteeringPolicy::*;
        assert!(!Ddio.invalidates() && Ddio.prefetch_mode() == PrefetchMode::Off);
        assert!(InvalidateOnly.invalidates());
        assert_eq!(InvalidateOnly.prefetch_mode(), PrefetchMode::Off);
        assert!(!PrefetchOnly.invalidates());
        assert_eq!(PrefetchOnly.prefetch_mode(), PrefetchMode::Dynamic);
        assert!(StaticIdio.invalidates());
        assert_eq!(StaticIdio.prefetch_mode(), PrefetchMode::Always);
        assert!(Idio.invalidates());
        assert_eq!(Idio.prefetch_mode(), PrefetchMode::Dynamic);
    }

    #[test]
    fn direct_dram_only_with_full_mechanisms() {
        assert!(!SteeringPolicy::Ddio.direct_dram());
        assert!(!SteeringPolicy::PrefetchOnly.direct_dram());
        assert!(SteeringPolicy::StaticIdio.direct_dram());
        assert!(SteeringPolicy::Idio.direct_dram());
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = SteeringPolicy::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(format!("{}", SteeringPolicy::Idio), "IDIO");
    }
}
