//! The queued MLC prefetcher (Sec. V-C).
//!
//! Each MLC controller implements a simple queued prefetcher: hints from
//! the IDIO controller are enqueued (default depth 32) and drained at a
//! bounded issue rate toward the LLC. A hint that arrives when the queue is
//! full is dropped — which is exactly what throttles MLC steering at
//! 100 Gbps burst rates, where the wire outruns the prefetcher.

use std::collections::VecDeque;

use idio_cache::addr::LineAddr;
use idio_engine::stats::Counter;
use idio_engine::time::Duration;

/// How prefetch hints are admitted to the queue.
///
/// The paper's design is the simple drop-on-full queue
/// ([`PrefetchPacing::Queued`]); Sec. VII suggests as future work "a more
/// sophisticated prefetcher that follows the CPU pointer in the ring
/// buffer to regulate the MLC prefetching rate" — implemented here as
/// [`PrefetchPacing::CpuPaced`]: hints for packets more than
/// `window_packets` ahead of the consumption pointer are parked and
/// released as the CPU catches up, so nothing is dropped and the MLC is
/// never flooded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPacing {
    /// Fixed-depth queue; overflowing hints are dropped (the paper's
    /// design).
    #[default]
    Queued,
    /// Ring-pointer-following regulation (the paper's future-work
    /// suggestion).
    CpuPaced {
        /// Maximum packets the prefetcher may run ahead of the CPU
        /// pointer.
        window_packets: u32,
    },
}

/// Prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetcherConfig {
    /// Queue depth (default 32, Sec. V-C).
    pub queue_depth: usize,
    /// Minimum gap between issued prefetches (LLC→MLC move pipeline rate).
    pub issue_gap: Duration,
    /// Hint admission policy.
    pub pacing: PrefetchPacing,
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig {
            queue_depth: 32,
            issue_gap: Duration::from_ns(5),
            pacing: PrefetchPacing::Queued,
        }
    }
}

/// Per-core prefetch-queue counters.
#[derive(Debug, Clone, Default)]
pub struct PrefetcherStats {
    /// Hints accepted into the queue.
    pub accepted: Counter,
    /// Hints dropped because the queue was full.
    pub dropped: Counter,
    /// Prefetches issued to the hierarchy.
    pub issued: Counter,
}

/// One core's MLC prefetch queue.
///
/// The event-driven pacing (one issue per [`PrefetcherConfig::issue_gap`])
/// is driven by the system simulator; this structure owns the queue state.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::LineAddr;
/// use idio_core::prefetcher::{MlcPrefetcher, PrefetcherConfig};
///
/// let mut p = MlcPrefetcher::new(PrefetcherConfig::default());
/// assert!(p.push(LineAddr::new(1)));
/// assert_eq!(p.pop(), Some(LineAddr::new(1)));
/// assert_eq!(p.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct MlcPrefetcher {
    cfg: PrefetcherConfig,
    queue: VecDeque<LineAddr>,
    stats: PrefetcherStats,
    /// Whether an issue event is currently scheduled (managed by the
    /// system's event loop to avoid double-scheduling).
    pub issue_pending: bool,
}

impl MlcPrefetcher {
    /// Creates a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the queue depth is zero.
    pub fn new(cfg: PrefetcherConfig) -> Self {
        assert!(cfg.queue_depth > 0, "prefetch queue must have capacity");
        MlcPrefetcher {
            cfg,
            queue: VecDeque::with_capacity(cfg.queue_depth),
            stats: PrefetcherStats::default(),
            issue_pending: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrefetcherConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }

    /// Pending hints.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a hint; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, line: LineAddr) -> bool {
        if self.queue.len() >= self.cfg.queue_depth {
            self.stats.dropped.inc();
            return false;
        }
        self.queue.push_back(line);
        self.stats.accepted.inc();
        true
    }

    /// Dequeues the next hint to issue.
    pub fn pop(&mut self) -> Option<LineAddr> {
        let line = self.queue.pop_front();
        if line.is_some() {
            self.stats.issued.inc();
        }
        line
    }
}

/// Arena-backed parked-hint storage for the CPU-paced prefetcher: one
/// fixed-capacity FIFO ring per core, all carved from a single allocation.
///
/// Replaces the per-core `VecDeque<(seq, line)>` queues: parking a hint or
/// releasing a window's worth of hints never allocates, and the per-core
/// ring headers sit in one contiguous array next to each other. Capacity
/// is provisioned from the RX ring geometry (`ring_slots *
/// lines_per_slot`), a hard bound on parked hints: a packet parks at most
/// one hint per buffer line, and at most `ring_slots` packets are ever in
/// flight before the CPU pointer advances past them.
#[derive(Debug, Clone)]
pub struct HintArena {
    /// Flat slot storage; core `c` owns `slots[c * cap .. (c + 1) * cap]`.
    slots: Box<[(u64, LineAddr)]>,
    /// Per-core ring capacity.
    cap: usize,
    /// Per-core `(head, len)` ring headers.
    rings: Box<[(u32, u32)]>,
}

impl HintArena {
    /// Creates rings for `cores` cores of `cap_per_core` slots each. A
    /// zero capacity is valid for configurations that never park (the
    /// default queued pacing) and allocates no slot storage.
    pub fn new(cores: usize, cap_per_core: usize) -> Self {
        assert!(
            u32::try_from(cap_per_core).is_ok(),
            "hint ring capacity exceeds u32"
        );
        HintArena {
            slots: vec![(0, LineAddr::new(0)); cores * cap_per_core].into_boxed_slice(),
            cap: cap_per_core,
            rings: vec![(0u32, 0u32); cores].into_boxed_slice(),
        }
    }

    /// Per-core ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Parked hints on `core`.
    pub fn len(&self, core: usize) -> usize {
        self.rings[core].1 as usize
    }

    /// Whether `core` has no parked hints.
    pub fn is_empty(&self, core: usize) -> bool {
        self.len(core) == 0
    }

    /// Parks `(seq, line)` at the tail of `core`'s ring.
    ///
    /// # Panics
    ///
    /// Panics, naming the core and sequence number, if the ring is full.
    /// The capacity is provisioned to the RX-ring bound, so an overflow
    /// means the pacing invariant broke — it is diagnosed, not dropped.
    pub fn park(&mut self, core: usize, seq: u64, line: LineAddr) {
        let (head, len) = self.rings[core];
        assert!(
            (len as usize) < self.cap,
            "parked-hint ring overflow on core{core} at seq {seq}: {len} hints \
             parked, capacity {} (RX-ring pacing bound violated)",
            self.cap
        );
        let slot = core * self.cap + (head as usize + len as usize) % self.cap;
        self.slots[slot] = (seq, line);
        self.rings[core].1 = len + 1;
    }

    /// Releases the oldest parked hint if its sequence number is within
    /// `limit` (the CPU pointer plus the pacing window); `None` when the
    /// ring is empty or the head is still too far ahead.
    pub fn pop_ready(&mut self, core: usize, limit: u64) -> Option<LineAddr> {
        let (head, len) = self.rings[core];
        if len == 0 {
            return None;
        }
        let (seq, line) = self.slots[core * self.cap + head as usize];
        if seq > limit {
            return None;
        }
        self.rings[core] = (((head as usize + 1) % self.cap) as u32, len - 1);
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn queue_overflow_drops_hints() {
        let mut p = MlcPrefetcher::new(PrefetcherConfig {
            queue_depth: 2,
            issue_gap: Duration::from_ns(10),
            pacing: PrefetchPacing::Queued,
        });
        assert!(p.push(line(1)));
        assert!(p.push(line(2)));
        assert!(!p.push(line(3)));
        assert_eq!(p.stats().dropped.get(), 1);
        assert_eq!(p.stats().accepted.get(), 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fifo_ordering() {
        let mut p = MlcPrefetcher::new(PrefetcherConfig::default());
        p.push(line(5));
        p.push(line(6));
        assert_eq!(p.pop(), Some(line(5)));
        assert_eq!(p.pop(), Some(line(6)));
        assert_eq!(p.stats().issued.get(), 2);
    }

    #[test]
    fn default_depth_is_32() {
        let p = MlcPrefetcher::new(PrefetcherConfig::default());
        assert_eq!(p.config().queue_depth, 32);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_depth_rejected() {
        let _ = MlcPrefetcher::new(PrefetcherConfig {
            queue_depth: 0,
            issue_gap: Duration::from_ns(10),
            pacing: PrefetchPacing::Queued,
        });
    }

    #[test]
    fn arena_rings_are_independent_fifos() {
        let mut a = HintArena::new(2, 4);
        a.park(0, 1, line(10));
        a.park(1, 1, line(20));
        a.park(0, 2, line(11));
        assert_eq!(a.len(0), 2);
        assert_eq!(a.len(1), 1);
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(10)));
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(11)));
        assert_eq!(a.pop_ready(0, u64::MAX), None);
        assert_eq!(a.pop_ready(1, u64::MAX), Some(line(20)));
        assert!(a.is_empty(0) && a.is_empty(1));
    }

    #[test]
    fn arena_pop_gated_by_sequence_limit() {
        let mut a = HintArena::new(1, 4);
        a.park(0, 5, line(1));
        a.park(0, 9, line(2));
        assert_eq!(a.pop_ready(0, 4), None);
        assert_eq!(a.pop_ready(0, 5), Some(line(1)));
        // The head advanced; the next hint still waits for its window.
        assert_eq!(a.pop_ready(0, 8), None);
        assert_eq!(a.pop_ready(0, 9), Some(line(2)));
    }

    #[test]
    fn arena_ring_wraps_at_capacity_boundary() {
        let mut a = HintArena::new(1, 3);
        // Fill to capacity, drain two, refill two: the tail wraps past the
        // end of the slot range and FIFO order must survive the wrap.
        a.park(0, 1, line(1));
        a.park(0, 2, line(2));
        a.park(0, 3, line(3));
        assert_eq!(a.len(0), a.capacity());
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(1)));
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(2)));
        a.park(0, 4, line(4));
        a.park(0, 5, line(5));
        assert_eq!(a.len(0), 3);
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(3)));
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(4)));
        assert_eq!(a.pop_ready(0, u64::MAX), Some(line(5)));
        assert_eq!(a.pop_ready(0, u64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "parked-hint ring overflow on core1 at seq 42")]
    fn arena_overflow_panic_names_core_and_seq() {
        let mut a = HintArena::new(2, 2);
        a.park(1, 40, line(1));
        a.park(1, 41, line(2));
        a.park(1, 42, line(3));
    }

    #[test]
    fn arena_zero_capacity_is_valid_but_parks_nothing() {
        let mut a = HintArena::new(4, 0);
        assert_eq!(a.capacity(), 0);
        assert!(a.is_empty(3));
        assert_eq!(a.pop_ready(3, u64::MAX), None);
    }
}
