//! The queued MLC prefetcher (Sec. V-C).
//!
//! Each MLC controller implements a simple queued prefetcher: hints from
//! the IDIO controller are enqueued (default depth 32) and drained at a
//! bounded issue rate toward the LLC. A hint that arrives when the queue is
//! full is dropped — which is exactly what throttles MLC steering at
//! 100 Gbps burst rates, where the wire outruns the prefetcher.

use std::collections::VecDeque;

use idio_cache::addr::LineAddr;
use idio_engine::stats::Counter;
use idio_engine::time::Duration;

/// How prefetch hints are admitted to the queue.
///
/// The paper's design is the simple drop-on-full queue
/// ([`PrefetchPacing::Queued`]); Sec. VII suggests as future work "a more
/// sophisticated prefetcher that follows the CPU pointer in the ring
/// buffer to regulate the MLC prefetching rate" — implemented here as
/// [`PrefetchPacing::CpuPaced`]: hints for packets more than
/// `window_packets` ahead of the consumption pointer are parked and
/// released as the CPU catches up, so nothing is dropped and the MLC is
/// never flooded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPacing {
    /// Fixed-depth queue; overflowing hints are dropped (the paper's
    /// design).
    #[default]
    Queued,
    /// Ring-pointer-following regulation (the paper's future-work
    /// suggestion).
    CpuPaced {
        /// Maximum packets the prefetcher may run ahead of the CPU
        /// pointer.
        window_packets: u32,
    },
}

/// Prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetcherConfig {
    /// Queue depth (default 32, Sec. V-C).
    pub queue_depth: usize,
    /// Minimum gap between issued prefetches (LLC→MLC move pipeline rate).
    pub issue_gap: Duration,
    /// Hint admission policy.
    pub pacing: PrefetchPacing,
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig {
            queue_depth: 32,
            issue_gap: Duration::from_ns(5),
            pacing: PrefetchPacing::Queued,
        }
    }
}

/// Per-core prefetch-queue counters.
#[derive(Debug, Clone, Default)]
pub struct PrefetcherStats {
    /// Hints accepted into the queue.
    pub accepted: Counter,
    /// Hints dropped because the queue was full.
    pub dropped: Counter,
    /// Prefetches issued to the hierarchy.
    pub issued: Counter,
}

/// One core's MLC prefetch queue.
///
/// The event-driven pacing (one issue per [`PrefetcherConfig::issue_gap`])
/// is driven by the system simulator; this structure owns the queue state.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::LineAddr;
/// use idio_core::prefetcher::{MlcPrefetcher, PrefetcherConfig};
///
/// let mut p = MlcPrefetcher::new(PrefetcherConfig::default());
/// assert!(p.push(LineAddr::new(1)));
/// assert_eq!(p.pop(), Some(LineAddr::new(1)));
/// assert_eq!(p.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct MlcPrefetcher {
    cfg: PrefetcherConfig,
    queue: VecDeque<LineAddr>,
    stats: PrefetcherStats,
    /// Whether an issue event is currently scheduled (managed by the
    /// system's event loop to avoid double-scheduling).
    pub issue_pending: bool,
}

impl MlcPrefetcher {
    /// Creates a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the queue depth is zero.
    pub fn new(cfg: PrefetcherConfig) -> Self {
        assert!(cfg.queue_depth > 0, "prefetch queue must have capacity");
        MlcPrefetcher {
            cfg,
            queue: VecDeque::with_capacity(cfg.queue_depth),
            stats: PrefetcherStats::default(),
            issue_pending: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrefetcherConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &PrefetcherStats {
        &self.stats
    }

    /// Pending hints.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a hint; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, line: LineAddr) -> bool {
        if self.queue.len() >= self.cfg.queue_depth {
            self.stats.dropped.inc();
            return false;
        }
        self.queue.push_back(line);
        self.stats.accepted.inc();
        true
    }

    /// Dequeues the next hint to issue.
    pub fn pop(&mut self) -> Option<LineAddr> {
        let line = self.queue.pop_front();
        if line.is_some() {
            self.stats.issued.inc();
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn queue_overflow_drops_hints() {
        let mut p = MlcPrefetcher::new(PrefetcherConfig {
            queue_depth: 2,
            issue_gap: Duration::from_ns(10),
            pacing: PrefetchPacing::Queued,
        });
        assert!(p.push(line(1)));
        assert!(p.push(line(2)));
        assert!(!p.push(line(3)));
        assert_eq!(p.stats().dropped.get(), 1);
        assert_eq!(p.stats().accepted.get(), 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fifo_ordering() {
        let mut p = MlcPrefetcher::new(PrefetcherConfig::default());
        p.push(line(5));
        p.push(line(6));
        assert_eq!(p.pop(), Some(line(5)));
        assert_eq!(p.pop(), Some(line(6)));
        assert_eq!(p.stats().issued.get(), 2);
    }

    #[test]
    fn default_depth_is_32() {
        let p = MlcPrefetcher::new(PrefetcherConfig::default());
        assert_eq!(p.config().queue_depth, 32);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_depth_rejected() {
        let _ = MlcPrefetcher::new(PrefetcherConfig {
            queue_depth: 0,
            issue_gap: Duration::from_ns(10),
            pacing: PrefetchPacing::Queued,
        });
    }
}
