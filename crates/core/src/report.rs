//! Run reports: sampled timelines, latency summaries, burst windows.
//!
//! Everything the paper's figures plot is assembled here from the raw
//! counters: 10 µs-sampled MTPS rate timelines (Figs. 5, 9, 11, 13),
//! aggregate transaction counts (Fig. 10), p50/p99 latency (Fig. 12), and
//! per-burst processing times ("Exe Time").

use std::collections::BTreeMap;
use std::fmt;

use idio_cache::addr::CoreId;
use idio_cache::stats::HierarchyStats;
use idio_engine::stats::{LatencyRecorder, TimeSeries};
use idio_engine::telemetry::{MetricsSnapshot, TraceRecord};
use idio_engine::time::{Duration, SimTime};
use idio_mem::DramStats;

use crate::policy::SteeringPolicy;

/// Percentile summary of one workload's packet latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Mean.
    pub mean: Duration,
    /// Number of completed packets.
    pub count: usize,
}

impl LatencySummary {
    /// Builds a summary from a recorder; `None` when nothing completed.
    pub fn from_recorder(r: &mut LatencyRecorder) -> Option<Self> {
        if r.is_empty() {
            return None;
        }
        Some(LatencySummary {
            p50: r.percentile(50.0)?,
            p99: r.percentile(99.0)?,
            mean: r.mean()?,
            count: r.count(),
        })
    }
}

/// One burst's processing window: from the first DMA transaction to the
/// completion of the last packet of the burst (the paper's "Exe Time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstWindow {
    /// Burst index (arrival time divided by the burst period).
    pub index: u64,
    /// First DMA transaction of the burst.
    pub first_dma: SimTime,
    /// Last DMA transaction of the burst (end of the DMA phase).
    pub dma_end: SimTime,
    /// Completion of the last packet (end of the execution phase).
    pub exec_end: SimTime,
    /// Packets processed in the burst.
    pub packets: u64,
}

impl BurstWindow {
    /// The burst processing time.
    pub fn exe_time(&self) -> Duration {
        self.exec_end.saturating_since(self.first_dma)
    }
}

/// Mean exe time over a burst sequence: drops the first `skip` (warm-up)
/// bursts, ignores incomplete windows (a DMA was recorded but no packet
/// completed, so `exe_time` would read as a bogus zero-length burst), and
/// rounds the picosecond mean to nearest instead of truncating.
fn mean_exe_over<'a, I>(windows: I, skip: usize) -> Option<Duration>
where
    I: Iterator<Item = &'a BurstWindow>,
{
    let (mut total, mut n) = (0u64, 0u64);
    for b in windows.skip(skip).filter(|b| b.packets > 0) {
        total += b.exe_time().as_ps();
        n += 1;
    }
    if n == 0 {
        return None;
    }
    Some(Duration::from_ps((total + n / 2) / n))
}

/// Tracks per-burst windows during a run.
#[derive(Debug, Clone)]
pub struct BurstTracker {
    period: Duration,
    windows: BTreeMap<u64, BurstWindow>,
}

impl BurstTracker {
    /// Creates a tracker for traffic with the given burst period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(period: Duration) -> Self {
        assert!(period > Duration::ZERO, "burst period must be positive");
        BurstTracker {
            period,
            windows: BTreeMap::new(),
        }
    }

    /// The burst period the tracker windows arrivals by.
    pub fn period(&self) -> Duration {
        self.period
    }

    fn index(&self, arrival: SimTime) -> u64 {
        arrival.as_ps() / self.period.as_ps()
    }

    /// Records a DMA transaction for a packet that arrived at `arrival`.
    pub fn record_dma(&mut self, arrival: SimTime, dma_at: SimTime) {
        let idx = self.index(arrival);
        let w = self.windows.entry(idx).or_insert(BurstWindow {
            index: idx,
            first_dma: dma_at,
            dma_end: dma_at,
            exec_end: dma_at,
            packets: 0,
        });
        w.first_dma = w.first_dma.min(dma_at);
        w.dma_end = w.dma_end.max(dma_at);
    }

    /// Records the completion of a packet that arrived at `arrival`.
    pub fn record_completion(&mut self, arrival: SimTime, done_at: SimTime) {
        let idx = self.index(arrival);
        if let Some(w) = self.windows.get_mut(&idx) {
            w.exec_end = w.exec_end.max(done_at);
            w.packets += 1;
        }
    }

    /// The recorded windows, in burst order.
    pub fn windows(&self) -> Vec<BurstWindow> {
        self.windows.values().copied().collect()
    }

    /// Mean exe time over complete bursts, skipping the first `skip`
    /// (warm-up) bursts. Windows with no completed packets are excluded —
    /// a burst whose packets are still in flight has no exe time yet.
    pub fn mean_exe_time(&self, skip: usize) -> Option<Duration> {
        mean_exe_over(self.windows.values(), skip)
    }
}

/// The sampled rate timelines of one run (all in MTPS except DMA rate).
#[derive(Debug, Clone, Default)]
pub struct Timelines {
    /// MLC writeback rate (all cores).
    pub mlc_wb: TimeSeries,
    /// LLC writeback (to DRAM) rate.
    pub llc_wb: TimeSeries,
    /// DRAM read transaction rate.
    pub dram_rd: TimeSeries,
    /// DRAM write transaction rate.
    pub dram_wr: TimeSeries,
    /// Inbound DMA (PCIe write) transaction rate.
    pub dma_wr: TimeSeries,
    /// MLC prefetch fill rate.
    pub prefetch: TimeSeries,
    /// Self-invalidation rate.
    pub self_inval: TimeSeries,
    /// Gauge: fraction of LLC *capacity* occupied by DMA buffer lines —
    /// the direct measurement of *DMA bloating* (Sec. III, observation 3).
    pub dma_llc_share: TimeSeries,
}

/// Final counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// MLC writebacks (all cores).
    pub mlc_wb: u64,
    /// MLC invalidations by DMA.
    pub mlc_inval_by_dma: u64,
    /// LLC writebacks to DRAM.
    pub llc_wb: u64,
    /// DRAM line reads.
    pub dram_rd: u64,
    /// DRAM line writes.
    pub dram_wr: u64,
    /// Inbound PCIe writes.
    pub pcie_wr: u64,
    /// Prefetch fills into MLCs.
    pub prefetch_fills: u64,
    /// Self-invalidated lines.
    pub self_inval: u64,
    /// Packets delivered by the NIC.
    pub rx_packets: u64,
    /// Packets dropped at full rings.
    pub rx_drops: u64,
    /// Packets fully processed by NFs.
    pub completed_packets: u64,
}

/// Per-core demand hit-level breakdown (fractions over all demand line
/// accesses the core issued).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitBreakdown {
    /// L1D hit fraction.
    pub l1: f64,
    /// MLC hit fraction.
    pub mlc: f64,
    /// LLC hit fraction.
    pub llc: f64,
    /// DRAM fraction.
    pub dram: f64,
    /// Total demand line accesses.
    pub accesses: u64,
}

/// Per-event-type profile of the engine loop of one run.
///
/// `count` is deterministic (a pure function of config and seed); `wall`
/// is host wall-clock attributed to the event type's handler and stays
/// zero unless [`crate::config::SystemConfig::profile_events`] was set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventTypeProfile {
    /// Stable event-type name (e.g. `"dma_line"`).
    pub name: &'static str,
    /// Times this event type was dispatched.
    pub count: u64,
    /// Host wall-clock spent in its handler (zero when not profiled).
    pub wall: std::time::Duration,
}

/// Complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy that produced the run.
    pub policy: SteeringPolicy,
    /// Simulated time at the end of the run.
    pub finished_at: SimTime,
    /// Aggregate counters.
    pub totals: RunTotals,
    /// Full hierarchy statistics snapshot.
    pub hierarchy: HierarchyStats,
    /// DRAM statistics snapshot.
    pub dram: DramStats,
    /// Sampled timelines.
    pub timelines: Timelines,
    /// Per-NF-core latency summaries.
    pub latency: Vec<(CoreId, LatencySummary)>,
    /// Per-burst windows (empty for steady traffic).
    pub bursts: Vec<BurstWindow>,
    /// Antagonist cycles-per-access (CPI proxy), if an antagonist ran.
    pub antagonist_cpa: Option<f64>,
    /// Final metrics registry snapshot (stable dotted names; see
    /// `DESIGN.md` for the naming scheme). Deterministic.
    pub metrics: MetricsSnapshot,
    /// Trace records kept by the run's tracer (empty when tracing is
    /// off). Deterministic.
    pub trace: Vec<TraceRecord>,
    /// Engine-loop dispatch profile, one entry per event type in stable
    /// order.
    pub profile: Vec<EventTypeProfile>,
    /// Per-control-tick NDJSON timeline (empty unless
    /// `SystemConfig::tick_metrics` is set). Each entry is one complete
    /// JSON object: steering-mix delta since the previous tick, per-core
    /// prefetch-FSM states, and the CAT allocator's state when one is
    /// configured. Deterministic.
    pub tick_metrics: Vec<String>,
}

impl RunReport {
    /// MLC writebacks of the NF cores only (cores `0..n`), excluding a
    /// co-running antagonist's private-cache churn. This is the quantity
    /// the paper's Fig. 10 compares in co-run scenarios.
    pub fn nf_mlc_wb(&self, nf_cores: usize) -> u64 {
        self.hierarchy
            .core
            .iter()
            .take(nf_cores)
            .map(|c| c.mlc_wb.get())
            .sum()
    }

    /// Demand hit-level breakdown for `core`, derived from the hierarchy
    /// counters. `None` when the core issued no demand accesses.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn hit_breakdown(&self, core: CoreId) -> Option<HitBreakdown> {
        let c = self.hierarchy.core(core);
        let l1 = c.l1_hits.get();
        let mlc = c.mlc_hits.get();
        let misses = c.mlc_misses.get();
        let total = l1 + mlc + misses;
        if total == 0 {
            return None;
        }
        // Exact per-core attribution: the hierarchy counts each core's
        // demand LLC hits and DRAM fills separately, so a mixed run no
        // longer smears one tenant's misses across every core. (The small
        // remainder of `misses` is cache-to-cache transfers, which land in
        // neither bucket.)
        let llc = c.llc_hits.get();
        let dram = c.llc_misses.get();
        Some(HitBreakdown {
            l1: l1 as f64 / total as f64,
            mlc: mlc as f64 / total as f64,
            llc: llc as f64 / total as f64,
            dram: dram as f64 / total as f64,
            accesses: total,
        })
    }

    /// Mean burst processing time, skipping `skip` warm-up bursts and
    /// any window with no completed packets.
    pub fn mean_exe_time(&self, skip: usize) -> Option<Duration> {
        mean_exe_over(self.bursts.iter(), skip)
    }

    /// Worst p99 latency across NF cores.
    pub fn p99(&self) -> Option<Duration> {
        self.latency.iter().map(|(_, s)| s.p99).max()
    }

    /// Worst p50 latency across NF cores.
    pub fn p50(&self) -> Option<Duration> {
        self.latency.iter().map(|(_, s)| s.p50).max()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy: {}", self.policy)?;
        writeln!(
            f,
            "packets: rx={} drops={} completed={}",
            self.totals.rx_packets, self.totals.rx_drops, self.totals.completed_packets
        )?;
        writeln!(
            f,
            "transactions: mlc_wb={} llc_wb={} dram_rd={} dram_wr={} prefetch={} self_inval={}",
            self.totals.mlc_wb,
            self.totals.llc_wb,
            self.totals.dram_rd,
            self.totals.dram_wr,
            self.totals.prefetch_fills,
            self.totals.self_inval
        )?;
        if let Some(exe) = self.mean_exe_time(1) {
            writeln!(f, "mean exe time: {exe}")?;
        }
        for (core, lat) in &self.latency {
            writeln!(
                f,
                "{core}: p50={} p99={} mean={} n={}",
                lat.p50, lat.p99, lat.mean, lat.count
            )?;
        }
        if let Some(cpa) = self.antagonist_cpa {
            writeln!(f, "antagonist cycles/access: {cpa:.1}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_tracker_windows() {
        let mut t = BurstTracker::new(Duration::from_ms(10));
        // Burst 0: two packets.
        t.record_dma(SimTime::from_us(1), SimTime::from_us(2));
        t.record_dma(SimTime::from_us(3), SimTime::from_us(4));
        t.record_completion(SimTime::from_us(1), SimTime::from_us(50));
        t.record_completion(SimTime::from_us(3), SimTime::from_us(90));
        // Burst 1.
        t.record_dma(SimTime::from_ms(10), SimTime::from_ms(10));
        t.record_completion(SimTime::from_ms(10), SimTime::from_ms(11));
        let w = t.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].packets, 2);
        assert_eq!(w[0].exe_time(), Duration::from_us(88));
        assert_eq!(w[1].index, 1);
    }

    #[test]
    fn mean_exe_skips_warmup() {
        let mut t = BurstTracker::new(Duration::from_ms(10));
        t.record_dma(SimTime::ZERO, SimTime::ZERO);
        t.record_completion(SimTime::ZERO, SimTime::from_us(100));
        t.record_dma(SimTime::from_ms(10), SimTime::from_ms(10));
        t.record_completion(
            SimTime::from_ms(10),
            SimTime::from_ms(10) + Duration::from_us(50),
        );
        assert_eq!(t.mean_exe_time(0), Some(Duration::from_us(75)));
        assert_eq!(t.mean_exe_time(1), Some(Duration::from_us(50)));
        assert_eq!(t.mean_exe_time(2), None);
    }

    /// Regression: a window whose packets never completed (DMA recorded,
    /// no completion) used to be averaged in as a zero-length burst,
    /// dragging the mean down. It must be excluded.
    #[test]
    fn mean_exe_ignores_incomplete_windows() {
        let mut t = BurstTracker::new(Duration::from_ms(10));
        t.record_dma(SimTime::ZERO, SimTime::ZERO);
        t.record_completion(SimTime::ZERO, SimTime::from_us(100));
        // Second burst: DMA arrives but nothing completes before the run
        // ends. Old code averaged this in as exe_time == 0 → 50 µs mean.
        t.record_dma(SimTime::from_ms(10), SimTime::from_ms(10));
        assert_eq!(t.mean_exe_time(0), Some(Duration::from_us(100)));
        // Only incomplete windows left after the warm-up skip → no mean.
        assert_eq!(t.mean_exe_time(1), None);
    }

    /// Regression: the picosecond mean used to truncate; it must round to
    /// nearest (1 ps + 2 ps → 1.5 ps → 2 ps, not 1 ps).
    #[test]
    fn mean_exe_rounds_to_nearest() {
        let mut t = BurstTracker::new(Duration::from_ms(10));
        t.record_dma(SimTime::ZERO, SimTime::ZERO);
        t.record_completion(SimTime::ZERO, SimTime::from_ps(1));
        t.record_dma(SimTime::from_ms(10), SimTime::from_ms(10));
        t.record_completion(
            SimTime::from_ms(10),
            SimTime::from_ms(10) + Duration::from_ps(2),
        );
        assert_eq!(t.mean_exe_time(0), Some(Duration::from_ps(2)));
    }

    /// `RunReport::mean_exe_time` shares the same exclusion + rounding
    /// rules as the tracker.
    #[test]
    fn report_mean_exe_matches_tracker_rules() {
        let complete = BurstWindow {
            index: 0,
            first_dma: SimTime::ZERO,
            dma_end: SimTime::from_us(1),
            exec_end: SimTime::from_us(80),
            packets: 4,
        };
        let incomplete = BurstWindow {
            index: 1,
            first_dma: SimTime::from_ms(10),
            dma_end: SimTime::from_ms(10),
            exec_end: SimTime::from_ms(10),
            packets: 0,
        };
        let bursts = [complete, incomplete];
        assert_eq!(mean_exe_over(bursts.iter(), 0), Some(Duration::from_us(80)));
        assert_eq!(mean_exe_over(bursts.iter(), 1), None);
    }

    #[test]
    fn latency_summary_from_recorder() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(Duration::from_us(i));
        }
        let s = LatencySummary::from_recorder(&mut r).unwrap();
        assert_eq!(s.p50, Duration::from_us(50));
        assert_eq!(s.p99, Duration::from_us(99));
        assert_eq!(s.count, 100);
        let mut empty = LatencyRecorder::new();
        assert!(LatencySummary::from_recorder(&mut empty).is_none());
    }

    #[test]
    fn completions_without_dma_are_ignored() {
        let mut t = BurstTracker::new(Duration::from_ms(1));
        t.record_completion(SimTime::ZERO, SimTime::from_us(5));
        assert!(t.windows().is_empty());
    }
}
