//! The parallel figure-sweep orchestrator.
//!
//! Every paper figure is a *sweep matrix*: dozens of independent
//! [`System`] runs (cells) whose results are assembled into one table.
//! This module turns that matrix into explicit data — a [`SweepCell`] is a
//! labelled [`SystemConfig`], a [`FigureSpec`] is a list of cells plus an
//! assembly function — and executes the cells on a pool of worker threads
//! while keeping the output *bit-identical* to a serial run:
//!
//! * **Deterministic seeding.** Each cell's RNG seed is derived from the
//!   sweep's root seed and a stable FNV-1a hash of the cell *label*
//!   ([`idio_engine::rng::derive_seed`]) — never from thread identity,
//!   scheduling order, or cell position. Renaming a cell changes its seed;
//!   reordering or parallelising the sweep does not.
//! * **Declaration-order reassembly.** Workers claim cells from a shared
//!   cursor, but results are written into a slot table indexed by
//!   declaration position, so the assembled [`FigureResult`]s are
//!   byte-identical at `--jobs 1` and `--jobs N`.
//!
//! Wall-clock per cell is measured and reported via [`CellTiming`] /
//! [`SuiteTiming`] — timing is kept *outside* [`FigureResult`] so the
//! figure output itself stays deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use idio_engine::rng::derive_seed;
use idio_engine::telemetry::MetricsSnapshot;

use crate::config::SystemConfig;
use crate::experiments::FigureResult;
use crate::report::{EventTypeProfile, RunReport};
use crate::system::System;

/// Default root seed of every sweep (matches `SystemConfig`'s default).
pub const DEFAULT_ROOT_SEED: u64 = 0xD10;

/// One cell of a sweep matrix: a label and the configuration to run.
///
/// The label doubles as the cell's identity for seeding, progress
/// reporting, and timing, so it should be unique within a sweep and stable
/// across releases (e.g. `"fig9/100G/IDIO"`).
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Stable, unique identity of the cell within its sweep.
    pub label: String,
    /// The system configuration to run (its `seed` is overwritten by the
    /// orchestrator with the label-derived seed).
    pub cfg: SystemConfig,
}

impl SweepCell {
    /// Creates a cell.
    pub fn new(label: impl Into<String>, cfg: SystemConfig) -> Self {
        SweepCell {
            label: label.into(),
            cfg,
        }
    }
}

/// The result of one executed cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's label.
    pub label: String,
    /// The seed the run actually used (root ⊕ label hash).
    pub seed: u64,
    /// The simulation report.
    pub report: RunReport,
    /// Host wall-clock time of the run.
    pub wall: std::time::Duration,
}

/// Orchestrator knobs.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub jobs: usize,
    /// Root seed every cell seed is derived from.
    pub root_seed: u64,
    /// Print one progress line per finished cell to stderr.
    pub progress: bool,
    /// Measure host wall-clock per event type inside every cell (fed into
    /// [`CellTiming::events`]; dispatch counts are collected either way).
    pub profile_events: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 1,
            root_seed: DEFAULT_ROOT_SEED,
            progress: false,
            profile_events: false,
        }
    }
}

impl SweepOptions {
    /// Serial execution with the default seed (the legacy behaviour).
    pub fn serial() -> Self {
        SweepOptions::default()
    }

    /// Resolves `jobs == 0` to the host's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// Per-cell wall-clock entry of a timing report.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// The cell's label.
    pub label: String,
    /// Host wall-clock of the cell's simulation.
    pub wall: std::time::Duration,
    /// Engine-loop profile: where the cell's simulation time went, one
    /// entry per event type. Wall-clock components are zero unless
    /// [`SweepOptions::profile_events`] was set.
    pub events: Vec<EventTypeProfile>,
}

/// Per-figure timing: the figure's cells plus their summed cost.
#[derive(Debug, Clone)]
pub struct FigureTiming {
    /// Figure identifier (e.g. `"fig9"`).
    pub id: &'static str,
    /// One entry per cell, in declaration order.
    pub cells: Vec<CellTiming>,
}

impl FigureTiming {
    /// Sum of the figure's cell wall-clocks (CPU cost, not elapsed time).
    pub fn cpu_total(&self) -> std::time::Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }
}

/// Timing summary of a whole suite run.
#[derive(Debug, Clone)]
pub struct SuiteTiming {
    /// Wall-clock of the complete sweep (cells + assembly), as elapsed.
    pub wall: std::time::Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Root seed of the sweep.
    pub root_seed: u64,
    /// Per-figure breakdowns, in declaration order.
    pub figures: Vec<FigureTiming>,
}

impl SuiteTiming {
    /// Summed per-cell CPU cost across all figures. The ratio
    /// `cpu_total / wall` approximates the achieved parallel speedup.
    pub fn cpu_total(&self) -> std::time::Duration {
        self.figures.iter().map(FigureTiming::cpu_total).sum()
    }
}

/// An order-preserving parallel map: applies `f` to every item on up to
/// `jobs` worker threads and returns the outputs in input order.
///
/// Each item is claimed exactly once via a shared cursor; the output
/// position of an item is its input position regardless of which worker
/// ran it or when it finished. With `jobs <= 1` (or a single item) the map
/// degenerates to a plain sequential loop on the caller's thread.
///
/// # Panics
///
/// Panics (propagated) if `f` panics on any item.
///
/// # Examples
///
/// ```
/// use idio_core::sweep::parallel_map;
///
/// let doubled = parallel_map(vec![1, 2, 3, 4], 8, |_, x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8]);
/// ```
pub fn parallel_map<I, O, F>(items: Vec<I>, jobs: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("cell slot lock")
                    .take()
                    .expect("each cell is claimed exactly once");
                let out = f(i, item);
                *results[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot lock")
                .expect("every claimed cell produced a result")
        })
        .collect()
}

/// Executes a batch of cells on the worker pool, returning outcomes in
/// declaration order.
///
/// Each cell's config gets its seed overwritten with
/// `derive_seed(root_seed, label)` before the run, making the outcome a
/// pure function of `(cell, root_seed)` — independent of `jobs`.
pub fn run_cells(cells: Vec<SweepCell>, opts: &SweepOptions) -> Vec<CellOutcome> {
    run_cells_map(cells, opts, |_, outcome| outcome)
}

/// [`run_cells`] with a per-cell fold applied *on the worker thread*: the
/// full [`CellOutcome`] (report, metrics, histograms) is reduced to `O`
/// the moment the cell finishes and dropped before the next cell is
/// claimed, so a sweep of `N` cells holds at most `jobs` full reports in
/// memory at once plus `N` folded values — the sharded-aggregation path
/// large scenario sweeps use to stay O(tenants) instead of
/// O(cells × histograms).
///
/// `f` receives the cell's declaration index and its outcome; the folded
/// values are returned in declaration order, so the result is exactly
/// `run_cells(...)` mapped through `f` — byte-identical at any
/// [`SweepOptions::jobs`].
pub fn run_cells_map<O, F>(cells: Vec<SweepCell>, opts: &SweepOptions, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize, CellOutcome) -> O + Sync,
{
    let total = cells.len();
    let done = AtomicUsize::new(0);
    let progress = opts.progress;
    let profile_events = opts.profile_events;
    let root = opts.root_seed;
    parallel_map(cells, opts.effective_jobs(), move |i, cell| {
        let SweepCell { label, mut cfg } = cell;
        let seed = derive_seed(root, &label);
        cfg.seed = seed;
        if profile_events {
            cfg.profile_events = true;
        }
        let t0 = Instant::now();
        let report = System::new(cfg).run();
        let wall = t0.elapsed();
        if progress {
            let k = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!("[{k}/{total}] {label} ({wall:.1?})");
        }
        f(
            i,
            CellOutcome {
                label,
                seed,
                report,
                wall,
            },
        )
    })
}

/// The assembly stage of a figure: outcomes in declaration order → table.
type AssembleFn = Box<dyn FnOnce(&[CellOutcome]) -> FigureResult>;

/// A declared figure: its cells plus the function that assembles the
/// executed cells into the printable [`FigureResult`].
///
/// The assembly function receives the outcomes in *declaration order* and
/// must be a pure function of them (it runs on the coordinating thread,
/// after all of the figure's cells finished).
pub struct FigureSpec {
    /// Figure identifier (e.g. `"fig9"`).
    pub id: &'static str,
    /// The sweep cells, in declaration order.
    pub cells: Vec<SweepCell>,
    assemble: AssembleFn,
}

impl std::fmt::Debug for FigureSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FigureSpec")
            .field("id", &self.id)
            .field("cells", &self.cells.len())
            .finish()
    }
}

impl FigureSpec {
    /// Declares a figure.
    pub fn new(
        id: &'static str,
        cells: Vec<SweepCell>,
        assemble: impl FnOnce(&[CellOutcome]) -> FigureResult + 'static,
    ) -> Self {
        debug_assert!(
            {
                let mut labels: Vec<&str> = cells.iter().map(|c| c.label.as_str()).collect();
                labels.sort_unstable();
                labels.windows(2).all(|w| w[0] != w[1])
            },
            "cell labels within a figure must be unique ({id})"
        );
        FigureSpec {
            id,
            cells,
            assemble: Box::new(assemble),
        }
    }

    /// Runs this figure's cells serially with default options and
    /// assembles the result — the drop-in replacement for the legacy
    /// inline-loop figure drivers.
    pub fn run_serial(self) -> FigureResult {
        self.run(&SweepOptions::serial()).0
    }

    /// Runs this figure's cells under `opts` and assembles the result.
    pub fn run(self, opts: &SweepOptions) -> (FigureResult, FigureTiming) {
        let id = self.id;
        let outcomes = run_cells(self.cells, opts);
        let timing = FigureTiming {
            id,
            cells: outcomes.iter().map(cell_timing).collect(),
        };
        ((self.assemble)(&outcomes), timing)
    }
}

fn cell_timing(o: &CellOutcome) -> CellTiming {
    CellTiming {
        label: o.label.clone(),
        wall: o.wall,
        events: o.report.profile.clone(),
    }
}

/// Final telemetry of one executed cell, in declaration order within a
/// suite run (see [`run_figures_detailed`]).
#[derive(Debug, Clone)]
pub struct CellMetrics {
    /// The cell's label.
    pub label: String,
    /// The cell's final [`MetricsSnapshot`] (deterministic).
    pub metrics: MetricsSnapshot,
}

/// A suite run's complete output: assembled figures, per-cell telemetry,
/// and timing.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// Assembled figures, in declaration order.
    pub figures: Vec<FigureResult>,
    /// Per-cell metrics across all figures, in declaration order.
    pub cells: Vec<CellMetrics>,
    /// Timing summary (host noise; keep on stderr).
    pub timing: SuiteTiming,
}

/// Runs a whole suite of figures over one shared worker pool.
///
/// All cells of all figures are flattened into a single batch so that a
/// figure with one long-running cell does not serialise the sweep; results
/// are regrouped per figure and assembled in declaration order.
pub fn run_figures(
    specs: Vec<FigureSpec>,
    opts: &SweepOptions,
) -> (Vec<FigureResult>, SuiteTiming) {
    let out = run_figures_detailed(specs, opts);
    (out.figures, out.timing)
}

/// [`run_figures`] plus each cell's final metrics snapshot (the
/// `repro --metrics` data source).
pub fn run_figures_detailed(specs: Vec<FigureSpec>, opts: &SweepOptions) -> SuiteOutcome {
    let t0 = Instant::now();
    // Flatten (figure index, cell) pairs, remembering each figure's span.
    let mut flat = Vec::new();
    let mut spans = Vec::with_capacity(specs.len());
    for spec in &specs {
        let start = flat.len();
        flat.extend(spec.cells.iter().cloned());
        spans.push(start..flat.len());
    }
    let outcomes = run_cells(flat, opts);
    let cells = outcomes
        .iter()
        .map(|o| CellMetrics {
            label: o.label.clone(),
            metrics: o.report.metrics.clone(),
        })
        .collect();

    let mut figures = Vec::with_capacity(specs.len());
    let mut timings = Vec::with_capacity(specs.len());
    for (spec, span) in specs.into_iter().zip(spans) {
        let mine = &outcomes[span];
        timings.push(FigureTiming {
            id: spec.id,
            cells: mine.iter().map(cell_timing).collect(),
        });
        figures.push((spec.assemble)(mine));
    }
    let timing = SuiteTiming {
        wall: t0.elapsed(),
        jobs: opts.effective_jobs(),
        root_seed: opts.root_seed,
        figures: timings,
    };
    SuiteOutcome {
        figures,
        cells,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_engine::time::{Duration, SimTime};
    use idio_net::gen::TrafficPattern;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg =
            SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 5.0 });
        cfg.duration = SimTime::from_us(50);
        cfg.drain_grace = Duration::from_us(50);
        cfg
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..64).collect::<Vec<_>>(), 8, |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_with_zero_items_is_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn cell_seeds_are_label_derived_not_position_derived() {
        let cells = vec![
            SweepCell::new("a", tiny_cfg()),
            SweepCell::new("b", tiny_cfg()),
        ];
        let swapped = vec![
            SweepCell::new("b", tiny_cfg()),
            SweepCell::new("a", tiny_cfg()),
        ];
        let out1 = run_cells(cells, &SweepOptions::serial());
        let out2 = run_cells(swapped, &SweepOptions::serial());
        assert_eq!(out1[0].seed, out2[1].seed, "seed follows the label");
        assert_eq!(out1[1].seed, out2[0].seed);
        assert_ne!(out1[0].seed, out1[1].seed);
    }

    #[test]
    fn outcomes_are_identical_across_worker_counts() {
        let mk = || {
            (0..6)
                .map(|i| SweepCell::new(format!("cell{i}"), tiny_cfg()))
                .collect::<Vec<_>>()
        };
        let serial = run_cells(mk(), &SweepOptions::serial());
        let parallel = run_cells(
            mk(),
            &SweepOptions {
                jobs: 4,
                ..SweepOptions::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.report.totals, p.report.totals);
        }
    }

    #[test]
    fn run_cells_map_folds_on_workers_in_declaration_order() {
        let mk = || {
            (0..6)
                .map(|i| SweepCell::new(format!("cell{i}"), tiny_cfg()))
                .collect::<Vec<_>>()
        };
        // The folded value keeps only a tiny summary; compare against the
        // unfolded path to prove the fold sees the same outcomes.
        let full = run_cells(mk(), &SweepOptions::serial());
        let folded = run_cells_map(
            mk(),
            &SweepOptions {
                jobs: 4,
                ..SweepOptions::default()
            },
            |i, o| (i, o.label.clone(), o.seed, o.report.totals.rx_packets),
        );
        assert_eq!(full.len(), folded.len());
        for (i, (fi, label, seed, rx)) in folded.iter().enumerate() {
            assert_eq!(i, *fi);
            assert_eq!(&full[i].label, label);
            assert_eq!(full[i].seed, *seed);
            assert_eq!(full[i].report.totals.rx_packets, *rx);
        }
    }

    #[test]
    fn figure_spec_assembles_in_declaration_order() {
        let cells = vec![
            SweepCell::new("first", tiny_cfg()),
            SweepCell::new("second", tiny_cfg()),
        ];
        let spec = FigureSpec::new("test", cells, |outcomes| {
            let mut f = FigureResult::new("test", "order", &["label"]);
            for o in outcomes {
                f.push_row(vec![o.label.clone()]);
            }
            f
        });
        let fig = spec.run_serial();
        assert_eq!(
            fig.rows,
            vec![vec!["first".to_string()], vec!["second".to_string()]]
        );
    }
}
