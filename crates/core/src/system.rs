//! The full-system simulator: NIC ⇄ IDIO controller ⇄ cache hierarchy ⇄
//! cores ⇄ DRAM, driven by a single deterministic event queue.
//!
//! One [`System`] instance runs one experiment configuration end to end:
//! traffic generators emit packet arrivals; the NIC steers, classifies and
//! paces DMA; every DMA line write consults the IDIO controller for its
//! placement; polling cores consume descriptor rings in batches and execute
//! their NF's per-packet memory program against the hierarchy; and the
//! statistics machinery samples the counters every 10 µs into the timelines
//! the paper's figures are drawn from.

use std::collections::VecDeque;
use std::fmt;

use idio_cache::addr::{Addr, CoreId, LineAddr, LINE_SIZE};
use idio_cache::hierarchy::{DmaPlacement, Hierarchy, HitLevel, MemEffects};
use idio_cache::maintenance::{allocate_invalidatable, invalidate_range, PageTable};
use idio_engine::queue::EventQueue;
use idio_engine::rng::SimRng;
use idio_engine::stats::{LatencyRecorder, RateSampler};
use idio_engine::telemetry::{Histogram, MetricsRegistry, Tracer, DEFAULT_TRACE_CAPACITY};
use idio_engine::time::{Duration, SimTime};
use idio_mem::{DramModel, DramOp};
use idio_net::gen::{Arrival, FlowSet, FlowSpec, MultiFlowGen, TrafficGen, TrafficPattern};
use idio_net::packet::Packet;
use idio_nic::flow_director::{QueueId, SteeringSource};
use idio_nic::nic::{Nic, NicConfig, RingLayout};
use idio_nic::ring::RxSlot;
use idio_nic::tlp::TlpMeta;
use idio_nic::tx::TxRing;
use idio_pool::{BufPool, PoolMode};
use idio_stack::antagonist::{AntagonistConfig, LlcAntagonist};
use idio_stack::nf::{ChainStage, MemOp, NfKind, PacketAction, PacketCtx, PacketWork};
use idio_stack::timing::CoreTiming;

use crate::config::{FlowSteering, SystemConfig};
use crate::controller::{CatConfig, CatController, IdioController, Placement};
use crate::fsm::MlcStatus;
use crate::layout::{AddressMap, QueueRegions};
use crate::policy::{CatMode, PolicyCaps, PolicyTable};
use crate::prefetcher::{HintArena, MlcPrefetcher};
use crate::report::{
    BurstTracker, EventTypeProfile, LatencySummary, RunReport, RunTotals, Timelines,
};

/// Events of the full-system simulation.
#[derive(Debug, Clone)]
enum Event {
    /// The next packet of traffic generator `gen` arrives at the NIC.
    Arrival { gen: usize },
    /// The inbound PCIe line writes of one packet's payload, batched.
    ///
    /// Scheduled at the first line's arrival; the handler applies each
    /// line at its own timestamp (`first + gap * i`), yielding via a
    /// continuation whenever an interleaved event sorts earlier, so the
    /// observable ordering is identical to the per-line events this
    /// replaces — the continuation keeps `batch_seq`, the batch's
    /// original queue sequence number, as its tie-break.
    DmaPacket {
        /// First buffer line; line `i` is `buf_line + i`.
        buf_line: LineAddr,
        /// Header-line TLP metadata; payload-line metadata is derived.
        meta: TlpMeta,
        arrival: SimTime,
        /// Per-queue packet sequence number (for CPU-paced prefetching).
        seq: u64,
        /// Time line 0 reaches the root complex.
        first: SimTime,
        /// Gap between consecutive lines.
        gap: Duration,
        /// Total payload lines.
        lines: u32,
        /// Index of the next line to apply (continuation resume point).
        next: u32,
        /// The batch's original queue sequence number.
        batch_seq: u64,
        /// Resolved steering-policy domain of the packet's queue.
        domain: u16,
    },
    /// A descriptor writeback becomes visible to the polling driver.
    DescWriteback { queue: QueueId, slot: u32 },
    /// A core's MLC prefetcher issues its next queued prefetch.
    PrefetchIssue { core: usize },
    /// A core wakes: finishes the in-flight packet and/or polls for more.
    CoreWake { core: usize },
    /// The NIC finished reading a forwarded packet out of memory.
    TxComplete {
        queue: QueueId,
        buf: Addr,
        lines: u32,
        arrival: SimTime,
        flow: idio_net::packet::FiveTuple,
    },
    /// The antagonist's next dependent access.
    AntagonistNext,
    /// IDIO control-plane 1 µs tick.
    ControlTick,
    /// Statistics sampling tick (10 µs).
    SampleTick,
}

impl Event {
    /// Number of event types (length of [`Event::NAMES`]).
    const TYPES: usize = 9;

    /// Stable event-type names, indexed by [`Event::type_index`]. These
    /// appear in trace output, metrics (`engine.events.<name>`), and the
    /// `--timings` profile, so they must not change across releases.
    const NAMES: [&'static str; Event::TYPES] = [
        "arrival",
        "dma_line",
        "desc_writeback",
        "prefetch_issue",
        "core_wake",
        "tx_complete",
        "antagonist",
        "control_tick",
        "sample_tick",
    ];

    fn type_index(&self) -> usize {
        match self {
            Event::Arrival { .. } => 0,
            // The batch event keeps the per-line name: the handler bumps
            // the count by the extra lines it applies, so the
            // `engine.events.dma_line` metric still counts DMA lines.
            Event::DmaPacket { .. } => 1,
            Event::DescWriteback { .. } => 2,
            Event::PrefetchIssue { .. } => 3,
            Event::CoreWake { .. } => 4,
            Event::TxComplete { .. } => 5,
            Event::AntagonistNext => 6,
            Event::ControlTick => 7,
            Event::SampleTick => 8,
        }
    }
}

/// The unpacked fields of an [`Event::DmaPacket`] minus the resume
/// point — the batch identity that continuations carry forward.
#[derive(Debug, Clone, Copy)]
struct DmaBatch {
    buf_line: LineAddr,
    meta: TlpMeta,
    arrival: SimTime,
    seq: u64,
    first: SimTime,
    gap: Duration,
    lines: u32,
    batch_seq: u64,
    domain: u16,
}

/// A packet-arrival stream: analytic single-flow generator (legacy
/// one-flow-per-workload wiring), multi-flow tenant generator, or trace
/// replay.
enum ArrivalSource {
    Gen(Box<TrafficGen>),
    Multi(Box<MultiFlowGen>),
    Replay(std::vec::IntoIter<Arrival>),
}

impl Iterator for ArrivalSource {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        match self {
            ArrivalSource::Gen(g) => g.next(),
            ArrivalSource::Multi(g) => g.next(),
            ArrivalSource::Replay(it) => it.next(),
        }
    }
}

/// Flow-director bookkeeping for one streaming tenant: the flow set its
/// arrivals derive from, its queue group, and which flow slots the driver
/// holds perfect filters for.
struct FdTenant {
    set: FlowSet,
    queues: Vec<QueueId>,
    /// Pinned flow slots with the flow index last installed for each —
    /// the driver's view of its own filters. Under churn, a slot whose
    /// live index moved past the pinned one is refreshed at the next
    /// control tick (install the new incarnation, evicting if full).
    pinned: Vec<(u32, u32)>,
}

/// Flow-director-pressure accounting (active only when some tenant's flow
/// population can outrun the NIC's steering state: wide/churning flow
/// sets or more flows than perfect-filter budget). Tracks, per *home*
/// queue, how arrivals were actually steered — and how many landed on the
/// wrong queue and therefore polluted the wrong core's caches.
struct FdState {
    /// One entry per arrival source; `None` for replay tenants (their
    /// flows are not derivable, so they keep the legacy pin-all path).
    tenants: Vec<Option<FdTenant>>,
    /// Per home queue: `[perfect, atr, collision, rss, mis_steered]`
    /// packet counts.
    mix: Vec<[u64; 5]>,
}

impl FdState {
    /// The tenant and home queue a five-tuple belongs to (O(1) per
    /// tenant: streaming sets are invertible).
    fn home_of(&self, flow: &idio_net::packet::FiveTuple) -> Option<QueueId> {
        for t in self.tenants.iter().flatten() {
            if let Some(slot) = t.set.slot_of(flow) {
                return Some(t.queues[slot as usize % t.queues.len()]);
            }
        }
        None
    }
}

/// An NF-path event was dispatched to a core with no NF configured on it.
///
/// Every queue is pinned to exactly one NF core at construction, so this can
/// only happen when the configuration is mis-wired (a workload pinned to one
/// core while its events address another). The error names both the core and
/// the event being handled so the mismatch is directly actionable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnconfiguredNfCore {
    /// The core the event addressed.
    pub core: usize,
    /// The event being handled when the lookup failed.
    pub event: &'static str,
}

impl fmt::Display for UnconfiguredNfCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} event dispatched to core{}, but no NF is configured there \
             (check the workload core pinning in SystemConfig::workloads)",
            self.event, self.core
        )
    }
}

impl std::error::Error for UnconfiguredNfCore {}

/// Per-NF-core runtime state.
#[derive(Debug)]
struct NfState {
    kind: NfKind,
    queue: QueueId,
    regions: QueueRegions,
    busy: bool,
    batch: VecDeque<RxSlot>,
    current: Option<(RxSlot, PacketAction)>,
    latency: LatencyRecorder,
    /// End-to-end packet latency (arrival → completion) in nanoseconds,
    /// log2-bucketed; exported as `core{i}.pkt_latency_ns` (the scenario
    /// report's percentile source).
    lat_hist: Histogram,
    /// Per-stage service time for chained NFs, indexed by
    /// [`ChainStage::index`]; exported as `core{i}.stage.<name>_ns` only
    /// for stages that ran, so single-NF cores add no metrics.
    stage_hist: [Histogram; ChainStage::ALL.len()],
    /// Reusable per-packet program buffer: one NF program runs per packet,
    /// so building it in place removes a `Vec<MemOp>` allocation from the
    /// hot path.
    scratch: PacketWork,
    completed: u64,
    /// Packets received on this queue (CPU-paced prefetch sequencing).
    rx_seq: u64,
    /// Packets fully consumed (the "CPU pointer" of Fig. 3).
    done_seq: u64,
    /// Transmit descriptor ring (egress path of forwarding NFs).
    tx_ring: TxRing,
}

struct Samplers {
    mlc_wb: RateSampler,
    llc_wb: RateSampler,
    dram_rd: RateSampler,
    dram_wr: RateSampler,
    dma_wr: RateSampler,
    prefetch: RateSampler,
    self_inval: RateSampler,
    dma_llc_share: idio_engine::stats::TimeSeries,
}

impl Samplers {
    fn new(interval: Duration) -> Self {
        Samplers {
            mlc_wb: RateSampler::new("mlc_wb", interval),
            llc_wb: RateSampler::new("llc_wb", interval),
            dram_rd: RateSampler::new("dram_rd", interval),
            dram_wr: RateSampler::new("dram_wr", interval),
            dma_wr: RateSampler::new("dma_wr", interval),
            prefetch: RateSampler::new("prefetch", interval),
            self_inval: RateSampler::new("self_inval", interval),
            dma_llc_share: idio_engine::stats::TimeSeries::new("dma_llc_share"),
        }
    }
}

/// The full-system simulator.
///
/// # Examples
///
/// ```
/// use idio_core::config::SystemConfig;
/// use idio_core::policy::SteeringPolicy;
/// use idio_core::system::System;
/// use idio_engine::time::SimTime;
/// use idio_net::gen::TrafficPattern;
///
/// let mut cfg = SystemConfig::touchdrop_scenario(
///     1,
///     TrafficPattern::Steady { rate_gbps: 5.0 },
/// );
/// cfg.duration = SimTime::from_us(200);
/// let report = System::new(cfg).run();
/// assert!(report.totals.completed_packets > 0);
/// ```
pub struct System {
    cfg: SystemConfig,
    queue: EventQueue<Event>,
    hier: Hierarchy,
    dram: DramModel,
    nic: Nic,
    page_table: PageTable,
    ctrl: IdioController,
    prefetchers: Vec<MlcPrefetcher>,
    timing: CoreTiming,
    nf: Vec<Option<NfState>>,
    antagonist: Option<(CoreId, LlcAntagonist)>,
    gens: Vec<ArrivalSource>,
    pending_arrival: Vec<Option<Packet>>,
    samplers: Samplers,
    bursts: Option<BurstTracker>,
    /// Per-core burst trackers (exported as `core<i>.burst_exe_ns`).
    core_bursts: Vec<BurstTracker>,
    hard_stop: SimTime,
    /// Line-address ranges of all DMA buffer pools (bloat classification).
    dma_line_ranges: Vec<(u64, u64)>,
    /// Sample ticks seen (the occupancy gauge samples every 10th tick).
    sample_ticks: u64,
    /// Resolved layered policy table: system default → per-tenant →
    /// per-queue, interned into dense policy domains (see
    /// [`SystemConfig::policy_table`]). The hot path indexes it by the
    /// domain id the NIC stamped into the packet's DMA plan.
    policy: PolicyTable,
    /// IAT way-tuner state, one slot per policy domain: (control ticks,
    /// LLC-WB snapshot, quiet streak). Only domains whose caps tune the
    /// DDIO ways ever advance their slot, so an IAT tenant's tuner state
    /// is isolated from coexisting non-IAT tenants.
    iat: Vec<(u64, u64, u32)>,
    /// Closed-loop CAT way allocator; present only when some policy
    /// domain asked for `cat = auto`.
    cat: Option<CatController>,
    /// First policy domain hosted on each core (by queue order); `None`
    /// for cores without a queue. Maps per-core MLC-WB counters onto
    /// per-domain pressure for the CAT loop, and picks each core's mask.
    core_domain: Vec<Option<u16>>,
    /// DDIO width the CAT masks were last planned against; the IAT tuner
    /// moving the partition boundary forces a re-plan.
    cat_ddio: usize,
    /// Run-level metrics registry (exported via [`RunReport::metrics`]).
    metrics: MetricsRegistry,
    /// Bounded event tracer (filter from [`SystemConfig::trace`]).
    tracer: Tracer,
    /// Per-event-type dispatch counts (deterministic).
    ev_counts: [u64; Event::TYPES],
    /// Per-event-type handler wall-clock (only with `profile_events`).
    ev_wall: [std::time::Duration; Event::TYPES],
    /// Steering decisions by placement, per destination core: `[LLC, MLC,
    /// DRAM]` line counts (summed into the global `steer.*` metrics;
    /// exported per core as `core{i}.steer.*` for tenant attribution).
    steer: Vec<[u64; 3]>,
    /// Arena-backed parked-hint rings (CPU-paced prefetch pacing): one
    /// fixed-capacity FIFO per core carved from a single allocation,
    /// replacing the per-core `VecDeque` queues. Zero-capacity (and
    /// allocation-free) under the default queued pacing.
    hints: HintArena,
    /// Control-tick scratch: the per-core MLC-WB snapshot, refilled in
    /// place every tick so the 1 µs control loop never allocates.
    ctrl_wbs: Vec<u64>,
    /// Control-tick scratch: per-domain writeback pressure for the CAT
    /// loop, folded in the same per-core pass that fills `ctrl_wbs`.
    ctrl_domain_wb: Vec<u64>,
    /// Control-tick scratch: pre-tick FSM statuses (only filled while the
    /// `fsm` tracer is on).
    ctrl_fsm_before: Vec<MlcStatus>,
    /// Per-control-tick `metrics.delta` NDJSON lines (only with
    /// [`SystemConfig::tick_metrics`]); exported via
    /// [`RunReport::tick_metrics`].
    tick_log: Vec<String>,
    /// Steering-mix totals at the previous control tick (delta source for
    /// the tick log).
    tick_last_steer: [u64; 3],
    /// Flow-director-pressure accounting; `None` whenever every tenant's
    /// flows fit the NIC's steering state (legacy behavior, no new
    /// metrics).
    fd: Option<FdState>,
    /// Flow-director mix totals at the previous control tick (delta
    /// source for the tick log's `fd` section).
    tick_last_fd: [u64; 5],
    /// Per-queue last pool activity (RX accept or buffer release), for
    /// the idle-flush window.
    pool_last_active: Vec<SimTime>,
    /// Whether each queue's pool is currently flushed (idle); cleared on
    /// the next activity.
    pool_flushed: Vec<bool>,
    /// Per-queue idle-flush count (`pool.q{q}.idle_flushed`).
    pool_idle_flushed: Vec<u64>,
}

impl System {
    /// Builds the system: lays out memory, wires components, warms caches,
    /// and schedules the initial events.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SystemConfig::validate`]).
    pub fn new(cfg: SystemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid system config: {e}");
        }
        // Per-core state (controller FSMs, prefetchers, NF slots, steering
        // counters) is sized by the *hierarchy's* core count, which may
        // exceed the workload-derived count when a config deliberately
        // keeps spare cores (e.g. a tenant's solo run on the full mixed
        // hierarchy); the control tick feeds one counter per hierarchy
        // core, so the two must agree.
        let effective_hierarchy = cfg.effective_hierarchy();
        let num_cores = effective_hierarchy.num_cores;
        let mut hier = Hierarchy::new(effective_hierarchy);
        let mut dram = DramModel::new(cfg.dram);
        let mut page_table = PageTable::new();
        let mut rng = SimRng::seed_from(cfg.seed);

        // --- address map & NIC ------------------------------------------------
        let mut map = AddressMap::new();
        let mut layouts = Vec::new();
        let mut regions = Vec::new();
        for _ in &cfg.workloads {
            let q = map.alloc_queue(cfg.ring_size);
            layouts.push(RingLayout {
                buf_base: q.buf_base,
                desc_base: q.desc_base,
            });
            regions.push(q);
        }
        let queue_cores: Vec<CoreId> = cfg.workloads.iter().map(|w| w.core).collect();
        // Resolve the policy layers (system default → per-tenant →
        // per-queue) once, into a dense per-queue domain array. The NIC
        // stamps each packet's domain into its DMA plan; the hot path
        // does a single index into the table.
        let policy = cfg.policy_table();
        let mut nic = if cfg.workloads.is_empty() {
            // Antagonist-only runs still need a (dormant) NIC.
            let q = map.alloc_queue(cfg.ring_size);
            Nic::new(
                NicConfig {
                    ring_size: cfg.ring_size,
                    queue_core: vec![CoreId::new(0)],
                    classifier: cfg.classifier.clone(),
                    dma: cfg.dma,
                    perfect_filter_entries: cfg.perfect_filter_entries,
                    filter_table_entries: idio_nic::flow_director::DEFAULT_FILTER_TABLE_ENTRIES,
                    atr_lifetime: cfg.atr_lifetime,
                    queue_policy_domain: vec![0],
                },
                vec![RingLayout {
                    buf_base: q.buf_base,
                    desc_base: q.desc_base,
                }],
            )
        } else {
            Nic::new(
                NicConfig {
                    ring_size: cfg.ring_size,
                    queue_core: queue_cores,
                    classifier: cfg.classifier.clone(),
                    dma: cfg.dma,
                    perfect_filter_entries: cfg.perfect_filter_entries,
                    filter_table_entries: idio_nic::flow_director::DEFAULT_FILTER_TABLE_ENTRIES,
                    atr_lifetime: cfg.atr_lifetime,
                    queue_policy_domain: policy.queue_domains().to_vec(),
                },
                layouts,
            )
        };

        // --- traffic generators & flow pinning --------------------------------
        let mut gens = Vec::new();
        let mut fd: Option<FdState> = None;
        if cfg.tenants.is_empty() {
            // Legacy wiring: one flow per workload, pinned to its queue.
            for (qi, w) in cfg.workloads.iter().enumerate() {
                if let Some(arrivals) = cfg.trace_replays.get(&qi) {
                    // Replay: pin every flow appearing in the trace to this
                    // workload's queue, and clip to the traffic horizon.
                    let clipped: Vec<Arrival> = arrivals
                        .iter()
                        .copied()
                        .take_while(|a| a.at < cfg.duration)
                        .collect();
                    if cfg.steering == FlowSteering::Perfect {
                        let mut seen = std::collections::HashSet::new();
                        for a in &clipped {
                            if seen.insert(a.packet.flow) {
                                nic.flow_director_mut()
                                    .install_perfect(a.packet.flow, QueueId(qi as u16));
                            }
                        }
                    }
                    gens.push(ArrivalSource::Replay(clipped.into_iter()));
                } else {
                    let flow =
                        FlowSpec::udp_to_port(5000 + qi as u16, w.packet_len).with_dscp(w.dscp);
                    if cfg.steering == FlowSteering::Perfect {
                        nic.flow_director_mut()
                            .install_perfect(flow.tuple, QueueId(qi as u16));
                    }
                    gens.push(ArrivalSource::Gen(Box::new(TrafficGen::new(
                        flow,
                        w.traffic,
                        cfg.duration,
                    ))));
                }
            }
        } else {
            // Tenant wiring: one aggregate source per tenant, its flows
            // spread round-robin over the tenant's queues via the flow
            // director (or left to RSS/ATR learning). Flow populations
            // stream from a `FlowSet` — five-tuples derived on demand, so
            // memory stays O(1) at any flow count. Perfect-filter slots
            // are a shared resource: each tenant may pin at most its
            // equal share of the NIC's table, sampled evenly across its
            // flow index space; the rest of its flows steer via ATR
            // learning and RSS (Sec. II-C's capacity pressure).
            let pin_budget = (cfg.perfect_filter_entries / cfg.tenants.len()).max(1);
            let mut fd_tenants: Vec<Option<FdTenant>> = Vec::new();
            let mut fd_active = false;
            for (ti, t) in cfg.tenants.iter().enumerate() {
                let queues: Vec<QueueId> =
                    t.workloads.iter().map(|&wi| QueueId(wi as u16)).collect();
                if let Some(arrivals) = &t.replay {
                    let clipped: Vec<Arrival> = arrivals
                        .iter()
                        .copied()
                        .take_while(|a| a.at < cfg.duration)
                        .collect();
                    if cfg.steering == FlowSteering::Perfect {
                        // Pin first-seen flows round-robin across the
                        // tenant's queues.
                        let mut seen = std::collections::HashSet::new();
                        let mut next = 0usize;
                        for a in &clipped {
                            if seen.insert(a.packet.flow) {
                                nic.flow_director_mut()
                                    .install_perfect(a.packet.flow, queues[next % queues.len()]);
                                next += 1;
                            }
                        }
                    }
                    fd_tenants.push(None);
                    gens.push(ArrivalSource::Replay(clipped.into_iter()));
                } else {
                    let mut set =
                        FlowSet::new(ti as u16, t.flows, t.base_port, t.packet_len, t.dscp)
                            .with_train(t.train);
                    if let Some(life) = t.churn {
                        set = set.with_churn(life);
                    }
                    let pins = (t.flows as usize).min(pin_budget) as u32;
                    let mut pinned = Vec::with_capacity(pins as usize);
                    if cfg.steering == FlowSteering::Perfect {
                        for p in 0..u64::from(pins) {
                            // Stride the pins across the whole index space
                            // so perfect coverage interleaves with
                            // ATR/RSS-steered flows instead of truncating
                            // at the budget boundary.
                            let slot = (p * u64::from(t.flows) / u64::from(pins)) as u32;
                            let q = queues[slot as usize % queues.len()];
                            nic.flow_director_mut()
                                .install_perfect(set.tuple_of(slot), q);
                            pinned.push((slot, slot));
                        }
                    }
                    if set.is_wide() || t.flows as usize > pin_budget {
                        fd_active = true;
                    }
                    fd_tenants.push(Some(FdTenant {
                        set,
                        queues,
                        pinned,
                    }));
                    gens.push(ArrivalSource::Multi(Box::new(MultiFlowGen::streaming(
                        set,
                        t.traffic,
                        cfg.duration,
                    ))));
                }
            }
            if fd_active {
                fd = Some(FdState {
                    tenants: fd_tenants,
                    mix: vec![[0; 5]; cfg.workloads.len()],
                });
            }
        }

        // --- explicit mbuf pools ------------------------------------------------
        // RDCA sizing: a queue's pool budget is its equal share of the
        // DDIO partition, so a Recycle pool's working set fits inside the
        // I/O ways it recycles through. Dram pools carry the same budget
        // for spill accounting only. Geometry is fixed at construction;
        // the IAT tuner moving the boundary later does not resize pools.
        let lines_per_buf = (idio_nic::ring::DEFAULT_BUF_BYTES / LINE_SIZE) as u32;
        let pool_budget = {
            let h = hier.config();
            let ddio_lines = h.llc.lines() * h.ddio_ways as u64 / h.llc.ways as u64;
            (ddio_lines / cfg.workloads.len().max(1) as u64).max(u64::from(lines_per_buf))
        };

        // --- per-core software state -------------------------------------------
        let mut nf: Vec<Option<NfState>> = (0..num_cores).map(|_| None).collect();
        for (qi, w) in cfg.workloads.iter().enumerate() {
            // Kernel-allocates the DMA buffers as Invalidatable pages.
            allocate_invalidatable(
                &mut page_table,
                &mut hier,
                regions[qi].buf_base,
                u64::from(cfg.ring_size) * idio_nic::ring::DEFAULT_BUF_BYTES,
            );
            if let Some(spec) = w.pool {
                let mode = spec.resolve(pool_budget, lines_per_buf, cfg.ring_size);
                nic.ring_mut(QueueId(qi as u16)).install_pool(BufPool::new(
                    mode,
                    regions[qi].buf_base,
                    idio_nic::ring::DEFAULT_BUF_BYTES,
                    lines_per_buf,
                    pool_budget,
                ));
            }
            nf[w.core.index()] = Some(NfState {
                kind: w.kind,
                queue: QueueId(qi as u16),
                regions: regions[qi],
                busy: false,
                batch: VecDeque::new(),
                current: None,
                latency: LatencyRecorder::new(),
                lat_hist: Histogram::new(),
                stage_hist: std::array::from_fn(|_| Histogram::new()),
                scratch: PacketWork::empty(),
                completed: 0,
                rx_seq: 0,
                done_seq: 0,
                tx_ring: TxRing::new(cfg.ring_size, regions[qi].tx_desc_base),
            });
        }

        // --- antagonist ---------------------------------------------------------
        let antagonist = cfg.antagonist.map(|spec| {
            let base = map.alloc(spec.buffer_bytes);
            let ant = LlcAntagonist::new(
                AntagonistConfig {
                    base,
                    size_bytes: spec.buffer_bytes,
                    think_cycles: spec.think_cycles,
                },
                rng.fork(1),
            );
            (spec.core, ant)
        });

        // Warm-up: the antagonist initialises its buffer (Sec. VI), then all
        // statistics start from zero.
        if let Some((core, ant)) = &antagonist {
            let lines: Vec<LineAddr> = ant.warmup_lines().collect();
            for l in lines {
                hier.cpu_write(*core, l);
            }
        }
        hier.reset_stats();
        dram.reset_stats();

        let ctrl = IdioController::new(cfg.idio, num_cores);
        let prefetchers = (0..num_cores)
            .map(|_| MlcPrefetcher::new(cfg.prefetcher))
            .collect();
        // Parked-hint arena: only CPU-paced pacing ever parks. The ring
        // bound is exact — at most `ring_size` packets are in flight and
        // each parks at most one hint per line of its RX buffer slot.
        let hint_cap = match cfg.prefetcher.pacing {
            crate::prefetcher::PrefetchPacing::CpuPaced { .. } => {
                cfg.ring_size as usize * (idio_nic::ring::DEFAULT_BUF_BYTES / LINE_SIZE) as usize
            }
            crate::prefetcher::PrefetchPacing::Queued => 0,
        };
        let hints = HintArena::new(num_cores, hint_cap);
        let timing = CoreTiming::new(cfg.timing);
        let samplers = Samplers::new(cfg.sample_interval);
        let bursts = cfg.workloads.first().and_then(|w| match w.traffic {
            TrafficPattern::Bursty(spec) => Some(BurstTracker::new(spec.period)),
            TrafficPattern::Steady { .. } | TrafficPattern::Poisson { .. } => None,
        });
        let core_bursts = match &bursts {
            Some(b) => (0..num_cores)
                .map(|_| BurstTracker::new(b.period()))
                .collect(),
            None => Vec::new(),
        };
        let hard_stop = cfg.duration + cfg.drain_grace;

        let dma_line_ranges = regions
            .iter()
            .map(|r| {
                let (lo, hi) = r.buf_range();
                (lo.line().get(), hi.line().get())
            })
            .collect();
        let tracer = if cfg.trace.is_off() {
            Tracer::disabled()
        } else {
            Tracer::new(cfg.trace.clone(), DEFAULT_TRACE_CAPACITY)
        };
        // CAT wiring: map each core to the first policy domain hosted on
        // it (queue order), and stand up the closed-loop allocator when
        // any domain asked for auto management.
        let mut core_domain: Vec<Option<u16>> = vec![None; num_cores];
        for (q, w) in cfg.workloads.iter().enumerate() {
            let slot = &mut core_domain[w.core.index()];
            if slot.is_none() {
                *slot = Some(policy.queue_domain(q));
            }
        }
        let cat = if policy.any_cat_auto() {
            let auto: Vec<bool> = (0..policy.num_domains())
                .map(|d| policy.caps(d as u16).cat == CatMode::Auto)
                .collect();
            Some(CatController::new(CatConfig::paper_default(), &auto))
        } else {
            None
        };
        let mut system = System {
            queue: EventQueue::new(),
            pending_arrival: vec![None; gens.len()],
            gens,
            hier,
            dram,
            nic,
            page_table,
            ctrl,
            prefetchers,
            timing,
            nf,
            antagonist,
            samplers,
            bursts,
            core_bursts,
            hard_stop,
            dma_line_ranges,
            sample_ticks: 0,
            iat: vec![(0, 0, 0); policy.num_domains()],
            cat,
            core_domain,
            cat_ddio: 0,
            policy,
            metrics: MetricsRegistry::new(),
            tracer,
            ev_counts: [0; Event::TYPES],
            ev_wall: [std::time::Duration::ZERO; Event::TYPES],
            steer: vec![[0; 3]; num_cores],
            hints,
            ctrl_wbs: Vec::with_capacity(num_cores),
            ctrl_domain_wb: Vec::new(),
            ctrl_fsm_before: Vec::new(),
            tick_log: Vec::new(),
            tick_last_steer: [0; 3],
            fd,
            tick_last_fd: [0; 5],
            pool_last_active: vec![SimTime::ZERO; cfg.workloads.len()],
            pool_flushed: vec![false; cfg.workloads.len()],
            pool_idle_flushed: vec![0; cfg.workloads.len()],
            cfg,
        };
        // The occupancy gauge counts DMA-buffer lines resident in the
        // LLC; tracking the ranges in the array keeps that a counter
        // read instead of a full-LLC scan every sample tick.
        system.hier.track_llc_ranges(&system.dma_line_ranges);
        if system.policy.any_cat() {
            system.apply_cat_masks();
        }
        system.schedule_initial();
        system
    }

    /// (Re)derives every core's CAT mask from the policy table and the
    /// allocator's current plan. Static domains pin their configured
    /// mask; auto domains get their exclusive slice (falling back to the
    /// shared pool when no slice fits); all remaining cores share the
    /// pool, which excludes every auto slice — that exclusion is what
    /// makes the slices exclusive. Without an auto allocator only static
    /// masks are applied and other cores keep the default core mask.
    fn apply_cat_masks(&mut self) {
        let ddio = self.hier.ddio_ways();
        self.cat_ddio = ddio;
        let plan = self
            .cat
            .as_ref()
            .map(|c| c.plan(self.hier.config().llc.ways, ddio));
        for core in 0..self.core_domain.len() {
            let mode = self.core_domain[core].map(|d| self.policy.caps(d).cat);
            let mask = match mode {
                Some(CatMode::Static(m)) => Some(m),
                Some(CatMode::Auto) => {
                    let d = self.core_domain[core].unwrap() as usize;
                    let p = plan.as_ref().expect("auto CAT domain without allocator");
                    Some(p.domain_mask[d].unwrap_or(p.shared))
                }
                Some(CatMode::Off) | None => plan.as_ref().map(|p| p.shared),
            };
            self.hier.set_cat_mask(CoreId::new(core as u16), mask);
        }
    }

    fn schedule_initial(&mut self) {
        for gi in 0..self.gens.len() {
            self.arm_next_arrival(gi);
        }
        if self.antagonist.is_some() {
            self.queue.schedule_at(SimTime::ZERO, Event::AntagonistNext);
        }
        self.queue.schedule_at(
            SimTime::ZERO + self.cfg.idio.control_interval,
            Event::ControlTick,
        );
        self.queue
            .schedule_at(SimTime::ZERO + self.cfg.sample_interval, Event::SampleTick);
    }

    fn arm_next_arrival(&mut self, gen: usize) {
        if let Some(arrival) = self.gens[gen].next() {
            self.pending_arrival[gen] = Some(arrival.packet);
            self.queue.schedule_at(arrival.at, Event::Arrival { gen });
        }
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> RunReport {
        let profile_wall = self.cfg.profile_events;
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.hard_stop {
                break;
            }
            let ti = ev.type_index();
            self.ev_counts[ti] += 1;
            if self.tracer.enabled("event") {
                let pending = self.queue.len();
                self.tracer.record(now, "event", Event::NAMES[ti], || {
                    format!("pending={pending}")
                });
            }
            if profile_wall {
                let t0 = std::time::Instant::now();
                self.handle(now, ev);
                self.ev_wall[ti] += t0.elapsed();
            } else {
                self.handle(now, ev);
            }
        }
        self.into_report()
    }

    /// Read access to the hierarchy (tests and diagnostics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    // ----- event handlers ---------------------------------------------------

    /// Checked lookup of the NF state pinned to `core`, with the event being
    /// handled attached for diagnostics. Every NF-path handler goes through
    /// this (via [`Self::nf_state`]) instead of indexing `self.nf` directly,
    /// so a mis-wired configuration fails with an error naming the core and
    /// the event rather than a bare `Option::unwrap` panic.
    fn try_nf_state(
        &mut self,
        core: usize,
        event: &'static str,
    ) -> Result<&mut NfState, UnconfiguredNfCore> {
        self.nf
            .get_mut(core)
            .and_then(Option::as_mut)
            .ok_or(UnconfiguredNfCore { core, event })
    }

    /// Infallible form of [`Self::try_nf_state`] for the event handlers,
    /// which have no error channel to the engine loop.
    ///
    /// # Panics
    ///
    /// Panics with the [`UnconfiguredNfCore`] diagnostic if `core` has no NF.
    #[track_caller]
    fn nf_state(&mut self, core: usize, event: &'static str) -> &mut NfState {
        match self.try_nf_state(core, event) {
            Ok(st) => st,
            Err(e) => panic!("{e}"),
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival { gen } => self.on_arrival(now, gen),
            Event::DmaPacket {
                buf_line,
                meta,
                arrival,
                seq,
                first,
                gap,
                lines,
                next,
                batch_seq,
                domain,
            } => self.on_dma_packet(
                DmaBatch {
                    buf_line,
                    meta,
                    arrival,
                    seq,
                    first,
                    gap,
                    lines,
                    batch_seq,
                    domain,
                },
                next,
            ),
            Event::DescWriteback { queue, slot } => self.on_desc_writeback(now, queue, slot),
            Event::PrefetchIssue { core } => self.on_prefetch_issue(now, core),
            Event::CoreWake { core } => self.on_core_wake(now, core),
            Event::TxComplete {
                queue,
                buf,
                lines,
                arrival,
                flow,
            } => self.on_tx_complete(now, queue, buf, lines, arrival, flow),
            Event::AntagonistNext => self.on_antagonist(now),
            Event::ControlTick => self.on_control_tick(now),
            Event::SampleTick => self.on_sample_tick(now),
        }
    }

    fn on_arrival(&mut self, now: SimTime, gen: usize) {
        let packet = self.pending_arrival[gen]
            .take()
            .expect("arrival event without pending packet");
        // Resolve the packet's *home* queue (where its flow's NF runs)
        // before the NIC steers it; comparing against the steered queue
        // is what detects flow-director mis-steers.
        let home = self.fd.as_ref().and_then(|fd| {
            let t = fd.tenants.get(gen)?.as_ref()?;
            let slot = t.set.slot_of(&packet.flow)?;
            Some(t.queues[slot as usize % t.queues.len()])
        });
        if let Some(dma) = self.nic.rx_packet(now, packet) {
            if let (Some(home), Some(fd)) = (home, self.fd.as_mut()) {
                let m = &mut fd.mix[home.index()];
                match dma.steer {
                    SteeringSource::PerfectMatch => m[0] += 1,
                    SteeringSource::FilterTable => m[1] += 1,
                    SteeringSource::FilterTableCollision => m[2] += 1,
                    SteeringSource::Rss => m[3] += 1,
                }
                if dma.queue != home {
                    // Mis-steer: the packet's lines land in (and its NF
                    // work charges) the wrong core's caches.
                    m[4] += 1;
                    if self.tracer.enabled("fd") {
                        let (src, got) = (dma.steer, dma.queue);
                        self.tracer.record(now, "fd", "mis_steer", move || {
                            format!("home=q{} got=q{} via={src:?}", home.index(), got.index())
                        });
                    }
                }
            }
            self.pool_last_active[dma.queue.index()] = now;
            self.pool_flushed[dma.queue.index()] = false;
            let core = dma.dest_core.index();
            let seq = {
                let st = self.nf_state(core, "Arrival");
                st.rx_seq += 1;
                st.rx_seq
            };
            let buf_line = dma.slot.buf.line();
            // One batched event for the whole payload instead of one
            // event per cache line; the handler applies the lines at
            // their original per-line timestamps.
            let batch_seq = self.queue.next_seq();
            self.queue.schedule_at(
                dma.payload.first,
                Event::DmaPacket {
                    buf_line,
                    meta: dma.head_meta,
                    arrival: now,
                    seq,
                    first: dma.payload.first,
                    gap: dma.payload.gap,
                    lines: dma.payload.lines,
                    next: 0,
                    batch_seq,
                    domain: dma.policy_domain,
                },
            );
            self.queue.schedule_at(
                dma.descriptor.done(),
                Event::DescWriteback {
                    queue: dma.queue,
                    slot: dma.slot.slot,
                },
            );
        }
        self.arm_next_arrival(gen);
    }

    /// Resolved policy capabilities of `queue` (one table index).
    #[inline]
    fn queue_caps(&self, queue: QueueId) -> PolicyCaps {
        self.policy.caps(self.policy.queue_domain(queue.index()))
    }

    fn charge_dram(&mut self, now: SimTime, fx: MemEffects) {
        for _ in 0..fx.dram_writes {
            self.dram.request(now, DramOp::Write);
        }
        for _ in 0..fx.dram_reads {
            self.dram.request(now, DramOp::Read);
        }
    }

    /// Applies one batched-DMA event from payload line `next` onward.
    ///
    /// Each line is applied at its own timestamp `first + gap * i`
    /// (identical DRAM queueing and burst accounting to the per-line
    /// events this replaces). Before applying line `i`, the queue head is
    /// compared against the line's order key `(at_i, batch_seq)`: if some
    /// interleaved event sorts earlier, the remaining lines are parked as
    /// a continuation behind it via
    /// [`EventQueue::schedule_resume`](idio_engine::queue::EventQueue::schedule_resume),
    /// which preserves `batch_seq` so FIFO tie-breaks match the old
    /// per-line scheduling exactly.
    fn on_dma_packet(&mut self, b: DmaBatch, next: u32) {
        let mut applied: u64 = 0;
        for i in next..b.lines {
            let at = b.first + b.gap * u64::from(i);
            if let Some(key) = self.queue.peek_key() {
                if key < (at, b.batch_seq) {
                    self.queue.schedule_resume(
                        at,
                        b.batch_seq,
                        Event::DmaPacket {
                            buf_line: b.buf_line,
                            meta: b.meta,
                            arrival: b.arrival,
                            seq: b.seq,
                            first: b.first,
                            gap: b.gap,
                            lines: b.lines,
                            next: i,
                            batch_seq: b.batch_seq,
                            domain: b.domain,
                        },
                    );
                    break;
                }
            }
            let meta = if i == 0 {
                b.meta
            } else {
                TlpMeta {
                    is_header: false,
                    is_burst: false,
                    ..b.meta
                }
            };
            self.apply_dma_line(
                at,
                b.buf_line.offset(u64::from(i)),
                meta,
                b.arrival,
                b.seq,
                b.domain,
            );
            applied += 1;
        }
        // run() already counted this pop once; count the extra lines so
        // `engine.events.dma_line` still equals the number of DMA lines.
        self.ev_counts[1] += applied.saturating_sub(1);
    }

    /// The per-line DMA logic: burst accounting, steering, cache-hierarchy
    /// write and DRAM charge, all at the line's own arrival time `now`.
    fn apply_dma_line(
        &mut self,
        now: SimTime,
        line: LineAddr,
        meta: TlpMeta,
        arrival: SimTime,
        seq: u64,
        domain: u16,
    ) {
        if let Some(b) = &mut self.bursts {
            b.record_dma(arrival, now);
        }
        if !self.core_bursts.is_empty() {
            self.core_bursts[meta.dest_core.index()].record_dma(arrival, now);
        }
        // A burst flag can flip the destination core's FSM inside steer();
        // observe the before/after status only when someone is watching.
        let fsm_before = if self.tracer.enabled("fsm") {
            Some(self.ctrl.status(meta.dest_core))
        } else {
            None
        };
        let placement = self.ctrl.steer(self.policy.caps(domain), meta);
        if let Some(before) = fsm_before {
            let after = self.ctrl.status(meta.dest_core);
            if after != before {
                self.tracer.record(now, "fsm", "transition", move || {
                    format!("core={} {before:?}->{after:?} cause=burst", meta.dest_core)
                });
            }
        }
        if self.tracer.enabled("steer") {
            self.tracer.record(now, "steer", "placement", move || {
                format!(
                    "line={line} core={} class={:?} hdr={} burst={} p={placement:?}",
                    meta.dest_core, meta.app_class, meta.is_header, meta.is_burst
                )
            });
        }
        let dest = meta.dest_core.index();
        match placement {
            Placement::Llc => {
                self.steer[dest][0] += 1;
                let w = self.hier.pcie_write(line, DmaPlacement::Llc);
                self.charge_dram(now, w.effects);
            }
            Placement::Dram => {
                self.steer[dest][2] += 1;
                let w = self.hier.pcie_write(line, DmaPlacement::Dram);
                self.charge_dram(now, w.effects);
            }
            Placement::Mlc(core) => {
                self.steer[dest][1] += 1;
                let w = self.hier.pcie_write(line, DmaPlacement::Llc);
                self.charge_dram(now, w.effects);
                let ci = core.index();
                self.hier_prefetch_hint(now, ci, line, seq);
            }
        }
    }

    fn hier_prefetch_hint(&mut self, now: SimTime, core: usize, line: LineAddr, seq: u64) {
        use crate::prefetcher::PrefetchPacing;
        if let PrefetchPacing::CpuPaced { window_packets } = self.cfg.prefetcher.pacing {
            if let Some(st) = self.nf[core].as_ref() {
                if seq > st.done_seq + u64::from(window_packets) {
                    // Too far ahead of the CPU pointer: park the hint; it
                    // is released as packets complete (Sec. VII future
                    // work — nothing is dropped, the MLC is not flooded).
                    self.hints.park(core, seq, line);
                    return;
                }
            }
        }
        self.push_hint(now, core, line);
    }

    fn push_hint(&mut self, now: SimTime, core: usize, line: LineAddr) {
        if !self.prefetchers[core].push(line) {
            self.tracer.record(now, "prefetch", "drop", move || {
                format!("core=core{core} line={line}")
            });
            return;
        }
        let pf = &mut self.prefetchers[core];
        if !pf.issue_pending {
            pf.issue_pending = true;
            let gap = pf.config().issue_gap;
            self.queue
                .schedule_at(now + gap, Event::PrefetchIssue { core });
        }
    }

    /// Advances the CPU pointer for `core` and releases parked hints that
    /// fell inside the pacing window.
    ///
    /// Hints drain straight from the arena ring into the prefetcher — no
    /// per-advance `release` buffer, no pop-after-peek `expect`: the ring
    /// hands back one ready hint at a time, and an impossible state (a
    /// parked hint that cannot exist) is diagnosed inside
    /// [`HintArena::park`] with the core and sequence number.
    fn advance_cpu_pointer(&mut self, now: SimTime, core: usize) {
        use crate::prefetcher::PrefetchPacing;
        let window = match self.cfg.prefetcher.pacing {
            PrefetchPacing::CpuPaced { window_packets } => u64::from(window_packets),
            PrefetchPacing::Queued => {
                if let Some(st) = self.nf[core].as_mut() {
                    st.done_seq += 1;
                }
                return;
            }
        };
        let Some(st) = self.nf[core].as_mut() else {
            return;
        };
        st.done_seq += 1;
        let limit = st.done_seq + window;
        while let Some(line) = self.hints.pop_ready(core, limit) {
            self.push_hint(now, core, line);
        }
    }

    fn on_prefetch_issue(&mut self, now: SimTime, core: usize) {
        if let Some(line) = self.prefetchers[core].pop() {
            use crate::prefetcher::PrefetchPacing;
            use idio_cache::hierarchy::PrefetchOutcome;
            // The CPU-paced prefetcher walks the ring just ahead of the
            // consumption pointer, so it may recover lines from DRAM; the
            // paper's queued prefetcher only pulls from the LLC.
            let out = match self.cfg.prefetcher.pacing {
                PrefetchPacing::Queued => self.hier.prefetch_fill(CoreId::new(core as u16), line),
                PrefetchPacing::CpuPaced { .. } => {
                    self.hier.prefetch_fill_deep(CoreId::new(core as u16), line)
                }
            };
            if let PrefetchOutcome::Filled(fx) = out {
                self.charge_dram(now, fx);
            }
        }
        if self.prefetchers[core].is_empty() {
            self.prefetchers[core].issue_pending = false;
        } else {
            let gap = self.prefetchers[core].config().issue_gap;
            self.queue
                .schedule_at(now + gap, Event::PrefetchIssue { core });
        }
    }

    fn on_desc_writeback(&mut self, now: SimTime, queue: QueueId, slot: u32) {
        // The descriptor record (2 lines) is written back over PCIe —
        // placed like any DDIO write (descriptors are not packet data and
        // are not steered).
        let desc = self.nic.ring(queue).desc_addr(slot);
        for l in 0..(idio_nic::ring::DESC_BYTES / LINE_SIZE) {
            let w = self
                .hier
                .pcie_write(desc.line().offset(l), DmaPlacement::Llc);
            self.charge_dram(now, w.effects);
        }
        self.nic.ring_mut(queue).complete(slot);

        // Wake the pinned core if it is idle.
        let core = self.cfg.workloads[queue.index()].core.index();
        let st = self.nf_state(core, "DescWriteback");
        if !st.busy {
            st.busy = true;
            let poll = self.timing.poll();
            self.queue.schedule_at(now + poll, Event::CoreWake { core });
        }
    }

    fn on_core_wake(&mut self, now: SimTime, core: usize) {
        // Finish the packet whose service time just elapsed.
        if let Some((slot, action)) = self.nf_state(core, "CoreWake").current.take() {
            self.finish_packet(now, core, slot, action);
        }

        // Refill the batch if needed.
        let queue = self.nf_state(core, "CoreWake").queue;
        let batch_size = self.cfg.pmd.batch_size;
        let mut extra = Duration::ZERO;
        if self.nf_state(core, "CoreWake").batch.is_empty() {
            let got = self.nic.ring_mut(queue).pop_completed(batch_size);
            if got.is_empty() {
                self.nf_state(core, "CoreWake").busy = false;
                return;
            }
            extra = self.timing.batch();
            self.nf_state(core, "CoreWake").batch.extend(got);
        }

        // Start the next packet.
        let slot = self
            .nf_state(core, "CoreWake")
            .batch
            .pop_front()
            .expect("batch refilled above");
        let (service, action) = self.execute_packet(now, core, &slot);
        self.nf_state(core, "CoreWake").current = Some((slot, action));
        self.queue
            .schedule_at(now + extra + service, Event::CoreWake { core });
    }

    /// Runs the NF's memory program for one packet, returning the service
    /// time and post-action.
    fn execute_packet(
        &mut self,
        now: SimTime,
        core: usize,
        slot: &RxSlot,
    ) -> (Duration, PacketAction) {
        let st = self.nf_state(core, "CoreWake");
        let kind = st.kind;
        let queue = st.queue;
        let ctx = PacketCtx {
            buf: slot.buf,
            desc: slot.desc,
            meta: st.regions.meta_addr(slot.slot),
            app: st.regions.app_addr(slot.slot),
            len: slot.packet.len,
        };
        // Build the program into the core's scratch buffer (taken out of
        // the state to release the borrow, put back below): no per-packet
        // allocation.
        let mut work = std::mem::take(&mut st.scratch);
        kind.packet_work_into(&ctx, &mut work);
        let core_id = CoreId::new(core as u16);
        let mut service = self.timing.per_packet();
        // Chain-stage attribution: each mark closes the segment of ops
        // since the previous mark; segment service lands in that stage's
        // histogram (empty for single NFs — `marks` is empty).
        let mut seg = Duration::ZERO;
        let mut segs = [(0usize, 0u64); idio_stack::MAX_CHAIN_STAGES];
        let mut n_segs = 0usize;
        let mut next_mark = 0usize;
        for (oi, op) in work.ops.iter().enumerate() {
            let (addr, lines, is_write) = match *op {
                MemOp::Read { addr, lines } => (addr, lines, false),
                MemOp::Write { addr, lines } => (addr, lines, true),
            };
            for l in 0..u64::from(lines) {
                let line = addr.line().offset(l);
                let acc = if is_write {
                    self.hier.cpu_write(core_id, line)
                } else {
                    self.hier.cpu_read(core_id, line)
                };
                // Victim writebacks consume DRAM bandwidth but do not
                // stall the core.
                let mut fx = acc.effects;
                let cost = if acc.level == HitLevel::Dram {
                    debug_assert!(fx.dram_reads >= 1);
                    fx.dram_reads -= 1;
                    let done = self.dram.request(now, DramOp::Read);
                    self.timing
                        .access_cost(HitLevel::Dram, Some(done.saturating_since(now)))
                } else {
                    self.timing.access_cost(acc.level, None)
                };
                self.charge_dram(now, fx);
                service += cost;
                seg += cost;
            }
            while next_mark < work.marks.len() && work.marks[next_mark].op_end as usize == oi + 1 {
                segs[n_segs] = (work.marks[next_mark].stage.index(), seg.as_ns());
                n_segs += 1;
                seg = Duration::ZERO;
                next_mark += 1;
            }
        }
        // The self-invalidate instructions run as part of the packet's
        // service when the buffer is freed inline (drop path). Recycle
        // pools self-invalidate on every free regardless of policy caps.
        let free_inval =
            self.queue_caps(queue).invalidate || self.nic.ring(queue).pool().invalidate_on_free();
        if free_inval && work.action == PacketAction::Drop {
            service += self.timing.invalidate(ctx.frame_lines());
        }
        let action = work.action;
        let st = self.nf_state(core, "CoreWake");
        for &(si, ns) in &segs[..n_segs] {
            st.stage_hist[si].record(ns);
        }
        st.scratch = work;
        (service, action)
    }

    fn invalidate_buffer(&mut self, now: SimTime, core: usize, buf: Addr, lines: u32) {
        self.tracer.record(now, "maint", "invalidate", move || {
            format!("core=core{core} buf={buf} lines={lines}")
        });
        let scope = self.cfg.invalidate_scope;
        if let Err(e) = invalidate_range(
            &mut self.hier,
            &self.page_table,
            CoreId::new(core as u16),
            buf,
            u64::from(lines) * LINE_SIZE,
            scope,
        ) {
            panic!(
                "invalidate on core{core} rejected for buffer {buf} \
                 ({lines} lines): {e:?} — DMA buffers must be allocated \
                 Invalidatable (check the queue's buffer layout)"
            );
        }
    }

    fn finish_packet(&mut self, now: SimTime, core: usize, slot: RxSlot, action: PacketAction) {
        let queue = self.nf_state(core, "CoreWake").queue;
        match action {
            PacketAction::Drop => {
                if self.queue_caps(queue).invalidate
                    || self.nic.ring(queue).pool().invalidate_on_free()
                {
                    self.invalidate_buffer(now, core, slot.buf, slot.packet.lines());
                }
                // The free returns this buffer to the queue's pool at the
                // completion event (not steer time), so a recycle pool's
                // LIFO list sees the true release order.
                self.nic.ring_mut(queue).release(slot.buf);
                self.pool_last_active[queue.index()] = now;
                self.pool_flushed[queue.index()] = false;
                self.record_completion(now, core, &slot);
            }
            PacketAction::Tx { lines } => {
                // Post a TX descriptor; the NIC reads the descriptor, then
                // the packet data, then writes the completion back.
                let st = self.nf_state(core, "CoreWake");
                let posted = st
                    .tx_ring
                    .post(slot.buf, lines, now)
                    .expect("tx ring sized to the rx ring cannot overflow");
                let _ = posted;
                let sched = self.nic.tx_packet(now, lines);
                self.queue.schedule_at(
                    sched.done(),
                    Event::TxComplete {
                        queue,
                        buf: slot.buf,
                        lines,
                        arrival: slot.arrived_at,
                        flow: slot.packet.flow,
                    },
                );
            }
        }
    }

    fn record_completion(&mut self, now: SimTime, core: usize, slot: &RxSlot) {
        // aRFS-style learning: when flow-director pressure is being
        // modelled, completing a packet lets the driver program the NIC's
        // filter table with the flow's *home* queue (where its consumer
        // actually runs — not where this packet happened to land), so
        // unpinned flows converge onto ATR steering after their first
        // completion. Drop-type NFs never transmit, so the hook lives at
        // completion rather than TX.
        if let Some(fd) = &self.fd {
            if let Some(home) = fd.home_of(&slot.packet.flow) {
                self.nic
                    .flow_director_mut()
                    .learn(now, &slot.packet.flow, home);
            }
        }
        let st = self.nf_state(core, "CoreWake");
        let lat = now.saturating_since(slot.arrived_at);
        st.latency.record(lat);
        st.lat_hist.record(lat.as_ns());
        st.completed += 1;
        if let Some(b) = &mut self.bursts {
            b.record_completion(slot.arrived_at, now);
        }
        if !self.core_bursts.is_empty() {
            self.core_bursts[core].record_completion(slot.arrived_at, now);
        }
        self.advance_cpu_pointer(now, core);
    }

    fn on_tx_complete(
        &mut self,
        now: SimTime,
        queue: QueueId,
        buf: Addr,
        lines: u32,
        arrival: SimTime,
        flow: idio_net::packet::FiveTuple,
    ) {
        if let Some(home) = self.fd.as_ref().and_then(|fd| fd.home_of(&flow)) {
            // Under flow-director pressure the driver refreshes the filter
            // table with the flow's home queue (see record_completion).
            self.nic.flow_director_mut().learn(now, &flow, home);
        } else if self.cfg.steering == FlowSteering::Atr {
            // ATR: the NIC observes the TX and learns which queue (and
            // therefore core) serves this flow.
            self.nic.flow_director_mut().learn(now, &flow, queue);
        }
        for l in 0..u64::from(lines) {
            let r = self.hier.pcie_read(buf.line().offset(l));
            self.charge_dram(now, r.effects);
        }
        let core = self.cfg.workloads[queue.index()].core.index();
        // Completion descriptor writeback: an inbound PCIe write that
        // lands in the DDIO ways like any other device write.
        let done = self.nf_state(core, "TxComplete").tx_ring.complete();
        for l in 0..(idio_nic::tx::TX_DESC_BYTES / LINE_SIZE) {
            let w = self
                .hier
                .pcie_write(done.desc.line().offset(l), DmaPlacement::Llc);
            self.charge_dram(now, w.effects);
        }
        if self.queue_caps(queue).invalidate || self.nic.ring(queue).pool().invalidate_on_free() {
            self.invalidate_buffer(now, core, buf, lines);
        }
        // TX-completion-time free: the buffer re-enters the pool only now
        // that the NIC has read it out, never at steer or post time.
        self.nic.ring_mut(queue).release(buf);
        self.pool_last_active[queue.index()] = now;
        self.pool_flushed[queue.index()] = false;
        let st = self.nf_state(core, "TxComplete");
        let lat = now.saturating_since(arrival);
        st.latency.record(lat);
        st.lat_hist.record(lat.as_ns());
        st.completed += 1;
        if let Some(b) = &mut self.bursts {
            b.record_completion(arrival, now);
        }
        if !self.core_bursts.is_empty() {
            self.core_bursts[core].record_completion(arrival, now);
        }
        self.advance_cpu_pointer(now, core);
    }

    fn on_antagonist(&mut self, now: SimTime) {
        let (core, line, think) = {
            let (core, ant) = self.antagonist.as_mut().expect("antagonist event");
            (*core, ant.next_line(), ant.config().think_cycles)
        };
        let acc = self.hier.cpu_read(core, line);
        let mut fx = acc.effects;
        // Dependent random loads: DRAM latency is fully exposed (no MLP).
        let cost = if acc.level == HitLevel::Dram {
            fx.dram_reads = fx.dram_reads.saturating_sub(1);
            let done = self.dram.request(now, DramOp::Read);
            self.timing
                .access_cost_dependent(HitLevel::Dram, Some(done.saturating_since(now)))
        } else {
            self.timing.access_cost_dependent(acc.level, None)
        };
        self.charge_dram(now, fx);
        let think = self.timing.config().freq.cycles_to_duration(think);
        let elapsed = cost + think;
        self.antagonist.as_mut().unwrap().1.record(elapsed);
        if now + elapsed <= self.hard_stop {
            self.queue.schedule_at(now + elapsed, Event::AntagonistNext);
        }
    }

    /// Control-tick driver refresh: for churning tenants, re-install the
    /// perfect filter of any pinned slot whose flow turned over since the
    /// filter was programmed (evicting the oldest co-resident entry when
    /// its filter set is full, exactly as a real driver's install would).
    /// The stale filter for the retired flow is left behind to age out or
    /// be evicted — matching drivers that do not garbage-collect rules.
    fn fd_refresh(&mut self, now: SimTime) {
        let Some(fd) = self.fd.as_mut() else { return };
        for t in fd.tenants.iter_mut().flatten() {
            if t.set.churn().is_none() || t.pinned.is_empty() {
                continue;
            }
            for (slot, last) in &mut t.pinned {
                let idx = t.set.index_at(*slot, now);
                if idx != *last {
                    let q = t.queues[*slot as usize % t.queues.len()];
                    self.nic
                        .flow_director_mut()
                        .install_perfect_evicting(t.set.tuple_of(idx), q);
                    *last = idx;
                }
            }
        }
    }

    /// Latency-aware recycler flush: a queue whose pool saw no RX or
    /// buffer-release activity for the configured idle window
    /// self-invalidates its DMA buffers, releasing the pool's LLC
    /// footprint to other tenants until traffic resumes.
    fn pool_idle_flush_tick(&mut self, now: SimTime) {
        let Some(window) = self.cfg.pool_idle_flush else {
            return;
        };
        let lines_per_buf = (idio_nic::ring::DEFAULT_BUF_BYTES / LINE_SIZE) as u32;
        for q in 0..self.cfg.workloads.len() {
            if self.pool_flushed[q] {
                continue;
            }
            let queue = QueueId(q as u16);
            if !matches!(self.nic.ring(queue).pool().mode(), PoolMode::Recycle { .. }) {
                continue;
            }
            if now.saturating_since(self.pool_last_active[q]) <= window {
                continue;
            }
            let core = self.cfg.workloads[q].core.index();
            let buf_base = self.nf[core]
                .as_ref()
                .expect("pooled queue without an NF")
                .regions
                .buf_base;
            self.invalidate_buffer(now, core, buf_base, self.cfg.ring_size * lines_per_buf);
            self.pool_flushed[q] = true;
            self.pool_idle_flushed[q] += 1;
        }
    }

    fn on_control_tick(&mut self, now: SimTime) {
        // One pass over the per-core stats fills every control input at
        // once: the controller's MLC-WB snapshot and (when the CAT loop
        // runs) the per-domain pressure. Each per-core struct is touched
        // once per tick, and all scratch buffers are reused across ticks
        // so the 1 µs control loop never allocates.
        let any_cat = self.cat.is_some();
        self.ctrl_wbs.clear();
        if any_cat {
            self.ctrl_domain_wb.clear();
            self.ctrl_domain_wb.resize(self.policy.num_domains(), 0);
        }
        for (core, c) in self.hier.stats().core.iter().enumerate() {
            let wb = c.mlc_wb.get();
            self.ctrl_wbs.push(wb);
            if any_cat {
                if let Some(d) = self.core_domain[core] {
                    self.ctrl_domain_wb[d as usize] += wb;
                }
            }
        }
        let fsm_watch = self.tracer.enabled("fsm");
        if fsm_watch {
            self.ctrl_fsm_before.clear();
            for i in 0..self.ctrl_wbs.len() {
                self.ctrl_fsm_before
                    .push(self.ctrl.status(CoreId::new(i as u16)));
            }
        }
        self.ctrl.control_tick(&self.ctrl_wbs);
        if fsm_watch {
            for i in 0..self.ctrl_fsm_before.len() {
                let prev = self.ctrl_fsm_before[i];
                let cur = self.ctrl.status(CoreId::new(i as u16));
                if cur != prev {
                    let wb = self.ctrl_wbs[i];
                    self.tracer.record(now, "fsm", "transition", move || {
                        format!("core=core{i} {prev:?}->{cur:?} wb={wb} cause=tick")
                    });
                }
            }
        }
        if self.policy.any_tunes_ddio_ways() {
            // IAT-style tuner: every 25 control intervals (25 us), grow
            // the DDIO partition while inbound data is leaking to DRAM;
            // shrink it back one way at a time only after a sustained
            // quiet period (hysteresis, as IAT's monitoring loop does).
            // One tuner state per policy domain whose caps ask for it, so
            // an IAT tenant's hysteresis is not perturbed by domains that
            // never tune.
            for d in 0..self.iat.len() {
                if !self.policy.caps(d as u16).tune_ddio_ways {
                    continue;
                }
                let iat = &mut self.iat[d];
                iat.0 += 1;
                if iat.0.is_multiple_of(25) {
                    let wb = self.hier.stats().shared.llc_wb.get();
                    let delta = wb - iat.1;
                    iat.1 = wb;
                    let ways = self.hier.ddio_ways();
                    // Dynamic DDIO policies re-allocate a bounded slice of the
                    // LLC to I/O (growing further only squeezes the ways the
                    // consumed data bloats into).
                    let max_ways = 4.min(self.hier.config().llc.ways - 2);
                    if delta > 25 {
                        iat.2 = 0;
                        if ways < max_ways {
                            self.hier.set_ddio_ways(ways + 1);
                        }
                    } else if delta == 0 {
                        iat.2 += 1;
                        // ~1 ms of silence before giving a way back.
                        if iat.2 >= 40 && ways > 2 {
                            self.hier.set_ddio_ways(ways - 1);
                            iat.2 = 0;
                        }
                    } else {
                        iat.2 = 0;
                    }
                }
            }
        }
        // Closed-loop CAT: fold the per-core MLC-WB counters into
        // per-domain pressure and let the allocator adjust the slices.
        // Runs after the IAT tuner so a freshly widened DDIO partition is
        // reflected in this tick's plan, not the next one's.
        let llc_ways = self.hier.config().llc.ways;
        let ddio = self.hier.ddio_ways();
        let cat_ddio = self.cat_ddio;
        let mut replan = false;
        if let Some(cat) = self.cat.as_mut() {
            // Domain pressure was folded in the stats pass above.
            let budget = llc_ways.saturating_sub(ddio + cat.config().min_shared);
            let changed = cat.tick(&self.ctrl_domain_wb, budget);
            if changed || ddio != cat_ddio {
                let widths: Vec<String> = (0..self.ctrl_domain_wb.len())
                    .filter_map(|d| cat.ways(d).map(|w| format!("d{d}={w}")))
                    .collect();
                let reallocs = cat.reallocations();
                self.tracer.record(now, "cat", "realloc", move || {
                    format!("ddio={ddio} {} reallocs={reallocs}", widths.join(" "))
                });
                replan = true;
            }
        }
        if replan {
            self.apply_cat_masks();
        }
        self.fd_refresh(now);
        self.pool_idle_flush_tick(now);
        if self.cfg.tick_metrics {
            self.record_tick_metrics(now);
        }
        let next = now + self.cfg.idio.control_interval;
        if next <= self.hard_stop {
            self.queue.schedule_at(next, Event::ControlTick);
        }
    }

    /// Appends one NDJSON line describing this control tick to the
    /// tick-metrics timeline ([`SystemConfig::tick_metrics`]): the steering
    /// mix since the previous tick (delta line counts, not cumulative), the
    /// per-core prefetch-FSM states as a compact `M`/`L` string, and — when
    /// the closed-loop CAT allocator is running — its reallocation count
    /// and per-domain way widths. The `cat` section follows the same
    /// discipline as the `cat.*` metrics: present only when an allocator is
    /// configured.
    fn record_tick_metrics(&mut self, now: SimTime) {
        use std::fmt::Write as _;
        let total = self.steer.iter().fold([0u64; 3], |acc, s| {
            [acc[0] + s[0], acc[1] + s[1], acc[2] + s[2]]
        });
        let delta = [
            total[0] - self.tick_last_steer[0],
            total[1] - self.tick_last_steer[1],
            total[2] - self.tick_last_steer[2],
        ];
        self.tick_last_steer = total;
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"t_us\":{:.3},\"steer\":{{\"llc\":{},\"mlc\":{},\"dram\":{}}},\"fsm\":\"",
            now.as_us_f64(),
            delta[0],
            delta[1],
            delta[2],
        );
        for i in 0..self.steer.len() {
            line.push(match self.ctrl.status(CoreId::new(i as u16)) {
                MlcStatus::Mlc => 'M',
                MlcStatus::Llc => 'L',
            });
        }
        line.push('"');
        if let Some(cat) = self.cat.as_ref() {
            let _ = write!(
                line,
                ",\"cat\":{{\"reallocs\":{},\"ways\":[",
                cat.reallocations()
            );
            for d in 0..self.policy.num_domains() {
                if d > 0 {
                    line.push(',');
                }
                match cat.ways(d) {
                    Some(w) => {
                        let _ = write!(line, "{w}");
                    }
                    None => line.push_str("null"),
                }
            }
            line.push_str("]}");
        }
        // Flow-director mix delta, present only under flow-director
        // pressure accounting so legacy tick logs stay byte-identical.
        if let Some(fd) = self.fd.as_ref() {
            let total = fd
                .mix
                .iter()
                .fold([0u64; 5], |acc, m| std::array::from_fn(|i| acc[i] + m[i]));
            let d: [u64; 5] = std::array::from_fn(|i| total[i] - self.tick_last_fd[i]);
            self.tick_last_fd = total;
            let _ = write!(
                line,
                ",\"fd\":{{\"perfect\":{},\"atr\":{},\"collision\":{},\"rss\":{},\"mis\":{}}}",
                d[0], d[1], d[2], d[3], d[4],
            );
        }
        // Pool occupancy follows the `cat` discipline: the section exists
        // only when some workload configured an explicit pool, so legacy
        // tick logs stay byte-identical.
        if self.cfg.workloads.iter().any(|w| w.pool.is_some()) {
            line.push_str(",\"pool\":{");
            let mut first = true;
            for (q, w) in self.cfg.workloads.iter().enumerate() {
                if w.pool.is_none() {
                    continue;
                }
                let p = self.nic.ring(QueueId(q as u16)).pool();
                let s = p.stats();
                if !first {
                    line.push(',');
                }
                first = false;
                let _ = write!(
                    line,
                    "\"q{q}\":{{\"live\":{},\"recycled\":{},\"starved\":{},\"spilled\":{}}}",
                    p.live_bufs(),
                    s.recycled,
                    s.starved,
                    s.spilled,
                );
            }
            line.push('}');
        }
        line.push('}');
        self.tick_log.push(line);
    }

    fn on_sample_tick(&mut self, now: SimTime) {
        const MTPS: f64 = 1e-6;
        let h = self.hier.stats();
        self.samplers
            .mlc_wb
            .sample_scaled(now, h.total_mlc_wb(), MTPS);
        self.samplers
            .llc_wb
            .sample_scaled(now, h.shared.llc_wb.get(), MTPS);
        self.samplers
            .dram_rd
            .sample_scaled(now, h.shared.dram_reads.get(), MTPS);
        self.samplers
            .dram_wr
            .sample_scaled(now, h.shared.dram_writes.get(), MTPS);
        self.samplers
            .dma_wr
            .sample_scaled(now, h.shared.pcie_writes.get(), MTPS);
        self.samplers
            .prefetch
            .sample_scaled(now, h.total_prefetch_fills(), MTPS);
        self.samplers.self_inval.sample_scaled(
            now,
            h.total_self_invalidations() + h.shared.llc_self_invalidations.get(),
            MTPS,
        );
        // The occupancy gauge used to scan the LLC, so it sampled at a
        // tenth of the counter-sampling rate; the array now maintains
        // the count incrementally, but the cadence is kept so the
        // sampled series stays identical.
        self.sample_ticks += 1;
        if self.sample_ticks.is_multiple_of(10) {
            let llc = self.hier.llc();
            let dma = llc.tracked_resident();
            self.samplers
                .dma_llc_share
                .push(now, dma as f64 / llc.capacity_lines() as f64);
        }
        let next = now + self.cfg.sample_interval;
        if next <= self.hard_stop {
            self.queue.schedule_at(next, Event::SampleTick);
        }
    }

    // ----- report -------------------------------------------------------------

    fn into_report(mut self) -> RunReport {
        let h = self.hier.stats();
        let totals = RunTotals {
            mlc_wb: h.total_mlc_wb(),
            mlc_inval_by_dma: h.total_mlc_inval_by_dma(),
            llc_wb: h.shared.llc_wb.get(),
            dram_rd: h.shared.dram_reads.get(),
            dram_wr: h.shared.dram_writes.get(),
            pcie_wr: h.shared.pcie_writes.get(),
            prefetch_fills: h.total_prefetch_fills(),
            // Private-cache and LLC copies are mutually exclusive in the
            // non-inclusive hierarchy, so the sum counts each dropped line
            // exactly once.
            self_inval: h.total_self_invalidations() + h.shared.llc_self_invalidations.get(),
            rx_packets: self.nic.stats().rx_packets.get(),
            rx_drops: self.nic.stats().rx_drops.get(),
            completed_packets: self.nf.iter().flatten().map(|st| st.completed).sum(),
        };
        let mut latency = Vec::new();
        for (ci, st) in self.nf.iter_mut().enumerate() {
            if let Some(st) = st {
                if let Some(s) = LatencySummary::from_recorder(&mut st.latency) {
                    latency.push((CoreId::new(ci as u16), s));
                }
            }
        }
        let ps_per_cycle = self.timing.config().freq.ps_per_cycle();
        let antagonist_cpa = self
            .antagonist
            .as_ref()
            .map(|(_, a)| a.stats().cycles_per_access(ps_per_cycle));

        // ---- fold final counters into the metrics registry -----------------
        // Engine-level anomaly counters (were debug_assert!s; now always-on
        // diagnostics identical across build profiles).
        self.metrics.counter_set(
            "engine.schedule_past_clamped",
            self.queue.schedule_past_clamped(),
        );
        let backwards = [
            &self.samplers.mlc_wb,
            &self.samplers.llc_wb,
            &self.samplers.dram_rd,
            &self.samplers.dram_wr,
            &self.samplers.dma_wr,
            &self.samplers.prefetch,
            &self.samplers.self_inval,
        ]
        .iter()
        .map(|s| s.backwards_samples())
        .sum();
        self.metrics
            .counter_set("stats.counter_backwards", backwards);
        for (ti, name) in Event::NAMES.iter().enumerate() {
            self.metrics
                .counter_set(&format!("engine.events.{name}"), self.ev_counts[ti]);
        }
        // Component counters under stable dotted names.
        self.metrics
            .counter_set("nic.rx.packets", totals.rx_packets);
        self.metrics.counter_set("nic.rx.drops", totals.rx_drops);
        self.metrics.counter_set("nic.dma.lines", totals.pcie_wr);
        self.metrics.counter_set("llc.wb", totals.llc_wb);
        self.metrics.counter_set("dram.rd", totals.dram_rd);
        self.metrics.counter_set("dram.wr", totals.dram_wr);
        let steer_total = self.steer.iter().fold([0u64; 3], |acc, s| {
            [acc[0] + s[0], acc[1] + s[1], acc[2] + s[2]]
        });
        self.metrics.counter_set("steer.llc", steer_total[0]);
        self.metrics.counter_set("steer.mlc", steer_total[1]);
        self.metrics.counter_set("steer.dram", steer_total[2]);
        // CAT partition outcome. Exported only when some domain uses CAT
        // at all, so non-CAT runs keep a byte-identical metric set.
        if self.policy.any_cat() {
            self.metrics.counter_set(
                "cat.reallocations",
                self.cat.as_ref().map_or(0, |c| c.reallocations()),
            );
            for d in 0..self.policy.num_domains() {
                let ways = match self.policy.caps(d as u16).cat {
                    CatMode::Off => continue,
                    CatMode::Static(m) => m.count(),
                    CatMode::Auto => self
                        .cat
                        .as_ref()
                        .and_then(|c| c.ways(d))
                        .expect("auto CAT domain without allocator"),
                };
                self.metrics
                    .counter_set(&format!("cat.domain{d}.ways"), ways as u64);
            }
        }
        // Flow-director pressure outcome. Exported only when the bounded
        // steering state is actually under pressure (some tenant's flows
        // exceed its filter budget, or churn/wide sets are in play), so
        // fully-pinned runs keep a byte-identical metric set.
        if let Some(fd) = self.fd.as_ref() {
            let s = self.nic.flow_director().stats();
            self.metrics.counter_set("fd.perfect_hits", s.perfect_hits);
            self.metrics.counter_set("fd.atr_hits", s.atr_hits);
            self.metrics
                .counter_set("fd.atr_collisions", s.atr_collisions);
            self.metrics
                .counter_set("fd.rss_fallbacks", s.rss_fallbacks);
            self.metrics
                .counter_set("fd.perfect_installed", s.perfect_installed);
            self.metrics
                .counter_set("fd.perfect_updated", s.perfect_updated);
            self.metrics
                .counter_set("fd.perfect_evicted", s.perfect_evicted);
            self.metrics
                .counter_set("fd.perfect_rejected", s.perfect_rejected);
            self.metrics.counter_set("fd.atr_learned", s.atr_learned);
            self.metrics.counter_set("fd.atr_aged", s.atr_aged);
            let mut mis = 0;
            for (q, m) in fd.mix.iter().enumerate() {
                self.metrics.counter_set(&format!("fd.q{q}.perfect"), m[0]);
                self.metrics.counter_set(&format!("fd.q{q}.atr"), m[1]);
                self.metrics
                    .counter_set(&format!("fd.q{q}.collision"), m[2]);
                self.metrics.counter_set(&format!("fd.q{q}.rss"), m[3]);
                self.metrics.counter_set(&format!("fd.q{q}.mis"), m[4]);
                mis += m[4];
            }
            self.metrics.counter_set("fd.mis_steered", mis);
        }
        self.metrics
            .counter_set("packets.completed", totals.completed_packets);
        self.metrics
            .counter_set("maint.self_inval", totals.self_inval);
        for (i, c) in h.core.iter().enumerate() {
            self.metrics
                .counter_set(&format!("core{i}.mlc.wb"), c.mlc_wb.get());
        }
        // Per-core attribution: steering mix by destination core, queue
        // RX load/loss, completions, and the packet-latency histograms —
        // everything a multi-tenant report needs to slice a mixed run by
        // the cores/queues each tenant owns.
        for (i, s) in self.steer.iter().enumerate() {
            self.metrics
                .counter_set(&format!("core{i}.steer.llc"), s[0]);
            self.metrics
                .counter_set(&format!("core{i}.steer.mlc"), s[1]);
            self.metrics
                .counter_set(&format!("core{i}.steer.dram"), s[2]);
        }
        for (q, qs) in self.nic.queue_stats().iter().enumerate() {
            self.metrics
                .counter_set(&format!("queue{q}.rx.packets"), qs.rx_packets.get());
            self.metrics
                .counter_set(&format!("queue{q}.rx.drops"), qs.rx_drops.get());
        }
        // Mbuf-pool outcome, exported only for queues that configured an
        // explicit pool — implicit status-quo rings add no metrics, so
        // pre-pool goldens stay byte-identical.
        for (q, w) in self.cfg.workloads.iter().enumerate() {
            if w.pool.is_none() {
                continue;
            }
            let p = self.nic.ring(QueueId(q as u16)).pool();
            let s = p.stats();
            if let PoolMode::Recycle { slots } = p.mode() {
                self.metrics
                    .counter_set(&format!("pool.q{q}.slots"), u64::from(slots));
            }
            self.metrics
                .counter_set(&format!("pool.q{q}.recycled"), s.recycled);
            self.metrics
                .counter_set(&format!("pool.q{q}.starved"), s.starved);
            self.metrics
                .counter_set(&format!("pool.q{q}.spilled"), s.spilled);
            // Idle-flush outcome, gated on the knob so pre-flush goldens
            // keep a byte-identical metric set.
            if self.cfg.pool_idle_flush.is_some() {
                self.metrics.counter_set(
                    &format!("pool.q{q}.idle_flushed"),
                    self.pool_idle_flushed[q],
                );
            }
        }
        for (i, st) in self.nf.iter().enumerate() {
            if let Some(st) = st {
                self.metrics
                    .counter_set(&format!("core{i}.packets.completed"), st.completed);
                if st.lat_hist.count() > 0 {
                    self.metrics
                        .histogram_merge(&format!("core{i}.pkt_latency_ns"), &st.lat_hist);
                }
                for (si, stage) in ChainStage::ALL.iter().enumerate() {
                    if st.stage_hist[si].count() > 0 {
                        self.metrics.histogram_merge(
                            &format!("core{i}.stage.{}_ns", stage.name()),
                            &st.stage_hist[si],
                        );
                    }
                }
            }
        }
        // Per-core burst execution times (bursty traffic only): the log2
        // distribution of per-window exe times, one histogram per core
        // that completed at least one burst.
        for (i, b) in self.core_bursts.iter().enumerate() {
            let mut hist = Histogram::new();
            for w in b.windows() {
                if w.packets > 0 {
                    hist.record(w.exe_time().as_ns());
                }
            }
            if hist.count() > 0 {
                self.metrics
                    .histogram_merge(&format!("core{i}.burst_exe_ns"), &hist);
            }
        }
        let (accepted, dropped, issued) = self.prefetchers.iter().fold((0, 0, 0), |acc, p| {
            let s = p.stats();
            (
                acc.0 + s.accepted.get(),
                acc.1 + s.dropped.get(),
                acc.2 + s.issued.get(),
            )
        });
        self.metrics.counter_set("prefetch.accepted", accepted);
        self.metrics.counter_set("prefetch.drops", dropped);
        self.metrics.counter_set("prefetch.issued", issued);
        self.metrics
            .counter_set("trace.records", self.tracer.total());
        self.metrics
            .counter_set("trace.evicted", self.tracer.evicted());
        if let Some(s) = self.samplers.dma_llc_share.samples().last() {
            self.metrics.gauge_set("llc.dma_share", s.value);
        }
        let metrics = self.metrics.snapshot();
        let trace = self.tracer.take_records();
        let profile = (0..Event::TYPES)
            .map(|ti| EventTypeProfile {
                name: Event::NAMES[ti],
                count: self.ev_counts[ti],
                wall: self.ev_wall[ti],
            })
            .collect();
        RunReport {
            policy: self.cfg.policy,
            finished_at: self.queue.now(),
            totals,
            hierarchy: self.hier.stats().clone(),
            dram: self.dram.stats().clone(),
            timelines: Timelines {
                mlc_wb: self.samplers.mlc_wb.into_series(),
                llc_wb: self.samplers.llc_wb.into_series(),
                dram_rd: self.samplers.dram_rd.into_series(),
                dram_wr: self.samplers.dram_wr.into_series(),
                dma_wr: self.samplers.dma_wr.into_series(),
                prefetch: self.samplers.prefetch.into_series(),
                self_inval: self.samplers.self_inval.into_series(),
                dma_llc_share: self.samplers.dma_llc_share,
            },
            latency,
            bursts: self.bursts.map(|b| b.windows()).unwrap_or_default(),
            antagonist_cpa,
            metrics,
            trace,
            profile,
            tick_metrics: self.tick_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SteeringPolicy;
    use idio_net::gen::BurstSpec;

    fn steady_cfg(rate_gbps: f64, policy: SteeringPolicy) -> SystemConfig {
        let mut cfg = SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps });
        cfg.duration = SimTime::from_us(300);
        cfg.drain_grace = Duration::from_us(200);
        cfg.policy = policy;
        cfg
    }

    #[test]
    fn steady_ddio_processes_packets() {
        let report = System::new(steady_cfg(10.0, SteeringPolicy::Ddio)).run();
        assert!(
            report.totals.rx_packets > 400,
            "{}",
            report.totals.rx_packets
        );
        assert_eq!(report.totals.rx_drops, 0);
        // At 10 Gbps/core the CPU keeps up: nearly everything completes.
        assert!(
            report.totals.completed_packets as f64 >= 0.95 * report.totals.rx_packets as f64,
            "completed {} of {}",
            report.totals.completed_packets,
            report.totals.rx_packets
        );
        // DDIO never self-invalidates or prefetches.
        assert_eq!(report.totals.self_inval, 0);
        assert_eq!(report.totals.prefetch_fills, 0);
    }

    #[test]
    fn idio_reduces_mlc_writebacks_on_steady_traffic() {
        // Long enough for the 1 MiB MLC to wrap (>585 packets/core), so the
        // DDIO baseline actually evicts consumed buffers.
        let mut d = steady_cfg(10.0, SteeringPolicy::Ddio);
        d.duration = SimTime::from_ms(2);
        let mut i = steady_cfg(10.0, SteeringPolicy::Idio);
        i.duration = SimTime::from_ms(2);
        let ddio = System::new(d).run();
        let idio = System::new(i).run();
        assert!(idio.totals.self_inval > 0);
        assert!(
            (idio.totals.mlc_wb as f64) < 0.5 * ddio.totals.mlc_wb as f64,
            "idio {} vs ddio {}",
            idio.totals.mlc_wb,
            ddio.totals.mlc_wb
        );
    }

    #[test]
    fn bursty_traffic_tracks_burst_windows() {
        let spec = BurstSpec::for_ring(64, 1514, 25.0, Duration::from_ms(1));
        let mut cfg = SystemConfig::touchdrop_scenario(1, TrafficPattern::Bursty(spec));
        cfg.ring_size = 64;
        cfg.duration = SimTime::from_ms(3);
        cfg.drain_grace = Duration::from_ms(1);
        let report = System::new(cfg).run();
        assert_eq!(report.bursts.len(), 3);
        for b in &report.bursts {
            assert_eq!(b.packets, 64, "all packets of each burst complete");
            assert!(b.exe_time() > Duration::ZERO);
        }
    }

    #[test]
    fn latency_is_recorded_per_core() {
        let report = System::new(steady_cfg(5.0, SteeringPolicy::Ddio)).run();
        assert_eq!(report.latency.len(), 2);
        for (_, s) in &report.latency {
            // At least the descriptor-writeback delay.
            assert!(s.p50 >= Duration::from_us_f64(1.9));
            assert!(s.p99 >= s.p50);
        }
    }

    #[test]
    fn cat_auto_partitions_cores_and_exports_metrics() {
        use crate::policy::PolicySpec;
        let caps = PolicyCaps {
            cat: CatMode::Auto,
            ..SteeringPolicy::Idio.caps()
        };
        let cfg =
            steady_cfg(10.0, SteeringPolicy::Idio).with_queue_policy(0, PolicySpec::Custom(caps));
        let sys = System::new(cfg);
        // Core 0 (the auto domain) holds an exclusive slice; core 1 is
        // pushed to the shared pool — the masks never overlap, and both
        // stay clear of the DDIO ways.
        let m0 = sys.hier.cat_mask(CoreId::new(0)).expect("auto mask");
        let m1 = sys.hier.cat_mask(CoreId::new(1)).expect("shared mask");
        assert!(m0.intersect(m1).is_empty(), "slice {m0} overlaps pool {m1}");
        let ddio = idio_cache::set::WayMask::first(sys.hier.ddio_ways());
        assert!(m0.intersect(ddio).is_empty());
        assert!(m1.intersect(ddio).is_empty());
        let report = sys.run();
        // The default policy interns as domain 0, the custom caps as 1.
        assert!(report.metrics.counter("cat.domain1.ways") >= 1);
        // cat.reallocations is always exported on CAT runs (may be 0).
        assert!(report
            .metrics
            .counters()
            .any(|(n, _)| n == "cat.reallocations"));
    }

    #[test]
    fn cat_static_masks_restrict_only_their_own_cores() {
        use crate::policy::PolicySpec;
        use idio_cache::set::WayMask;
        let caps = PolicyCaps {
            cat: CatMode::Static(WayMask::range(4, 8)),
            ..SteeringPolicy::Ddio.caps()
        };
        let cfg =
            steady_cfg(10.0, SteeringPolicy::Ddio).with_queue_policy(0, PolicySpec::Custom(caps));
        let sys = System::new(cfg);
        assert_eq!(
            sys.hier.cat_mask(CoreId::new(0)),
            Some(WayMask::range(4, 8))
        );
        // Without an auto allocator, other cores keep the default mask.
        assert_eq!(sys.hier.cat_mask(CoreId::new(1)), None);
        let report = sys.run();
        assert_eq!(report.metrics.counter("cat.domain1.ways"), 4);
    }

    #[test]
    fn non_cat_runs_export_no_cat_metrics() {
        let report = System::new(steady_cfg(10.0, SteeringPolicy::Idio)).run();
        assert!(report
            .metrics
            .counters()
            .all(|(n, _)| !n.starts_with("cat.")));
    }

    /// Regression: an NF event dispatched to a core with no NF used to die
    /// on a bare `unwrap`/`expect` deep in the handler; it must fail with a
    /// diagnostic naming both the core and the event.
    #[test]
    #[should_panic(expected = "CoreWake event dispatched to core1, but no NF is configured there")]
    fn nf_event_at_unconfigured_core_is_diagnosed() {
        let mut cfg = steady_cfg(10.0, SteeringPolicy::Ddio);
        // Pin the NFs to cores 0 and 2, leaving core 1 with no NF state.
        cfg.workloads[1].core = CoreId::new(2);
        let mut sys = System::new(cfg);
        assert!(sys.nf[1].is_none(), "core 1 must be unconfigured");
        sys.handle(SimTime::ZERO, Event::CoreWake { core: 1 });
    }

    #[test]
    fn hierarchy_invariants_hold_after_run() {
        let mut cfg = steady_cfg(10.0, SteeringPolicy::Idio);
        cfg.duration = SimTime::from_us(100);
        let mut sys = System::new(cfg);
        // Drive manually so we keep the system afterwards.
        while let Some((now, ev)) = sys.queue.pop() {
            if now > sys.hard_stop {
                break;
            }
            sys.handle(now, ev);
        }
        sys.hier.check_invariants();
    }

    #[test]
    fn hit_breakdown_fractions_sum_to_one() {
        let report = System::new(steady_cfg(10.0, SteeringPolicy::Idio)).run();
        let b = report
            .hit_breakdown(idio_cache::addr::CoreId::new(0))
            .expect("core 0 issued accesses");
        let sum = b.l1 + b.mlc + b.llc + b.dram;
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1: {sum}");
        assert!(b.accesses > 0);
        // Under IDIO at 10 Gbps the working set is MLC-resident.
        assert!(b.mlc + b.l1 > 0.8, "mostly private hits: {b:?}");
    }

    #[test]
    fn trace_replay_reproduces_generator_run() {
        use idio_net::gen::{FlowSpec, TrafficGen};
        // Record what the generator would emit, then replay it: totals
        // must be identical to the generator-driven run.
        let horizon = SimTime::from_us(400);
        let mk_cfg = || {
            let mut cfg =
                SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 10.0 });
            cfg.duration = horizon;
            cfg.drain_grace = Duration::from_us(200);
            cfg
        };
        let generated = System::new(mk_cfg()).run();

        // The system builds workload 0's flow as udp_to_port(5000, len).
        let trace: Vec<_> = TrafficGen::new(
            FlowSpec::udp_to_port(5000, 1514),
            TrafficPattern::Steady { rate_gbps: 10.0 },
            horizon,
        )
        .collect();
        let mut cfg = mk_cfg();
        cfg.trace_replays.insert(0, trace);
        let replayed = System::new(cfg).run();
        assert_eq!(generated.totals, replayed.totals);
    }

    #[test]
    fn empty_trace_replay_is_harmless() {
        let mut cfg = steady_cfg(10.0, SteeringPolicy::Ddio);
        cfg.trace_replays.insert(0, Vec::new());
        let r = System::new(cfg).run();
        // Workload 0 sends nothing; workload 1 still flows.
        assert!(r.totals.rx_packets > 0);
        assert_eq!(r.latency.len(), 1, "only core 1 saw packets");
    }

    #[test]
    fn replay_for_unknown_workload_is_rejected() {
        let mut cfg = steady_cfg(10.0, SteeringPolicy::Ddio);
        cfg.trace_replays.insert(7, Vec::new());
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn latency_histograms_are_exported_per_core() {
        let report = System::new(steady_cfg(5.0, SteeringPolicy::Ddio)).run();
        for core in 0..2 {
            let h = report
                .metrics
                .histogram(&format!("core{core}.pkt_latency_ns"))
                .expect("both cores completed packets");
            assert_eq!(
                h.count(),
                report
                    .metrics
                    .counter(&format!("core{core}.packets.completed")),
                "one histogram sample per completed packet"
            );
            // Matches the LatencyRecorder summary to bucket precision.
            let (_, s) = report.latency[core];
            let p99_ns = s.p99.as_ns();
            let est = h.percentile(99.0).unwrap();
            assert!(
                est >= p99_ns && est <= p99_ns.max(1) * 2,
                "{est} vs {p99_ns}"
            );
        }
    }

    #[test]
    fn per_core_steer_sums_to_global() {
        let report = System::new(steady_cfg(10.0, SteeringPolicy::Idio)).run();
        let m = &report.metrics;
        for kind in ["llc", "mlc", "dram"] {
            let total = m.counter(&format!("steer.{kind}"));
            let sum: u64 = (0..2)
                .map(|i| m.counter(&format!("core{i}.steer.{kind}")))
                .sum();
            assert_eq!(sum, total, "steer.{kind}");
        }
        assert!(m.counter("steer.mlc") > 0, "IDIO steers into MLCs");
        // Per-queue RX attribution covers the global counters.
        let rx: u64 = (0..2)
            .map(|q| m.counter(&format!("queue{q}.rx.packets")))
            .sum();
        assert_eq!(rx, report.totals.rx_packets);
    }

    fn tenant_cfg() -> SystemConfig {
        use crate::config::TenantSpec;
        use idio_net::packet::Dscp;
        let mut cfg =
            SystemConfig::touchdrop_scenario(4, TrafficPattern::Steady { rate_gbps: 5.0 });
        cfg.duration = SimTime::from_us(300);
        cfg.drain_grace = Duration::from_us(200);
        cfg.workloads[2].kind = NfKind::L2FwdPayloadDrop;
        cfg.workloads[3].kind = NfKind::L2FwdPayloadDrop;
        cfg.tenants = vec![
            TenantSpec {
                name: "lat".into(),
                workloads: vec![0, 1],
                flows: 6,
                base_port: 5000,
                churn: None,
                train: 1,
                traffic: TrafficPattern::Steady { rate_gbps: 8.0 },
                packet_len: 1514,
                dscp: Dscp::BEST_EFFORT,
                replay: None,
                policy: None,
            },
            TenantSpec {
                name: "stream".into(),
                workloads: vec![2, 3],
                flows: 4,
                base_port: 6000,
                churn: None,
                train: 1,
                traffic: TrafficPattern::Steady { rate_gbps: 20.0 },
                packet_len: 1514,
                dscp: Dscp::CLASS1_DEFAULT,
                replay: None,
                policy: None,
            },
        ];
        cfg
    }

    #[test]
    fn tenant_flows_spread_across_the_tenants_queues() {
        let report = System::new(tenant_cfg()).run();
        let m = &report.metrics;
        // Every queue of both tenants receives packets (6 flows over
        // queues {0,1} and 4 flows over queues {2,3}, dealt round-robin).
        for q in 0..4 {
            assert!(
                m.counter(&format!("queue{q}.rx.packets")) > 0,
                "queue {q} starved"
            );
        }
        // The tenant halves split the aggregate close to evenly: flows
        // 0,2,4 of 6 land on queue 0 (3/6), flows 1,3,5 on queue 1.
        let q0 = m.counter("queue0.rx.packets") as f64;
        let q1 = m.counter("queue1.rx.packets") as f64;
        assert!((q0 / (q0 + q1) - 0.5).abs() < 0.05, "{q0} vs {q1}");
        assert!(report.totals.completed_packets > 0);
    }

    #[test]
    fn tenant_runs_are_deterministic() {
        let a = System::new(tenant_cfg()).run();
        let b = System::new(tenant_cfg()).run();
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    }

    #[test]
    fn antagonist_runs_and_reports_cpa() {
        let mut cfg = steady_cfg(10.0, SteeringPolicy::Ddio).with_antagonist();
        cfg.duration = SimTime::from_us(200);
        let report = System::new(cfg).run();
        let cpa = report.antagonist_cpa.expect("antagonist ran");
        assert!(cpa > 0.0);
    }

    /// Regression test for the CPU-paced parked-hint release path. The old
    /// implementation drained the parked queue into a fresh `Vec` on every
    /// pointer advance and popped it back with `expect("checked front")`;
    /// the arena-backed version must still release every parked hint as
    /// the pointer catches up (under pressure that parks far beyond the
    /// pacing window) and must steer/prefetch exactly as many lines as a
    /// fresh run — the drain is observable through the prefetch counters.
    #[test]
    fn cpu_paced_parked_hints_release_on_pointer_advance() {
        let mk = || {
            // A tight window at an over-provisioned rate forces hints well
            // past the window, so most of them park and only the pointer
            // advances release them.
            let mut cfg = steady_cfg(40.0, SteeringPolicy::Idio);
            cfg.prefetcher.pacing =
                crate::prefetcher::PrefetchPacing::CpuPaced { window_packets: 2 };
            cfg
        };
        let report = System::new(mk()).run();
        assert!(report.totals.completed_packets > 100);
        // CPU pacing never drops hints: everything accepted is eventually
        // issued (parked hints drain as the pointer advances, and the run
        // includes a drain grace long enough to finish them).
        assert_eq!(report.metrics.counter("prefetch.drops"), 0);
        assert!(report.metrics.counter("prefetch.issued") > 0);
        // Determinism across the arena-backed path.
        let again = System::new(mk()).run();
        assert_eq!(report.totals, again.totals);
        assert_eq!(report.metrics.to_json(), again.metrics.to_json());
    }

    /// The tick-metrics timeline is off by default, dumps one well-formed
    /// NDJSON object per control tick when enabled, and never perturbs the
    /// simulation it observes.
    #[test]
    fn tick_metrics_records_one_line_per_tick_without_perturbing_the_run() {
        let base = steady_cfg(10.0, SteeringPolicy::Idio);
        let off = System::new(base.clone()).run();
        assert!(off.tick_metrics.is_empty(), "off by default");
        let mut cfg = base;
        cfg.tick_metrics = true;
        let on = System::new(cfg).run();
        // One line per 1 us control tick over duration + drain grace.
        let expect_ticks = (on.finished_at.as_us()) as usize;
        assert_eq!(on.tick_metrics.len(), expect_ticks);
        for line in &on.tick_metrics {
            assert!(
                line.starts_with("{\"t_us\":") && line.ends_with('}'),
                "{line}"
            );
            assert!(line.contains("\"steer\":{\"llc\":"), "{line}");
            // Two cores -> two FSM state chars, each M or L.
            let fsm = line
                .split("\"fsm\":\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .expect("fsm field");
            assert_eq!(fsm.len(), 2, "{line}");
            assert!(fsm.chars().all(|c| c == 'M' || c == 'L'), "{line}");
            // No CAT allocator in this config -> no cat section.
            assert!(!line.contains("\"cat\""), "{line}");
        }
        // The steering deltas must sum to the run's total steered lines.
        let sum: u64 = on
            .tick_metrics
            .iter()
            .map(|l| {
                ["\"llc\":", "\"mlc\":", "\"dram\":"]
                    .iter()
                    .map(|k| {
                        l.split(k)
                            .nth(1)
                            .and_then(|r| {
                                r.chars()
                                    .take_while(char::is_ascii_digit)
                                    .collect::<String>()
                                    .parse::<u64>()
                                    .ok()
                            })
                            .expect("steer delta")
                    })
                    .sum::<u64>()
            })
            .sum();
        let total = on.metrics.counter("steer.llc")
            + on.metrics.counter("steer.mlc")
            + on.metrics.counter("steer.dram");
        assert_eq!(sum, total, "tick deltas cover every steered line");
        // Observation is free: the observed run's results are identical.
        assert_eq!(on.totals, off.totals);
        assert_eq!(on.metrics.to_json(), off.metrics.to_json());
    }

    #[test]
    fn recycle_pool_frees_at_completion_and_never_leaks() {
        // Satellite audit: buffers return to the pool at the completion
        // event (TX writeback for forwarding NFs), never at steer time.
        // A 32-slot recycle pool under L2Fwd wraps its free list many
        // times over; the pool's own double-free / slot-leak asserts
        // would abort the run if a buffer were freed twice or dropped on
        // the floor, and the final recycled count must equal every
        // buffer the NIC ever handed out.
        let mut cfg =
            SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 10.0 });
        cfg.duration = SimTime::from_us(500);
        cfg.drain_grace = Duration::from_us(400);
        cfg.policy = SteeringPolicy::Idio;
        cfg.workloads[0].kind = NfKind::L2Fwd;
        cfg.workloads[0].pool = Some(idio_pool::PoolSpec::Recycle { slots: Some(32) });
        let report = System::new(cfg).run();
        assert!(
            report.totals.completed_packets > 64,
            "pool wrapped at least twice, got {}",
            report.totals.completed_packets
        );
        assert_eq!(report.metrics.counter("pool.q0.slots"), 32);
        // No leak: every reserved buffer was recycled exactly once by the
        // end of the drain grace.
        assert_eq!(
            report.metrics.counter("pool.q0.recycled"),
            report.totals.rx_packets
        );
        // A 32-buffer working set never exceeds the per-queue DDIO budget.
        assert_eq!(report.metrics.counter("pool.q0.spilled"), 0);
    }

    #[test]
    fn starved_recycle_pool_drops_instead_of_growing() {
        // A deliberately tiny pool under a high rate: allocation outruns
        // recycling, the NIC drops at reserve time, and the starvation
        // counter — not the footprint — absorbs the pressure.
        let mut cfg =
            SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 40.0 });
        cfg.duration = SimTime::from_us(300);
        cfg.drain_grace = Duration::from_us(300);
        cfg.policy = SteeringPolicy::Ddio;
        cfg.workloads[0].kind = NfKind::TouchDrop;
        cfg.workloads[0].pool = Some(idio_pool::PoolSpec::Recycle { slots: Some(2) });
        let report = System::new(cfg).run();
        let starved = report.metrics.counter("pool.q0.starved");
        assert!(starved > 0, "2 slots at 40 Gbps must starve");
        assert!(
            report.totals.rx_drops >= starved,
            "every starvation is a dropped packet: drops {} < starved {starved}",
            report.totals.rx_drops
        );
        assert_eq!(
            report.metrics.counter("pool.q0.recycled"),
            report.totals.rx_packets,
            "the buffers that were granted still all come back"
        );
    }

    #[test]
    fn flow_director_pressure_degrades_steering_and_counts_mis_steers() {
        use crate::config::TenantSpec;
        use idio_net::packet::Dscp;
        // One tenant, 64 churning flows over 4 queues, but only 8 perfect
        // filters: pinned flows hit perfectly, the rest spread by RSS
        // until aRFS-style learning converges them onto ATR — and churn
        // keeps invalidating both, so every steering source and the
        // mis-steer path are exercised.
        let mut cfg =
            SystemConfig::touchdrop_scenario(4, TrafficPattern::Steady { rate_gbps: 20.0 });
        cfg.duration = SimTime::from_us(300);
        cfg.drain_grace = Duration::from_us(200);
        cfg.perfect_filter_entries = 8;
        cfg.atr_lifetime = Some(Duration::from_us(200));
        cfg.tenants = vec![TenantSpec {
            name: "churny".into(),
            workloads: vec![0, 1, 2, 3],
            flows: 32,
            base_port: 5000,
            churn: Some(Duration::from_us(60)),
            train: 1,
            traffic: TrafficPattern::Steady { rate_gbps: 20.0 },
            packet_len: 1514,
            dscp: Dscp::BEST_EFFORT,
            replay: None,
            policy: None,
        }];
        let report = System::new(cfg).run();
        let m = &report.metrics;
        assert!(m.counter("fd.perfect_hits") > 0, "pinned flows hit EP");
        assert!(m.counter("fd.rss_fallbacks") > 0, "unpinned start on RSS");
        assert!(m.counter("fd.atr_learned") > 0, "completions program ATR");
        assert!(m.counter("fd.atr_hits") > 0, "learned flows steer by ATR");
        assert!(
            m.counter("fd.mis_steered") > 0,
            "RSS spreads some flows off their home queue"
        );
        assert!(
            m.counter("fd.perfect_evicted") > 0,
            "churn refresh into a full 8-entry table evicts"
        );
        // Conservation: every accepted packet was steered exactly once.
        let total = m.counter("fd.perfect_hits")
            + m.counter("fd.atr_hits")
            + m.counter("fd.atr_collisions")
            + m.counter("fd.rss_fallbacks");
        assert_eq!(total, report.totals.rx_packets + report.totals.rx_drops);
        // Per-queue mix sums to the global counters.
        let mis: u64 = (0..4).map(|q| m.counter(&format!("fd.q{q}.mis"))).sum();
        assert_eq!(mis, m.counter("fd.mis_steered"));
    }

    #[test]
    fn fully_pinned_tenants_export_no_fd_metrics() {
        // Flow populations that fit the filter budget keep the legacy
        // pin-everything behavior and add no fd.* keys (golden
        // compatibility).
        let report = System::new(tenant_cfg()).run();
        assert_eq!(report.metrics.counter("fd.perfect_hits"), 0);
        assert!(report
            .metrics
            .counters()
            .all(|(k, _)| !k.starts_with("fd.")));
    }

    #[test]
    fn idle_recycle_pool_flushes_after_the_configured_window() {
        // Traffic stops at `duration`; the pool sits idle through the
        // drain grace and must self-invalidate once the window elapses.
        let mut cfg =
            SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 10.0 });
        cfg.duration = SimTime::from_us(150);
        cfg.drain_grace = Duration::from_us(300);
        cfg.policy = SteeringPolicy::Ddio;
        cfg.workloads[0].pool = Some(idio_pool::PoolSpec::Recycle { slots: Some(32) });
        cfg.pool_idle_flush = Some(Duration::from_us(100));
        let report = System::new(cfg.clone()).run();
        assert_eq!(
            report.metrics.counter("pool.q0.idle_flushed"),
            1,
            "one idle window elapses inside the drain grace"
        );
        // The flush is an invalidation pass: it must show up in the
        // self-invalidation totals even under a policy that never
        // invalidates on free.
        assert!(report.totals.self_inval > 0);
        // Without the knob the counter is not exported at all.
        cfg.pool_idle_flush = None;
        let legacy = System::new(cfg).run();
        assert!(legacy
            .metrics
            .counters()
            .all(|(k, _)| k != "pool.q0.idle_flushed"));
    }

    #[test]
    fn chained_nf_exports_per_stage_histograms() {
        use idio_stack::nf::{ChainStage, NfChain};
        let mut cfg =
            SystemConfig::touchdrop_scenario(1, TrafficPattern::Steady { rate_gbps: 8.0 });
        cfg.duration = SimTime::from_us(300);
        cfg.drain_grace = Duration::from_us(200);
        cfg.policy = SteeringPolicy::Idio;
        cfg.workloads[0].kind = NfKind::Chain(NfChain::upf());
        cfg.workloads[0].pool = Some(idio_pool::PoolSpec::Recycle { slots: None });
        let report = System::new(cfg).run();
        let completed = report.totals.completed_packets;
        assert!(completed > 0);
        // Every stage of the UPF chain ran once per completed packet and
        // carries real service time; stages not in the chain export
        // nothing.
        for stage in [
            ChainStage::Parse,
            ChainStage::Classify,
            ChainStage::Rewrite,
            ChainStage::Forward,
        ] {
            let h = report
                .metrics
                .histogram(&format!("core0.stage.{}_ns", stage.name()))
                .unwrap_or_else(|| panic!("missing histogram for stage {}", stage.name()));
            assert_eq!(h.count(), completed, "stage {}", stage.name());
            assert!(
                h.mean() > 0.0,
                "stage {} has real service time",
                stage.name()
            );
        }
        assert!(
            report.metrics.histogram("core0.stage.inspect_ns").is_none(),
            "stages outside the chain are not exported"
        );
    }

    #[test]
    fn tick_metrics_diverge_between_recycle_and_dram_pools() {
        // The acceptance shape of the recycle-vs-dram duel: under the
        // same chained workload, the recycling queue's live footprint is
        // pinned at its slot bound with starvation drops absorbing the
        // pressure, while the dram twin never recycles and lets its
        // footprint float.
        use idio_stack::nf::NfChain;
        let mut cfg =
            SystemConfig::touchdrop_scenario(2, TrafficPattern::Steady { rate_gbps: 40.0 });
        cfg.duration = SimTime::from_us(400);
        cfg.drain_grace = Duration::from_us(300);
        cfg.policy = SteeringPolicy::Idio;
        for w in &mut cfg.workloads {
            w.kind = NfKind::Chain(NfChain::upf());
        }
        cfg.workloads[0].pool = Some(idio_pool::PoolSpec::Recycle { slots: Some(8) });
        cfg.workloads[1].pool = Some(idio_pool::PoolSpec::Dram);
        cfg.tick_metrics = true;
        let report = System::new(cfg).run();

        let field = |line: &str, queue: &str, key: &str| -> u64 {
            let q = line.split(queue).nth(1).expect("queue present");
            q.split(key)
                .nth(1)
                .and_then(|r| {
                    r.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .ok()
                })
                .expect("pool field")
        };
        for line in &report.tick_metrics {
            assert!(
                field(line, "\"q0\":", "\"live\":") <= 8,
                "recycle footprint stays inside its bound: {line}"
            );
            assert_eq!(
                field(line, "\"q1\":", "\"recycled\":"),
                0,
                "dram mbufs are never re-identified"
            );
        }
        let last = report.tick_metrics.last().expect("ticks recorded");
        assert!(field(last, "\"q0\":", "\"recycled\":") > 0);
        assert!(
            field(last, "\"q0\":", "\"starved\":") > 0,
            "8 slots at 40 Gbps starve: {last}"
        );
    }

    #[test]
    fn unpooled_runs_export_no_pool_metrics() {
        // The telemetry contract behind golden stability: without an
        // explicit pool there is no pool.* surface at all.
        let report = System::new(steady_cfg(10.0, SteeringPolicy::Idio)).run();
        assert!(
            !report
                .metrics
                .counters()
                .any(|(n, _)| n.starts_with("pool.")),
            "legacy runs must not grow pool counters"
        );
    }
}
