//! Property tests for the IDIO controller and FSM: the 2-bit counter
//! never leaves its domain, policy contracts hold for arbitrary metadata,
//! and the prefetch queue never exceeds its depth.

use idio_core::controller::{IdioConfig, IdioController, Placement};
use idio_core::fsm::{MlcStatus, PrefetchFsm};
use idio_core::policy::SteeringPolicy;
use idio_core::prefetcher::{MlcPrefetcher, PrefetchPacing, PrefetcherConfig};
use idio_core::cache::addr::{CoreId, LineAddr};
use idio_core::nic::tlp::{AppClass, TlpMeta};
use idio_engine::time::Duration;
use proptest::prelude::*;

fn meta_strategy(cores: u16) -> impl Strategy<Value = TlpMeta> {
    (
        0..cores,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(c, class1, header, burst)| TlpMeta {
            dest_core: CoreId::new(c),
            app_class: if class1 { AppClass::Class1 } else { AppClass::Class0 },
            is_header: header,
            is_burst: burst,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fsm_state_stays_in_domain(events in proptest::collection::vec(any::<Option<bool>>(), 0..200)) {
        let mut fsm = PrefetchFsm::new();
        for ev in events {
            match ev {
                None => fsm.reset_on_burst(),
                Some(pressure) => fsm.update(pressure),
            }
            prop_assert!(fsm.state() <= 0b11);
            prop_assert_eq!(
                fsm.status() == MlcStatus::Llc,
                fsm.state() == 0b11,
                "status is derived exactly from the disabled state"
            );
        }
    }

    #[test]
    fn disabled_state_needs_a_burst_to_leave(pressures in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut fsm = PrefetchFsm::new();
        for p in pressures {
            fsm.update(p);
            prop_assert_eq!(fsm.status(), MlcStatus::Llc, "no burst, no steering");
        }
    }

    #[test]
    fn ddio_and_invalidate_policies_always_place_in_llc(
        metas in proptest::collection::vec(meta_strategy(4), 1..100)
    ) {
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            prop_assert_eq!(ctrl.steer(SteeringPolicy::Ddio, m), Placement::Llc);
            prop_assert_eq!(ctrl.steer(SteeringPolicy::InvalidateOnly, m), Placement::Llc);
        }
    }

    #[test]
    fn headers_always_reach_the_destination_mlc(
        metas in proptest::collection::vec(meta_strategy(4), 1..100)
    ) {
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            if m.is_header {
                prop_assert_eq!(
                    ctrl.steer(SteeringPolicy::Idio, m),
                    Placement::Mlc(m.dest_core)
                );
            }
        }
    }

    #[test]
    fn class1_payload_never_lands_in_cache_under_idio(
        metas in proptest::collection::vec(meta_strategy(4), 1..100)
    ) {
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            if !m.is_header && m.app_class == AppClass::Class1 {
                prop_assert_eq!(ctrl.steer(SteeringPolicy::Idio, m), Placement::Dram);
                prop_assert_eq!(ctrl.steer(SteeringPolicy::StaticIdio, m), Placement::Dram);
            }
        }
    }

    #[test]
    fn static_policy_steers_every_class0_line_to_mlc(
        metas in proptest::collection::vec(meta_strategy(4), 1..100)
    ) {
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            if m.app_class == AppClass::Class0 {
                prop_assert_eq!(
                    ctrl.steer(SteeringPolicy::StaticIdio, m),
                    Placement::Mlc(m.dest_core)
                );
            }
        }
    }

    #[test]
    fn control_plane_accepts_any_monotonic_counters(
        deltas in proptest::collection::vec((0..500u64, 0..500u64), 1..100)
    ) {
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 2);
        let (mut a, mut b) = (0u64, 0u64);
        for (da, db) in deltas {
            a += da;
            b += db;
            ctrl.control_tick(&[a, b]);
            // Telemetry stays within u32 range by construction.
            let _ = ctrl.mlc_wb_avg(CoreId::new(0));
            let _ = ctrl.mlc_wb_avg(CoreId::new(1));
        }
    }

    #[test]
    fn prefetch_queue_depth_is_a_hard_bound(
        depth in 1..64usize,
        pushes in 1..300u64,
    ) {
        let mut p = MlcPrefetcher::new(PrefetcherConfig {
            queue_depth: depth,
            issue_gap: Duration::from_ns(5),
            pacing: PrefetchPacing::Queued,
        });
        let mut accepted = 0u64;
        for i in 0..pushes {
            if p.push(LineAddr::new(i)) {
                accepted += 1;
            }
            prop_assert!(p.len() <= depth);
        }
        prop_assert_eq!(accepted.min(depth as u64), p.len() as u64);
        prop_assert_eq!(p.stats().accepted.get() + p.stats().dropped.get(), pushes);
    }
}
