//! Randomized property tests for the IDIO controller and FSM: the 2-bit
//! counter never leaves its domain, policy contracts hold for arbitrary
//! metadata, and the prefetch queue never exceeds its depth. Driven by the
//! in-repo deterministic harness (`idio_engine::check`).

use idio_core::cache::addr::{CoreId, LineAddr};
use idio_core::controller::{IdioConfig, IdioController, Placement};
use idio_core::fsm::{MlcStatus, PrefetchFsm};
use idio_core::nic::tlp::{AppClass, TlpMeta};
use idio_core::policy::SteeringPolicy;
use idio_core::prefetcher::{MlcPrefetcher, PrefetchPacing, PrefetcherConfig};
use idio_engine::check::{Cases, Gen};
use idio_engine::time::Duration;

fn gen_meta(g: &mut Gen, cores: u16) -> TlpMeta {
    TlpMeta {
        dest_core: CoreId::new(g.u16(0..cores)),
        app_class: if g.bool() {
            AppClass::Class1
        } else {
            AppClass::Class0
        },
        is_header: g.bool(),
        is_burst: g.bool(),
    }
}

#[test]
fn fsm_state_stays_in_domain() {
    Cases::new(512).run(|g| {
        let events = g.vec(0..200, |g| if g.bool() { Some(g.bool()) } else { None });
        let mut fsm = PrefetchFsm::new();
        for ev in events {
            match ev {
                None => fsm.reset_on_burst(),
                Some(pressure) => fsm.update(pressure),
            }
            assert!(fsm.state() <= 0b11);
            assert_eq!(
                fsm.status() == MlcStatus::Llc,
                fsm.state() == 0b11,
                "status is derived exactly from the disabled state"
            );
        }
    });
}

#[test]
fn disabled_state_needs_a_burst_to_leave() {
    Cases::new(512).run(|g| {
        let pressures = g.vec(1..100, Gen::bool);
        let mut fsm = PrefetchFsm::new();
        for p in pressures {
            fsm.update(p);
            assert_eq!(fsm.status(), MlcStatus::Llc, "no burst, no steering");
        }
    });
}

#[test]
fn ddio_and_invalidate_policies_always_place_in_llc() {
    Cases::new(512).run(|g| {
        let metas = g.vec(1..100, |g| gen_meta(g, 4));
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            assert_eq!(ctrl.steer(SteeringPolicy::Ddio, m), Placement::Llc);
            assert_eq!(
                ctrl.steer(SteeringPolicy::InvalidateOnly, m),
                Placement::Llc
            );
        }
    });
}

#[test]
fn headers_always_reach_the_destination_mlc() {
    Cases::new(512).run(|g| {
        let metas = g.vec(1..100, |g| gen_meta(g, 4));
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            if m.is_header {
                assert_eq!(
                    ctrl.steer(SteeringPolicy::Idio, m),
                    Placement::Mlc(m.dest_core)
                );
            }
        }
    });
}

#[test]
fn class1_payload_never_lands_in_cache_under_idio() {
    Cases::new(512).run(|g| {
        let metas = g.vec(1..100, |g| gen_meta(g, 4));
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            if !m.is_header && m.app_class == AppClass::Class1 {
                assert_eq!(ctrl.steer(SteeringPolicy::Idio, m), Placement::Dram);
                assert_eq!(ctrl.steer(SteeringPolicy::StaticIdio, m), Placement::Dram);
            }
        }
    });
}

#[test]
fn static_policy_steers_every_class0_line_to_mlc() {
    Cases::new(512).run(|g| {
        let metas = g.vec(1..100, |g| gen_meta(g, 4));
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 4);
        for m in metas {
            if m.app_class == AppClass::Class0 {
                assert_eq!(
                    ctrl.steer(SteeringPolicy::StaticIdio, m),
                    Placement::Mlc(m.dest_core)
                );
            }
        }
    });
}

#[test]
fn control_plane_accepts_any_monotonic_counters() {
    Cases::new(512).run(|g| {
        let deltas = g.vec(1..100, |g| (g.u64(0..500), g.u64(0..500)));
        let mut ctrl = IdioController::new(IdioConfig::paper_default(), 2);
        let (mut a, mut b) = (0u64, 0u64);
        for (da, db) in deltas {
            a += da;
            b += db;
            ctrl.control_tick(&[a, b]);
            // Telemetry stays within u32 range by construction.
            let _ = ctrl.mlc_wb_avg(CoreId::new(0));
            let _ = ctrl.mlc_wb_avg(CoreId::new(1));
        }
    });
}

#[test]
fn prefetch_queue_depth_is_a_hard_bound() {
    Cases::new(512).run(|g| {
        let depth = g.usize(1..64);
        let pushes = g.u64(1..300);
        let mut p = MlcPrefetcher::new(PrefetcherConfig {
            queue_depth: depth,
            issue_gap: Duration::from_ns(5),
            pacing: PrefetchPacing::Queued,
        });
        let mut accepted = 0u64;
        for i in 0..pushes {
            if p.push(LineAddr::new(i)) {
                accepted += 1;
            }
            assert!(p.len() <= depth);
        }
        assert_eq!(accepted.min(depth as u64), p.len() as u64);
        assert_eq!(p.stats().accepted.get() + p.stats().dropped.get(), pushes);
    });
}
