//! Property tests for the sweep orchestrator's scheduler.
//!
//! The contract under test: for *any* item count and *any* worker count,
//! [`parallel_map`] runs every item exactly once and returns the results
//! in declaration order.

use std::sync::atomic::{AtomicUsize, Ordering};

use idio_core::sweep::parallel_map;
use idio_engine::check::Cases;
use idio_engine::rng::derive_seed;

#[test]
fn every_item_runs_exactly_once_for_any_shape() {
    Cases::new(64).run(|g| {
        let n = g.usize(0..40);
        let jobs = g.usize(1..17);
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let out = parallel_map((0..n).collect::<Vec<_>>(), jobs, |_, item| {
            counts[item].fetch_add(1, Ordering::Relaxed);
            item
        });
        assert_eq!(out.len(), n);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} ran a wrong number of times"
            );
        }
    });
}

#[test]
fn results_stay_in_declaration_order_for_any_shape() {
    Cases::new(64).run(|g| {
        let n = g.usize(0..50);
        let jobs = g.usize(1..13);
        // Mix fast and slow items so completion order differs from
        // declaration order under real parallelism.
        let delays: Vec<u64> = (0..n).map(|_| g.u64(0..3)).collect();
        let items: Vec<(usize, u64)> = delays.iter().copied().enumerate().collect();
        let out = parallel_map(items, jobs, |idx, (item_idx, delay_ms)| {
            assert_eq!(idx, item_idx, "callback index matches declaration position");
            if delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            }
            item_idx * 7 + 1
        });
        let expected: Vec<usize> = (0..n).map(|i| i * 7 + 1).collect();
        assert_eq!(out, expected);
    });
}

#[test]
fn worker_count_never_changes_the_output() {
    Cases::new(32).run(|g| {
        let n = g.usize(0..30);
        let items: Vec<u64> = (0..n).map(|_| g.u64(0..1_000_000)).collect();
        let serial = parallel_map(items.clone(), 1, |i, x| x.wrapping_mul(i as u64 + 1));
        for jobs in [2usize, 3, 8] {
            let parallel = parallel_map(items.clone(), jobs, |i, x| x.wrapping_mul(i as u64 + 1));
            assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
        }
    });
}

#[test]
fn derived_seeds_depend_on_label_not_schedule() {
    Cases::new(128).run(|g| {
        let root = g.u64(0..u64::MAX);
        let a = g.u64(0..1000);
        let b = g.u64(0..1000);
        let la = format!("cell/{a}");
        let lb = format!("cell/{b}");
        // Pure function of (root, label).
        assert_eq!(derive_seed(root, &la), derive_seed(root, &la));
        if a != b {
            assert_ne!(
                derive_seed(root, &la),
                derive_seed(root, &lb),
                "distinct labels must get distinct seeds (root={root:#x})"
            );
        }
    });
}

#[test]
fn jobs_larger_than_item_count_is_fine() {
    let out = parallel_map(vec![1u32, 2, 3], 64, |_, x| x + 1);
    assert_eq!(out, vec![2, 3, 4]);
}
