//! A minimal deterministic property-testing harness.
//!
//! The container this repo builds in has no access to crates.io, so the
//! randomized test suites cannot use `proptest`. This module provides the
//! small subset the suites actually need: a seeded case loop and a
//! generator handle with uniform primitives. Failures print the case seed,
//! which can be passed to [`Cases::with_seed`] (or via the
//! `IDIO_CHECK_SEED` environment variable) to replay a single shrunk-free
//! reproduction.
//!
//! # Examples
//!
//! ```
//! use idio_engine::check::Cases;
//!
//! Cases::new(64).run(|g| {
//!     let a = g.u64(0..100);
//!     let b = g.u64(0..100);
//!     assert!(a + b < 200);
//! });
//! ```

use crate::rng::SimRng;
use std::ops::Range;

/// A deterministic case runner: executes a property closure `n` times with
/// independent, seed-derived generators.
#[derive(Debug, Clone)]
pub struct Cases {
    count: u64,
    seed: u64,
}

impl Cases {
    /// Default root seed of every randomized suite.
    pub const DEFAULT_SEED: u64 = 0x1D10_CA5E;

    /// A runner for `count` cases with the default seed, unless the
    /// `IDIO_CHECK_SEED` environment variable overrides it (decimal or
    /// `0x`-prefixed hex).
    pub fn new(count: u64) -> Self {
        let seed = std::env::var("IDIO_CHECK_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                match s.strip_prefix("0x") {
                    Some(h) => u64::from_str_radix(h, 16).ok(),
                    None => s.parse().ok(),
                }
            })
            .unwrap_or(Self::DEFAULT_SEED);
        Cases { count, seed }
    }

    /// A runner with an explicit root seed (replay a failing case).
    pub fn with_seed(count: u64, seed: u64) -> Self {
        Cases { count, seed }
    }

    /// Runs the property for every case. Each case gets a generator seeded
    /// from `(root, case index)`; a panic in the closure is annotated with
    /// the case seed before being propagated.
    pub fn run(&self, mut property: impl FnMut(&mut Gen)) {
        for case in 0..self.count {
            let case_seed = self.seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut g = Gen {
                rng: SimRng::seed_from(case_seed),
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                property(&mut g);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "check: property failed on case {case}/{} \
                     (replay with Cases::with_seed(1, {case_seed:#x}) \
                     or IDIO_CHECK_SEED={case_seed:#x})",
                    self.count
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Per-case generator handle passed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Uniform `u64` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        self.rng.range(range.start, range.end)
    }

    /// Uniform `usize` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.u64(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// Uniform `u16` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u16(&mut self, range: Range<u16>) -> u16 {
        self.u64(u64::from(range.start)..u64::from(range.end)) as u16
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.coin()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.unit_f64()
    }

    /// A vector with a length drawn from `len` whose elements are produced
    /// by `make`.
    ///
    /// # Panics
    ///
    /// Panics if the length range is empty.
    pub fn vec<T>(&mut self, len: Range<usize>, mut make: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| make(self)).collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            Cases::with_seed(5, 42).run(|g| seen.push(g.u64(0..1000)));
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_cases_differ() {
        let mut seen = Vec::new();
        Cases::with_seed(8, 42).run(|g| seen.push(g.u64(0..u64::MAX)));
        seen.dedup();
        assert_eq!(seen.len(), 8, "independent case seeds");
    }

    #[test]
    fn vec_respects_length_bounds() {
        Cases::with_seed(32, 7).run(|g| {
            let v = g.vec(1..10, |g| g.bool());
            assert!((1..10).contains(&v.len()));
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        Cases::with_seed(4, 1).run(|_| panic!("boom"));
    }
}
