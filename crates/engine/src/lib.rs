//! # idio-engine
//!
//! Discrete-event simulation core for the IDIO reproduction: picosecond
//! simulated time, a deterministic event queue, seeded randomness, and the
//! statistics primitives (counters, rate-sampled time series, latency
//! percentiles) from which the paper's evaluation figures are rebuilt.
//!
//! This crate is deliberately free of any networking or cache semantics —
//! it is the substrate every other crate in the workspace builds on.
//!
//! # Examples
//!
//! A minimal simulation loop:
//!
//! ```
//! use idio_engine::queue::EventQueue;
//! use idio_engine::stats::Counter;
//! use idio_engine::time::{Duration, SimTime};
//!
//! #[derive(Debug)]
//! enum Event {
//!     Tick,
//! }
//!
//! let mut q = EventQueue::new();
//! let mut ticks = Counter::new();
//! q.schedule_at(SimTime::ZERO, Event::Tick);
//! while let Some((now, ev)) = q.pop() {
//!     match ev {
//!         Event::Tick => {
//!             ticks.inc();
//!             if now < SimTime::from_us(1) {
//!                 q.schedule_after(Duration::from_ns(100), Event::Tick);
//!             }
//!         }
//!     }
//! }
//! assert_eq!(ticks.get(), 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{Counter, LatencyRecorder, RateSampler, Sample, TimeSeries};
pub use telemetry::{MetricsRegistry, MetricsSnapshot, TraceFilter, TraceRecord, Tracer};
pub use time::{wire_time, Duration, Freq, SimTime};
