//! A deterministic discrete-event queue.
//!
//! Events of any payload type `E` are scheduled at absolute [`SimTime`]s and
//! popped in time order. Ties are broken by insertion order (FIFO), which
//! makes simulations deterministic regardless of payload contents.
//!
//! # Structure
//!
//! The queue is a hierarchical bucketed (calendar-queue-style) scheduler
//! tuned for the near-monotonic insert pattern of packet simulations,
//! where almost every event lands within a few hundred nanoseconds of
//! `now()`:
//!
//! * an **active heap** holds every event in the current time bucket (or
//!   earlier, for clamped inserts) and is the only structure `pop` and
//!   `peek` ever look at;
//! * a **bucket ring** of [`NUM_BUCKETS`] fixed-width future buckets
//!   ([`BUCKET_WIDTH_PS`] ps each) gives O(1) insert for everything within
//!   the ~134 µs horizon — the common case for DMA lines, wakeups and
//!   descriptor writebacks;
//! * a **far heap** absorbs the rare event beyond the horizon (control
//!   ticks, long timeouts) and is drained into the ring as time advances.
//!
//! Every event is keyed by `(at, seq)` and each structure preserves that
//! total order, so the pop sequence is byte-for-byte identical to the
//! previous single-`BinaryHeap` implementation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// log2 of the bucket width in picoseconds: 2^17 ps ≈ 131 ns, about one
/// full-size packet time at 100 GbE — adjacent arrivals usually share a
/// bucket or hit neighbouring ones.
const BUCKET_SHIFT: u32 = 17;
/// Bucket width in picoseconds.
pub const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_SHIFT;
/// Number of future buckets in the ring; together with the width this
/// puts the horizon at ~134 µs.
pub const NUM_BUCKETS: usize = 1024;

#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.as_ps() >> BUCKET_SHIFT
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current simulated time: [`EventQueue::pop`] advances
/// `now()` to the timestamp of the event it returns. Scheduling an event in
/// the past is a model bug, but one that must behave identically in debug
/// and release builds: the timestamp is always clamped to `now()` and the
/// anomaly is counted ([`EventQueue::schedule_past_clamped`]) so callers can
/// surface it as telemetry (`engine.schedule_past_clamped`) instead of it
/// being silently absorbed.
///
/// # Examples
///
/// ```
/// use idio_engine::queue::EventQueue;
/// use idio_engine::time::{Duration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(Duration::from_ns(10), "b");
/// q.schedule_after(Duration::from_ns(5), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Events in the active bucket (or earlier). Invariant: non-empty
    /// whenever the queue is non-empty, so `pop`/`peek` never search.
    active: BinaryHeap<Scheduled<E>>,
    /// Future buckets, indexed by `bucket % NUM_BUCKETS`. Slot `b` is
    /// live for absolute buckets in `(active_bucket, active_bucket +
    /// NUM_BUCKETS)`; the window's residues are all distinct and never
    /// collide with the active bucket's own residue, so a slot never
    /// mixes two buckets.
    ring: Box<[Vec<Scheduled<E>>]>,
    /// Total events currently stored in `ring`.
    ring_len: usize,
    /// Events beyond the ring horizon, ordered; drained forward as the
    /// active bucket advances.
    far: BinaryHeap<Scheduled<E>>,
    /// Absolute index of the bucket the active heap covers.
    active_bucket: u64,
    len: usize,
    seq: u64,
    now: SimTime,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            active: BinaryHeap::new(),
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            far: BinaryHeap::new(),
            active_bucket: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            clamped: 0,
        }
    }

    /// The current simulated time — the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Routes one keyed event to the structure owning its bucket.
    #[inline]
    fn place(&mut self, s: Scheduled<E>) {
        let b = bucket_of(s.at);
        if b <= self.active_bucket {
            self.active.push(s);
        } else if b - self.active_bucket < NUM_BUCKETS as u64 {
            self.ring[(b % NUM_BUCKETS as u64) as usize].push(s);
            self.ring_len += 1;
        } else {
            self.far.push(s);
        }
    }

    /// Moves far-heap events that the current window can hold into the
    /// ring (or active heap). Called whenever `active_bucket` advances so
    /// the far heap never shadows a live ring slot.
    fn drain_far(&mut self) {
        while let Some(s) = self.far.peek() {
            if bucket_of(s.at) >= self.active_bucket + NUM_BUCKETS as u64 {
                break;
            }
            let s = self.far.pop().expect("peeked");
            self.place(s);
        }
    }

    /// Restores the invariant that the active heap is non-empty whenever
    /// the queue is non-empty, advancing the active bucket through the
    /// ring (or jumping straight to the far heap's first bucket).
    fn settle(&mut self) {
        while self.active.is_empty() {
            if self.ring_len == 0 {
                let Some(first_far) = self.far.peek() else {
                    return; // queue fully empty
                };
                // Nothing inside the horizon: jump, don't crawl.
                self.active_bucket = bucket_of(first_far.at);
            } else {
                self.active_bucket += 1;
            }
            self.drain_far();
            let slot = &mut self.ring[(self.active_bucket % NUM_BUCKETS as u64) as usize];
            if !slot.is_empty() {
                self.ring_len -= slot.len();
                self.active.extend(slot.drain(..));
            }
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// An `at` earlier than `now()` is clamped to `now()` — identically in
    /// debug and release builds — and counted; see
    /// [`EventQueue::schedule_past_clamped`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.place(Scheduled { at, seq, event });
        self.len += 1;
        self.settle();
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at the current time (runs after already-queued
    /// events with the same timestamp).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Re-schedules the continuation of an event that has already been
    /// popped, **reusing its original tie-break sequence number** instead
    /// of allocating a new one.
    ///
    /// This exists for handlers that spread one logical event over a time
    /// span (batched DMA application) and must yield to interleaved
    /// events: the continuation keeps the parent's position in the FIFO
    /// tie-break, so splitting an event is unobservable in the pop order.
    /// `seq` must come from an event this queue popped (it is never
    /// re-issued to new events), and `at` must not lie in the past.
    pub fn schedule_resume(&mut self, at: SimTime, seq: u64, event: E) {
        debug_assert!(at >= self.now, "resume scheduled into the past");
        debug_assert!(seq < self.seq, "resume seq was never issued");
        let at = at.max(self.now);
        self.place(Scheduled { at, seq, event });
        self.len += 1;
        self.settle();
    }

    /// The sequence number the next `schedule_*` call will assign. Lets a
    /// caller embed an event's own tie-break key in its payload (see
    /// [`EventQueue::schedule_resume`]) by reading it just before
    /// scheduling.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Number of events whose requested timestamp lay in the past and was
    /// clamped to `now()`. A nonzero value indicates a model bug upstream
    /// (an event handler computing a completion time earlier than the
    /// event it is handling); the queue keeps the simulation causal either
    /// way, and this counter makes the anomaly observable.
    #[inline]
    pub fn schedule_past_clamped(&self) -> u64 {
        self.clamped
    }

    /// Timestamp of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.active.peek().map(|s| s.at)
    }

    /// `(timestamp, sequence)` key of the next event, if any. The key is
    /// the queue's total order: an event with a smaller key pops first.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.active.peek().map(|s| (s.at, s.seq))
    }

    /// Pops the earliest event, advancing `now()` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.active.pop()?;
        debug_assert!(s.at >= self.now, "event queue returned out-of-order event");
        self.now = s.at;
        self.len -= 1;
        self.settle();
        Some((s.at, s.event))
    }

    /// Drops all pending events without changing the current time.
    pub fn clear(&mut self) {
        self.active.clear();
        for slot in self.ring.iter_mut() {
            slot.clear();
        }
        self.ring_len = 0;
        self.far.clear();
        self.len = 0;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::Cases;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), 3);
        q.schedule_at(SimTime::from_ns(10), 1);
        q.schedule_at(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_after(Duration::from_ns(5), "second");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "second")));
    }

    #[test]
    fn scheduling_into_past_clamps_and_counts_in_every_profile() {
        // Regression: this used to panic under debug_assertions but
        // silently clamp in release — the same input now behaves
        // identically in both profiles.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "on-time");
        q.pop();
        assert_eq!(q.schedule_past_clamped(), 0);
        q.schedule_at(SimTime::from_ns(5), "late");
        assert_eq!(q.schedule_past_clamped(), 1);
        // The clamped event fires at now(), not at its stale timestamp,
        // so time never runs backwards.
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "late")));
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    fn clamped_events_keep_fifo_order_at_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), 0);
        q.pop();
        q.schedule_now(1);
        q.schedule_at(SimTime::from_ns(3), 2); // clamped to 10ns
        q.schedule_now(3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3], "clamp preserves insertion order");
        assert_eq!(q.schedule_past_clamped(), 1);
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule_after(Duration::from_ns(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    fn far_horizon_events_pop_in_order() {
        // Events far beyond the ring horizon (and straddling it) must
        // still come out sorted, including after the empty-ring jump.
        let mut q = EventQueue::new();
        let horizon_ps = BUCKET_WIDTH_PS * NUM_BUCKETS as u64;
        let times = [
            5 * horizon_ps,
            1,
            horizon_ps,
            horizon_ps + 1,
            3 * horizon_ps + 7,
            2 * horizon_ps,
        ];
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(*t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t.as_ps());
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn ring_wraps_across_many_horizons() {
        // March time forward over several full ring generations so every
        // slot is reused with a different absolute bucket.
        let mut q = EventQueue::new();
        let step = BUCKET_WIDTH_PS * 3 + 17;
        let mut expect = Vec::new();
        for i in 0..2_000u64 {
            let t = i * step;
            q.schedule_at(SimTime::from_ps(t), i);
            expect.push(t);
        }
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t.as_ps());
        }
        assert_eq!(popped, expect);
    }

    #[test]
    fn peek_key_exposes_pop_order_key() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "a"); // seq 0
        q.schedule_at(SimTime::from_ns(10), "b"); // seq 1
        assert_eq!(q.peek_key(), Some((SimTime::from_ns(10), 0)));
        q.pop();
        assert_eq!(q.peek_key(), Some((SimTime::from_ns(10), 1)));
        q.pop();
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn resume_keeps_parents_tie_break_position() {
        // A popped event's continuation scheduled with its original seq
        // must pop ahead of same-time events that were scheduled later.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "parent"); // seq 0
        let (t0, _) = q.pop().expect("parent");
        q.schedule_at(SimTime::from_ns(20), "rival"); // seq 1, same time
        q.schedule_resume(SimTime::from_ns(20), 0, "continuation");
        assert_eq!(t0, SimTime::from_ns(10));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), "continuation")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(20), "rival")));
    }

    /// Reference model: the exact (at, seq) sort the old single-heap
    /// implementation produced.
    #[test]
    fn matches_reference_model_on_random_workloads() {
        Cases::new(60).run(|g| {
            let mut q = EventQueue::new();
            let mut model: Vec<(u64, u64, u32)> = Vec::new(); // (at, seq, id)
            let mut seq = 0u64;
            let mut now = 0u64;
            let ops = g.usize(1..400);
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for id in 0..ops as u32 {
                if g.bool() && !model.is_empty() {
                    // Pop from both and compare.
                    let i = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (at, s, _))| (*at, *s))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    let (at, _, mid) = model.swap_remove(i);
                    now = at;
                    expected.push((at, mid));
                    let (t, e) = q.pop().expect("model has events");
                    popped.push((t.as_ps(), e));
                } else {
                    // Horizons from same-bucket to multiple rings out.
                    let spread = match g.u32(0..4) {
                        0 => g.u64(0..1_000),
                        1 => g.u64(0..BUCKET_WIDTH_PS * 4),
                        2 => g.u64(0..BUCKET_WIDTH_PS * NUM_BUCKETS as u64 * 2),
                        _ => g.u64(0..BUCKET_WIDTH_PS * NUM_BUCKETS as u64 * 5),
                    };
                    // Occasionally aim into the past to exercise clamping.
                    let at = if g.u32(0..8) == 0 {
                        now.saturating_sub(spread)
                    } else {
                        now + spread
                    };
                    q.schedule_at(SimTime::from_ps(at), id);
                    model.push((at.max(now), seq, id));
                    seq += 1;
                }
            }
            while let Some((t, e)) = q.pop() {
                popped.push((t.as_ps(), e));
            }
            while !model.is_empty() {
                let i = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (at, s, _))| (*at, *s))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (at, _, mid) = model.swap_remove(i);
                expected.push((at, mid));
            }
            assert_eq!(popped, expected);
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
        });
    }
}
