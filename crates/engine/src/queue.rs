//! A deterministic discrete-event queue.
//!
//! Events of any payload type `E` are scheduled at absolute [`SimTime`]s and
//! popped in time order. Ties are broken by insertion order (FIFO), which
//! makes simulations deterministic regardless of payload contents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current simulated time: [`EventQueue::pop`] advances
/// `now()` to the timestamp of the event it returns. Scheduling an event in
/// the past is a model bug, but one that must behave identically in debug
/// and release builds: the timestamp is always clamped to `now()` and the
/// anomaly is counted ([`EventQueue::schedule_past_clamped`]) so callers can
/// surface it as telemetry (`engine.schedule_past_clamped`) instead of it
/// being silently absorbed.
///
/// # Examples
///
/// ```
/// use idio_engine::queue::EventQueue;
/// use idio_engine::time::{Duration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(Duration::from_ns(10), "b");
/// q.schedule_after(Duration::from_ns(5), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    clamped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            clamped: 0,
        }
    }

    /// The current simulated time — the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// An `at` earlier than `now()` is clamped to `now()` — identically in
    /// debug and release builds — and counted; see
    /// [`EventQueue::schedule_past_clamped`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at the current time (runs after already-queued
    /// events with the same timestamp).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Number of events whose requested timestamp lay in the past and was
    /// clamped to `now()`. A nonzero value indicates a model bug upstream
    /// (an event handler computing a completion time earlier than the
    /// event it is handling); the queue keeps the simulation causal either
    /// way, and this counter makes the anomaly observable.
    #[inline]
    pub fn schedule_past_clamped(&self) -> u64 {
        self.clamped
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event, advancing `now()` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event heap returned out-of-order event");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Drops all pending events without changing the current time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), 3);
        q.schedule_at(SimTime::from_ns(10), 1);
        q.schedule_at(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_after(Duration::from_ns(5), "second");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "second")));
    }

    #[test]
    fn scheduling_into_past_clamps_and_counts_in_every_profile() {
        // Regression: this used to panic under debug_assertions but
        // silently clamp in release — the same input now behaves
        // identically in both profiles.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "on-time");
        q.pop();
        assert_eq!(q.schedule_past_clamped(), 0);
        q.schedule_at(SimTime::from_ns(5), "late");
        assert_eq!(q.schedule_past_clamped(), 1);
        // The clamped event fires at now(), not at its stale timestamp,
        // so time never runs backwards.
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "late")));
        assert_eq!(q.now(), SimTime::from_ns(10));
    }

    #[test]
    fn clamped_events_keep_fifo_order_at_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), 0);
        q.pop();
        q.schedule_now(1);
        q.schedule_at(SimTime::from_ns(3), 2); // clamped to 10ns
        q.schedule_now(3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3], "clamp preserves insertion order");
        assert_eq!(q.schedule_past_clamped(), 1);
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule_after(Duration::from_ns(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(10));
    }
}
