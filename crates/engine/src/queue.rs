//! A deterministic discrete-event queue.
//!
//! Events of any payload type `E` are scheduled at absolute [`SimTime`]s and
//! popped in time order. Ties are broken by insertion order (FIFO), which
//! makes simulations deterministic regardless of payload contents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current simulated time: [`EventQueue::pop`] advances
/// `now()` to the timestamp of the event it returns. Scheduling an event in
/// the past is a logic error and panics in debug builds (it is clamped to
/// `now()` in release builds).
///
/// # Examples
///
/// ```
/// use idio_engine::queue::EventQueue;
/// use idio_engine::time::{Duration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(Duration::from_ns(10), "b");
/// q.schedule_after(Duration::from_ns(5), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time — the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` is earlier than `now()`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at the current time (runs after already-queued
    /// events with the same timestamp).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event, advancing `now()` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event heap returned out-of-order event");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Drops all pending events without changing the current time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), 3);
        q.schedule_at(SimTime::from_ns(10), 1);
        q.schedule_at(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_after(Duration::from_ns(5), "second");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "second")));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        q.pop();
        q.schedule_at(SimTime::from_ns(5), ());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(10)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule_after(Duration::from_ns(1), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(10));
    }
}
