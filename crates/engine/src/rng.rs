//! Deterministic pseudo-random numbers for reproducible simulations.
//!
//! Every stochastic decision in the simulator (antagonist access pattern,
//! flow hashing salt, jittered interarrivals) draws from a [`SimRng`] seeded
//! from the experiment configuration, so identical configurations produce
//! bit-identical results.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) with
//! splitmix64 seed expansion — no external crates, and the streams are
//! stable across platforms and toolchains, which the golden-report
//! regression harness relies on.

/// Splitmix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for [`derive_seed`]'s avalanche mixing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable 64-bit FNV-1a hash of a string.
///
/// Used to derive per-cell seeds from sweep-cell labels: the hash depends
/// only on the label bytes, never on pointer values, declaration order or
/// thread scheduling, so a sweep keyed by labels is reproducible.
///
/// # Examples
///
/// ```
/// use idio_engine::rng::stable_hash64;
///
/// assert_eq!(stable_hash64("fig9/100G/IDIO"), stable_hash64("fig9/100G/IDIO"));
/// assert_ne!(stable_hash64("a"), stable_hash64("b"));
/// ```
pub fn stable_hash64(s: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Derives a per-cell seed from a root seed and a stable cell label.
///
/// The derivation hashes the label (FNV-1a) and mixes it with the root
/// seed through splitmix64, so distinct labels get uncorrelated streams
/// while the same `(root, label)` pair always yields the same seed — the
/// foundation of the sweep orchestrator's scheduling-independent
/// determinism.
///
/// # Examples
///
/// ```
/// use idio_engine::rng::derive_seed;
///
/// assert_eq!(derive_seed(0xD10, "cell-a"), derive_seed(0xD10, "cell-a"));
/// assert_ne!(derive_seed(0xD10, "cell-a"), derive_seed(0xD10, "cell-b"));
/// assert_ne!(derive_seed(1, "cell-a"), derive_seed(2, "cell-a"));
/// ```
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut state = root ^ stable_hash64(label);
    // Two rounds of splitmix64 give full avalanche even for labels that
    // differ in a single trailing character.
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

/// A seeded pseudo-random number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use idio_engine::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Splitmix64 expansion, as recommended by the xoshiro authors; it
        // guarantees a non-zero state for every seed.
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; different `stream` values
    /// give uncorrelated streams from the same parent seed.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `[0, bound)`, bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Reject the (tiny) tail that would bias the modulo.
        let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range must be non-empty");
        lo + self.below(hi - lo)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform boolean.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl Default for SimRng {
    /// Seeds from the fixed default experiment seed (0xD10).
    fn default() -> Self {
        SimRng::seed_from(0xD10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut p1 = SimRng::seed_from(9);
        let mut p2 = SimRng::seed_from(9);
        let mut c1 = p1.fork(3);
        let mut c2 = p2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zero_seed_still_generates() {
        let mut r = SimRng::seed_from(0);
        // xoshiro would be stuck at all-zero state; splitmix expansion
        // guarantees it is not.
        assert_ne!(r.next_u64() | r.next_u64(), 0);
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned values: these must never change across releases, or every
        // golden report silently re-seeds.
        assert_eq!(stable_hash64(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(stable_hash64("a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn derive_seed_mixes_root_and_label() {
        assert_eq!(derive_seed(0xD10, "x"), derive_seed(0xD10, "x"));
        assert_ne!(derive_seed(0xD10, "x"), derive_seed(0xD11, "x"));
        assert_ne!(derive_seed(0xD10, "x"), derive_seed(0xD10, "y"));
        // Labels differing only in the last byte still avalanche.
        let a = derive_seed(0, "cell-1");
        let b = derive_seed(0, "cell-2");
        assert!((a ^ b).count_ones() > 10, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn range_covers_interval() {
        let mut r = SimRng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = r.range(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }
}
