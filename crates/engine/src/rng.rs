//! Deterministic pseudo-random numbers for reproducible simulations.
//!
//! Every stochastic decision in the simulator (antagonist access pattern,
//! flow hashing salt, jittered interarrivals) draws from a [`SimRng`] seeded
//! from the experiment configuration, so identical configurations produce
//! bit-identical results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use idio_engine::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; different `stream` values
    /// give uncorrelated streams from the same parent seed.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

impl Default for SimRng {
    /// Seeds from the fixed default experiment seed (0xD10).
    fn default() -> Self {
        SimRng::seed_from(0xD10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut p1 = SimRng::seed_from(9);
        let mut p2 = SimRng::seed_from(9);
        let mut c1 = p1.fork(3);
        let mut c2 = p2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
