//! Statistics primitives: counters, rate-sampled time series, and
//! percentile histograms.
//!
//! The evaluation figures of the paper are all built from three kinds of
//! measurement:
//!
//! * monotonically increasing **event counters** (MLC writebacks, LLC
//!   writebacks, DRAM reads/writes, ...) — [`Counter`];
//! * counter **rates sampled on a fixed interval** (the 10 µs sampling used
//!   for Figs. 5, 9, 11, 13) — [`RateSampler`] producing a [`TimeSeries`];
//! * **latency distributions** (Fig. 12's p50/p99) — [`LatencyRecorder`].

use crate::time::{Duration, SimTime};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use idio_engine::stats::Counter;
///
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Difference since an earlier snapshot of the same counter.
    ///
    /// Counters never decrease, so a "later" value below `earlier` is a
    /// caller bug; the difference saturates to zero (identically in debug
    /// and release — this used to debug-panic but wrap in release).
    #[inline]
    pub fn delta_since(self, earlier: Counter) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// One sample of a time series: the interval end time and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// End of the sampling interval.
    pub at: SimTime,
    /// Sampled value (meaning depends on the series, e.g. events/s).
    pub value: f64,
}

/// A sequence of timestamped samples, e.g. a writeback-rate timeline.
///
/// # Examples
///
/// ```
/// use idio_engine::stats::TimeSeries;
/// use idio_engine::time::SimTime;
///
/// let mut ts = TimeSeries::new("mlc_wb");
/// ts.push(SimTime::from_us(10), 2.0);
/// ts.push(SimTime::from_us(20), 4.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.max_value(), 4.0);
/// assert_eq!(ts.mean(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name (used as a column header in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the last sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|s| s.at <= at),
            "time series sample out of order"
        );
        self.samples.push(Sample { at, value });
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest sample value, or 0.0 when empty.
    pub fn max_value(&self) -> f64 {
        self.samples.iter().map(|s| s.value).fold(0.0, f64::max)
    }

    /// Mean of the sample values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64
    }

    /// Sum of sample values.
    pub fn sum(&self) -> f64 {
        self.samples.iter().map(|s| s.value).sum()
    }

    /// Restricts the series to samples with `start <= at < end`.
    pub fn window(&self, start: SimTime, end: SimTime) -> TimeSeries {
        TimeSeries {
            name: self.name.clone(),
            samples: self
                .samples
                .iter()
                .filter(|s| s.at >= start && s.at < end)
                .copied()
                .collect(),
        }
    }
}

/// Turns counter deltas into a rate [`TimeSeries`].
///
/// Call [`RateSampler::sample`] on every sampling tick with the current
/// counter value; the sampler records `(delta / interval)` in events per
/// second (or, via [`RateSampler::sample_scaled`], any scaled unit such as
/// MTPS).
#[derive(Debug, Clone)]
pub struct RateSampler {
    series: TimeSeries,
    last_value: u64,
    interval: Duration,
    backwards: u64,
}

impl RateSampler {
    /// Creates a sampler with a fixed interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(name: impl Into<String>, interval: Duration) -> Self {
        assert!(
            interval > Duration::ZERO,
            "sampling interval must be positive"
        );
        RateSampler {
            series: TimeSeries::new(name),
            last_value: 0,
            interval,
            backwards: 0,
        }
    }

    /// Records the rate over the last interval, in events per second.
    pub fn sample(&mut self, at: SimTime, counter_value: u64) {
        self.sample_scaled(at, counter_value, 1.0);
    }

    /// Records `rate_per_sec * scale` — e.g. `scale = 1e-6` for MTPS
    /// (million transactions per second).
    ///
    /// Counters are expected to be monotonic. A `counter_value` below the
    /// previous one (a counter that was reset without
    /// [`RateSampler::reset`]) records a 0-rate sample, re-baselines on
    /// the new value, and is counted in
    /// [`RateSampler::backwards_samples`] — identically in debug and
    /// release builds — so the anomaly is observable as telemetry
    /// (`stats.counter_backwards`) rather than a debug-only panic.
    pub fn sample_scaled(&mut self, at: SimTime, counter_value: u64, scale: f64) {
        if counter_value < self.last_value {
            self.backwards += 1;
        }
        let delta = counter_value.saturating_sub(self.last_value);
        self.last_value = counter_value;
        let rate = delta as f64 / self.interval.as_secs_f64();
        self.series.push(at, rate * scale);
    }

    /// Re-baselines the sampler on `counter_value` without emitting a
    /// sample. Use this when the underlying counter is legitimately reset
    /// (e.g. a sampler reused across runs after `reset_stats`), so the
    /// first sample of the new run measures a real delta instead of
    /// tripping the backwards-counter detection.
    pub fn reset(&mut self, counter_value: u64) {
        self.last_value = counter_value;
    }

    /// Number of samples whose counter value went backwards (each
    /// recorded as a 0-rate sample).
    pub fn backwards_samples(&self) -> u64 {
        self.backwards
    }

    /// The accumulated series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the sampler, returning the series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

/// Records individual latency observations and reports percentiles.
///
/// Observations are stored exactly (the simulations here record at most a
/// few hundred thousand packets), so percentiles are exact.
///
/// # Examples
///
/// ```
/// use idio_engine::stats::LatencyRecorder;
/// use idio_engine::time::Duration;
///
/// let mut r = LatencyRecorder::new();
/// for us in 1..=100 {
///     r.record(Duration::from_us(us));
/// }
/// assert_eq!(r.percentile(50.0), Some(Duration::from_us(50)));
/// assert_eq!(r.percentile(99.0), Some(Duration::from_us(99)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<Duration>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_ps() as u128).sum();
        Some(Duration::from_ps(
            (total / self.samples.len() as u128) as u64,
        ))
    }

    /// Maximum latency, or `None` when empty.
    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().copied().max()
    }

    /// Exact percentile (nearest-rank method), or `None` when empty.
    ///
    /// `p == 0` reports the minimum and `p == 100` the maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<Duration> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        // Nearest rank = ceil(p/100 · n), clamped into [1, n]. The clamp is
        // explicit: p == 0 means rank 1 (the minimum), and float rounding at
        // p == 100 must never index past the end. The previous code leaned on
        // `saturating_sub(1)` to absorb the rank-0 case, which hid the
        // boundary instead of defining it.
        let n = self.samples.len();
        let rank = (((p / 100.0) * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta() {
        let mut c = Counter::new();
        c.add(10);
        let snap = c;
        c.add(7);
        assert_eq!(c.delta_since(snap), 7);
    }

    #[test]
    fn rate_sampler_computes_events_per_second() {
        let mut s = RateSampler::new("x", Duration::from_us(10));
        let mut c = Counter::new();
        c.add(100);
        s.sample(SimTime::from_us(10), c.get());
        // 100 events / 10 us = 1e7 events/s.
        assert!((s.series().samples()[0].value - 1e7).abs() < 1e-3);
        c.add(50);
        s.sample_scaled(SimTime::from_us(20), c.get(), 1e-6);
        // 50 events / 10 us = 5e6/s = 5 MTPS.
        assert!((s.series().samples()[1].value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_reused_across_runs_via_reset() {
        // Regression: a sampler re-pointed at a freshly reset counter used
        // to debug-panic ("counter went backwards") while silently
        // emitting a 0-rate sample in release. reset() re-baselines
        // explicitly and keeps both profiles identical.
        let mut s = RateSampler::new("x", Duration::from_us(10));
        s.sample(SimTime::from_us(10), 500);
        assert_eq!(s.backwards_samples(), 0);

        // Run 2: counters restarted from zero; reset instead of sampling.
        s.reset(0);
        s.sample(SimTime::from_us(20), 100);
        assert_eq!(s.backwards_samples(), 0, "reset path is not an anomaly");
        let v = s.series().samples()[1].value;
        assert!((v - 1e7).abs() < 1e-3, "fresh delta measured: {v}");
    }

    #[test]
    fn backwards_counter_is_counted_not_fatal() {
        let mut s = RateSampler::new("x", Duration::from_us(10));
        s.sample(SimTime::from_us(10), 500);
        // No reset: the backwards value is absorbed as a 0-rate sample
        // and counted.
        s.sample(SimTime::from_us(20), 100);
        assert_eq!(s.backwards_samples(), 1);
        assert_eq!(s.series().samples()[1].value, 0.0);
        // The sampler re-baselines, so the next sample is a real rate.
        s.sample(SimTime::from_us(30), 200);
        assert_eq!(s.backwards_samples(), 1);
        assert!((s.series().samples()[2].value - 1e7).abs() < 1e-3);
    }

    #[test]
    fn time_series_window() {
        let mut ts = TimeSeries::new("w");
        for i in 0..10 {
            ts.push(SimTime::from_us(i * 10), i as f64);
        }
        let w = ts.window(SimTime::from_us(20), SimTime::from_us(50));
        assert_eq!(w.len(), 3);
        assert_eq!(w.samples()[0].value, 2.0);
        assert_eq!(w.samples()[2].value, 4.0);
    }

    #[test]
    fn latency_percentiles_exact() {
        let mut r = LatencyRecorder::new();
        // Insert in reverse to exercise sorting.
        for us in (1..=1000).rev() {
            r.record(Duration::from_us(us));
        }
        assert_eq!(r.percentile(50.0), Some(Duration::from_us(500)));
        assert_eq!(r.percentile(99.0), Some(Duration::from_us(990)));
        assert_eq!(r.percentile(100.0), Some(Duration::from_us(1000)));
        assert_eq!(r.max(), Some(Duration::from_us(1000)));
        assert_eq!(r.mean(), Some(Duration::from_ps(500_500_000)));
    }

    #[test]
    fn latency_single_sample() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_ns(42));
        assert_eq!(r.percentile(50.0), Some(Duration::from_ns(42)));
        assert_eq!(r.percentile(99.0), Some(Duration::from_ns(42)));
    }

    #[test]
    fn empty_recorder_returns_none() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.percentile(99.0), None);
        assert_eq!(r.mean(), None);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::ZERO);
        let _ = r.percentile(-1.0);
    }

    #[test]
    fn percentile_zero_is_minimum() {
        let mut r = LatencyRecorder::new();
        for us in [40, 10, 30] {
            r.record(Duration::from_us(us));
        }
        assert_eq!(r.percentile(0.0), Some(Duration::from_us(10)));
        assert_eq!(r.percentile(100.0), Some(Duration::from_us(40)));
    }

    /// Nearest-rank percentile against a naive reference: count how many
    /// sorted samples the rank covers by scanning, never by arithmetic.
    /// Exercises the extreme percentiles (0, ~1, 100) whose ranks the old
    /// `saturating_sub` masked, across sample sizes 1..64.
    #[test]
    fn percentile_matches_naive_reference() {
        fn naive(sorted: &[Duration], p: f64) -> Duration {
            // Reference nearest-rank: the smallest sample with at least
            // p percent of the distribution at or below it.
            let n = sorted.len();
            for (i, &v) in sorted.iter().enumerate() {
                if (i + 1) as f64 * 100.0 / n as f64 >= p {
                    return v;
                }
            }
            sorted[n - 1]
        }

        crate::check::Cases::new(200).run(|g| {
            let n = g.usize(1..64);
            let mut r = LatencyRecorder::new();
            let mut samples: Vec<Duration> = (0..n)
                .map(|_| Duration::from_ps(g.u64(0..1_000_000)))
                .collect();
            for &s in &samples {
                r.record(s);
            }
            samples.sort_unstable();
            for p in [0.0, 0.5, 0.99, 1.0, 50.0, 99.0, 100.0] {
                assert_eq!(
                    r.percentile(p),
                    Some(naive(&samples, p)),
                    "p={p} n={n} samples={samples:?}"
                );
            }
        });
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let _ = RateSampler::new("x", Duration::ZERO);
    }
}
