//! Runtime telemetry: a hierarchical metrics registry and a bounded
//! event tracer.
//!
//! I/O-aware cache management lives or dies by runtime observability —
//! the quantities Alg. 1 computes (`mlcWB`, `mlcWBAvg`), DMA-leak and
//! bloating counters, and engine-level anomalies (schedule-in-past
//! clamps, backwards counters, prefetch-queue drops) all need to be
//! *visible* in release builds, not hidden behind `debug_assert!`. This
//! module provides the two primitives the rest of the workspace builds
//! on:
//!
//! * [`MetricsRegistry`] — counters, gauges and histograms registered
//!   under stable dotted names (`nic.dma.lines`, `core0.mlc.wb`,
//!   `prefetch.drops`), with snapshot/delta support and a compact,
//!   deterministic JSON export;
//! * [`Tracer`] — a bounded ring buffer of typed [`TraceRecord`]s
//!   (steering decisions, FSM transitions, queue anomalies, ...) stamped
//!   with [`SimTime`] and filtered per component by a [`TraceFilter`],
//!   exportable as NDJSON.
//!
//! # Determinism contract
//!
//! Everything in this module is a pure function of the operations applied
//! to it: maps are ordered (`BTreeMap`), no wall-clock or thread identity
//! leaks in, and the JSON/NDJSON renderings are byte-stable. Simulations
//! that populate a registry or tracer deterministically therefore export
//! byte-identical telemetry regardless of host, thread count, or repeat
//! count.
//!
//! # Examples
//!
//! ```
//! use idio_engine::telemetry::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.counter_add("nic.dma.lines", 4);
//! m.counter_inc("prefetch.drops");
//! let before = m.snapshot();
//! m.counter_add("nic.dma.lines", 6);
//! let delta = m.snapshot().delta_since(&before);
//! assert_eq!(delta.counter("nic.dma.lines"), 6);
//! assert_eq!(delta.counter("prefetch.drops"), 0);
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::time::SimTime;

/// Default capacity of a [`Tracer`] ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts values whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2..=3, ...), which is exact
/// enough for latency/occupancy distributions while staying O(1) per
/// record and fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[(u64::BITS - value.leading_zeros()) as usize] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self`: bucket-wise sum with combined
    /// count/sum/min/max. Used to aggregate per-core histograms into a
    /// per-tenant one; merging is associative and commutative, so the
    /// result does not depend on merge order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Upper-bound estimate of the `p`-th percentile (`0.0..=100.0`)
    /// by nearest rank over the log2 buckets: the smallest bucket upper
    /// bound below which at least `ceil(p/100 * count)` observations
    /// fall, clamped into `[min, max]`. The true percentile lies within
    /// a factor of two below the estimate (the bucket width). Returns
    /// `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                // Upper bound of bucket i (values of bit length i).
                let hi = match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty `(bit_length, count)` buckets in ascending order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self.buckets().map(|(i, n)| format!("[{i},{n}]")).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            buckets.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// A hierarchical registry of named counters, gauges and histograms.
///
/// Names are stable dotted paths (`engine.schedule_past_clamped`,
/// `core0.mlc.wb`). Metrics are created lazily on first touch; iteration
/// and export order is the lexicographic name order, so the JSON
/// rendering is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = c.saturating_add(n);
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Adds one to counter `name`.
    pub fn counter_inc(&mut self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Overwrites counter `name` with an absolute value (for folding in
    /// externally maintained monotonic counters at export time).
    pub fn counter_set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name`, creating it if absent.
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges a fully built histogram into histogram `name`, creating it
    /// if absent (for folding externally maintained per-core histograms
    /// in at export time, mirroring [`MetricsRegistry::counter_set`]).
    pub fn histogram_merge(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Histogram `name`, if ever recorded into.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// An immutable snapshot of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Compact JSON rendering of the current state (see
    /// [`MetricsSnapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Counter delta since an `earlier` snapshot of the same registry:
    /// per-counter saturating difference, with counters absent from
    /// `earlier` treated as starting at zero. Gauges and histograms keep
    /// their current (later) values.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Compact, single-line, deterministic JSON:
    ///
    /// ```json
    /// {"counters":{"a.b":1},"gauges":{"c":0.5},"histograms":{"h":{...}}}
    /// ```
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("\"{}\":{}", json_escape(k), h.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// One trace record: a simulated-time-stamped event of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Component that emitted the record (stable short name, e.g.
    /// `"steer"`, `"fsm"`, `"prefetch"`, `"maint"`, `"event"`).
    pub component: &'static str,
    /// Event name within the component (e.g. `"placement"`).
    pub event: &'static str,
    /// Free-form detail, conventionally `key=value` pairs separated by
    /// single spaces.
    pub detail: String,
}

impl TraceRecord {
    /// One NDJSON line (no trailing newline):
    /// `{"t_ps":1234,"c":"steer","e":"placement","d":"..."}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ps\":{},\"c\":\"{}\",\"e\":\"{}\",\"d\":\"{}\"}}",
            self.at.as_ps(),
            json_escape(self.component),
            json_escape(self.event),
            json_escape(&self.detail)
        )
    }
}

/// Renders records as NDJSON, one record per line (with trailing newline
/// after each line; empty input renders as the empty string).
pub fn records_to_ndjson(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Selects which components a [`Tracer`] records.
///
/// Parsed from strings like `"steer,fsm"`, `"all"` (or `"*"`), and
/// `"off"` (or the empty string).
///
/// # Examples
///
/// ```
/// use idio_engine::telemetry::TraceFilter;
///
/// let f: TraceFilter = "steer,prefetch".parse().unwrap();
/// assert!(f.enables("steer"));
/// assert!(!f.enables("fsm"));
/// assert!(TraceFilter::all().enables("anything"));
/// assert!(!TraceFilter::off().enables("steer"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceFilter {
    all: bool,
    components: BTreeSet<String>,
}

impl TraceFilter {
    /// Records nothing (the default).
    pub fn off() -> Self {
        TraceFilter::default()
    }

    /// Records every component.
    pub fn all() -> Self {
        TraceFilter {
            all: true,
            components: BTreeSet::new(),
        }
    }

    /// Records exactly the given components.
    pub fn components<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        TraceFilter {
            all: false,
            components: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Whether nothing is recorded.
    pub fn is_off(&self) -> bool {
        !self.all && self.components.is_empty()
    }

    /// Whether records of `component` are kept.
    pub fn enables(&self, component: &str) -> bool {
        self.all || self.components.contains(component)
    }
}

impl std::str::FromStr for TraceFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "" | "off" | "none" => Ok(TraceFilter::off()),
            "*" | "all" => Ok(TraceFilter::all()),
            list => {
                let mut components = BTreeSet::new();
                for part in list.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        return Err(format!("empty component in trace filter '{s}'"));
                    }
                    components.insert(part.to_string());
                }
                Ok(TraceFilter {
                    all: false,
                    components,
                })
            }
        }
    }
}

impl fmt::Display for TraceFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all {
            write!(f, "all")
        } else if self.components.is_empty() {
            write!(f, "off")
        } else {
            let names: Vec<&str> = self.components.iter().map(String::as_str).collect();
            write!(f, "{}", names.join(","))
        }
    }
}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// When the buffer is full the *oldest* record is evicted (and counted),
/// so the tracer always holds the most recent window of activity. Detail
/// strings are built lazily: [`Tracer::record`] takes a closure that is
/// only invoked when the component passes the filter, so a disabled
/// tracer costs one branch per call site.
///
/// # Examples
///
/// ```
/// use idio_engine::telemetry::{TraceFilter, Tracer};
/// use idio_engine::time::SimTime;
///
/// let mut t = Tracer::new(TraceFilter::all(), 2);
/// t.record(SimTime::from_ns(1), "steer", "placement", || "p=llc".into());
/// t.record(SimTime::from_ns(2), "steer", "placement", || "p=mlc".into());
/// t.record(SimTime::from_ns(3), "steer", "placement", || "p=dram".into());
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.evicted(), 1);
/// assert_eq!(t.records().next().unwrap().detail, "p=mlc");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    filter: TraceFilter,
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    evicted: u64,
    total: u64,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer keeping the most recent `capacity` records of the
    /// components enabled by `filter`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero while the filter enables anything.
    pub fn new(filter: TraceFilter, capacity: usize) -> Self {
        assert!(
            capacity > 0 || filter.is_off(),
            "an enabled tracer needs capacity"
        );
        Tracer {
            filter,
            capacity,
            buf: VecDeque::new(),
            evicted: 0,
            total: 0,
        }
    }

    /// The active filter.
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Whether `component` would currently be recorded (use to gate
    /// expensive context gathering at call sites).
    #[inline]
    pub fn enabled(&self, component: &str) -> bool {
        self.filter.enables(component)
    }

    /// Records one event if `component` passes the filter. `detail` is
    /// only evaluated when the record is kept.
    pub fn record(
        &mut self,
        at: SimTime,
        component: &'static str,
        event: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.filter.enables(component) {
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(TraceRecord {
            at,
            component,
            event,
            detail: detail(),
        });
        self.total += 1;
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total records accepted (held + evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Drains the buffer into a `Vec`, oldest first, leaving the tracer
    /// empty (eviction/total counters are kept).
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }

    /// NDJSON rendering of the held records.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.b", 5);
        m.counter_inc("a.b");
        m.counter_inc("x");
        assert_eq!(m.counter("a.b"), 6);
        let snap = m.snapshot();
        m.counter_add("a.b", 4);
        m.counter_inc("fresh");
        let delta = m.snapshot().delta_since(&snap);
        assert_eq!(delta.counter("a.b"), 4);
        assert_eq!(delta.counter("x"), 0);
        assert_eq!(delta.counter("fresh"), 1, "new counters delta from zero");
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut m = MetricsRegistry::new();
        m.counter_set("c", u64::MAX - 1);
        m.counter_add("c", 5);
        assert_eq!(m.counter("c"), u64::MAX);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.gauge_set("g", 0.25);
        m.gauge_set("g", 0.5);
        assert_eq!(m.gauge("g"), Some(0.5));
    }

    #[test]
    fn histogram_tracks_distribution() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<(u32, u64)> = h.buckets().collect();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1000 → bucket 10.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn histogram_merge_matches_joint_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut joint = Histogram::new();
        for v in [3, 9, 200] {
            a.record(v);
            joint.record(v);
        }
        for v in [0, 1, 7_000] {
            b.record(v);
            joint.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, joint);
        // Merging into / from an empty histogram is the identity.
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let mut a2 = a.clone();
        a2.merge(&Histogram::new());
        assert_eq!(a2, a);
    }

    #[test]
    fn percentile_is_clamped_bucket_upper_bound() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        for v in [10, 20, 40, 600] {
            h.record(v);
        }
        // Ranks 1..=4 land in buckets 4 (10), 5 (20), 6 (40), 10 (600).
        assert_eq!(h.percentile(0.0), Some(15)); // bucket 4 hi, clamped ≥ min
        assert_eq!(h.percentile(50.0), Some(31));
        assert_eq!(h.percentile(75.0), Some(63));
        assert_eq!(h.percentile(99.0), Some(600)); // bucket 10 hi clamped to max
        assert_eq!(h.percentile(100.0), Some(600));
        let mut zeros = Histogram::new();
        zeros.record(0);
        assert_eq!(zeros.percentile(99.0), Some(0));
    }

    #[test]
    fn registry_histogram_merge_folds_external_histograms() {
        let mut m = MetricsRegistry::new();
        let mut h = Histogram::new();
        h.record(5);
        h.record(9);
        m.histogram_merge("core0.lat", &h);
        m.histogram_merge("core0.lat", &h);
        assert_eq!(m.histogram("core0.lat").unwrap().count(), 4);
    }

    #[test]
    fn json_is_sorted_and_compact() {
        let mut m = MetricsRegistry::new();
        m.counter_inc("z.last");
        m.counter_inc("a.first");
        m.gauge_set("share", 0.125);
        m.histogram_record("lat", 7);
        let json = m.to_json();
        assert!(!json.contains('\n'), "single line: {json}");
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "counters sorted by name");
        assert!(json.contains("\"share\":0.125"));
        assert!(json.contains("\"lat\":{\"count\":1"));
    }

    #[test]
    fn filter_parses_and_round_trips() {
        for (s, is_off, all) in [
            ("", true, false),
            ("off", true, false),
            ("none", true, false),
            ("*", false, true),
            ("all", false, true),
        ] {
            let f: TraceFilter = s.parse().unwrap();
            assert_eq!(f.is_off(), is_off, "{s}");
            assert_eq!(
                f,
                if all {
                    TraceFilter::all()
                } else {
                    TraceFilter::off()
                }
            );
        }
        let f: TraceFilter = " steer , fsm ".parse().unwrap();
        assert!(f.enables("steer") && f.enables("fsm") && !f.enables("maint"));
        assert_eq!(f.to_string(), "fsm,steer");
        assert!("steer,,fsm".parse::<TraceFilter>().is_err());
    }

    #[test]
    fn tracer_ring_keeps_most_recent() {
        let mut t = Tracer::new(TraceFilter::all(), 3);
        for i in 0..5u64 {
            t.record(SimTime::from_ns(i), "c", "e", || format!("i={i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.total(), 5);
        let details: Vec<&str> = t.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(details, vec!["i=2", "i=3", "i=4"]);
    }

    #[test]
    fn disabled_component_skips_detail_closure() {
        let mut t = Tracer::new(TraceFilter::components(["steer"]), 4);
        t.record(SimTime::ZERO, "fsm", "x", || {
            panic!("detail built for filtered-out component")
        });
        assert!(t.is_empty());
        t.record(SimTime::ZERO, "steer", "x", || "ok".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ndjson_escapes_and_terminates_lines() {
        let mut t = Tracer::new(TraceFilter::all(), 4);
        t.record(SimTime::from_us(2), "c", "e", || "a\"b".into());
        let nd = t.to_ndjson();
        assert_eq!(
            nd,
            "{\"t_ps\":2000000,\"c\":\"c\",\"e\":\"e\",\"d\":\"a\\\"b\"}\n"
        );
        assert_eq!(records_to_ndjson(&t.take_records()), nd);
        assert!(t.is_empty());
    }

    #[test]
    fn disabled_tracer_is_free_of_capacity_demands() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, "c", "e", || "x".into());
        assert!(t.is_empty());
        assert_eq!(t.total(), 0);
    }
}
