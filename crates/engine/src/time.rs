//! Simulation time in picoseconds.
//!
//! All timing in the simulator is expressed as a [`SimTime`] — an absolute
//! number of picoseconds since the start of the simulation — or a
//! [`Duration`] — a span of picoseconds. Picosecond granularity lets us
//! represent 3 GHz core cycles (333 ps) exactly enough while a `u64` still
//! covers ~213 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// Converts a fractional picosecond count to `u64`, saturating: NaN and
/// negative inputs map to 0, values beyond `u64::MAX` to `u64::MAX`.
/// (Rust's `as` cast already saturates; this helper documents that the
/// clamping is intentional for time construction.)
#[inline]
fn ps_from_f64(ps: f64) -> u64 {
    if ps.is_nan() {
        0
    } else {
        ps as u64 // saturating float→int cast
    }
}

/// An absolute point in simulated time, in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use idio_engine::time::{Duration, SimTime};
///
/// let t = SimTime::ZERO + Duration::from_us(3);
/// assert_eq!(t.as_ps(), 3_000_000);
/// assert_eq!(t.as_us_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds, saturating at [`SimTime::MAX`]
    /// (this used to wrap silently in release builds for large inputs).
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns.saturating_mul(PS_PER_NS))
    }

    /// Creates a time from microseconds, saturating at [`SimTime::MAX`].
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us.saturating_mul(PS_PER_US))
    }

    /// Creates a time from milliseconds, saturating at [`SimTime::MAX`].
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms.saturating_mul(PS_PER_MS))
    }

    /// Raw picoseconds since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds, truncated.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Time in microseconds, truncated.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }

    /// Time in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_ps(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is later than `self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_ps)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A span of simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use idio_engine::time::Duration;
///
/// let d = Duration::from_ns(5) * 3;
/// assert_eq!(d.as_ps(), 15_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a span from nanoseconds, saturating at the maximum
    /// representable span (this used to wrap silently in release builds
    /// for large inputs).
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns.saturating_mul(PS_PER_NS))
    }

    /// Creates a span from microseconds, saturating.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us.saturating_mul(PS_PER_US))
    }

    /// Creates a span from milliseconds, saturating.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms.saturating_mul(PS_PER_MS))
    }

    /// Creates a span from fractional nanoseconds, rounding to
    /// picoseconds. NaN and negative inputs clamp to zero; values beyond
    /// the representable range saturate.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        Duration(ps_from_f64((ns * PS_PER_NS as f64).round()))
    }

    /// Creates a span from fractional microseconds, rounding to
    /// picoseconds. NaN and negative inputs clamp to zero; values beyond
    /// the representable range saturate.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Duration(ps_from_f64((us * PS_PER_US as f64).round()))
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Span in nanoseconds, truncated.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Span in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Span in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// `self * num / den`, computed in 128-bit to avoid overflow.
    #[inline]
    pub fn mul_div(self, num: u64, den: u64) -> Duration {
        debug_assert!(den != 0, "mul_div by zero");
        Duration(((self.0 as u128 * num as u128) / den as u128) as u64)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimTime(self.0).fmt(f)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

/// A clock frequency, used to convert between cycles and time.
///
/// # Examples
///
/// ```
/// use idio_engine::time::Freq;
///
/// let f = Freq::from_ghz(3.0);
/// assert_eq!(f.ps_per_cycle(), 333);
/// assert_eq!(f.cycles_to_duration(3).as_ps(), 999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    /// Picoseconds per cycle.
    ps_per_cycle: u64,
}

impl Freq {
    /// Creates a frequency from GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Freq {
            ps_per_cycle: (1_000.0 / ghz).round() as u64,
        }
    }

    /// Picoseconds per clock cycle.
    #[inline]
    pub const fn ps_per_cycle(self) -> u64 {
        self.ps_per_cycle
    }

    /// Converts a cycle count to a duration.
    #[inline]
    pub const fn cycles_to_duration(self, cycles: u64) -> Duration {
        Duration::from_ps(cycles * self.ps_per_cycle)
    }

    /// Converts a duration to whole cycles, truncated.
    #[inline]
    pub const fn duration_to_cycles(self, d: Duration) -> u64 {
        d.as_ps() / self.ps_per_cycle
    }
}

impl Default for Freq {
    /// 3 GHz, the Table I core frequency.
    fn default() -> Self {
        Freq::from_ghz(3.0)
    }
}

/// Computes the wire time of `bytes` at `gbps` gigabits per second.
///
/// # Examples
///
/// ```
/// use idio_engine::time::wire_time;
///
/// // 1514 bytes at 100 Gbps is ~121 ns.
/// let t = wire_time(1514, 100.0);
/// assert!((t.as_ns_f64() - 121.1).abs() < 0.1);
/// ```
/// # Panics
///
/// Panics if `gbps` is not a finite, strictly positive number (a NaN,
/// infinite, zero, or negative rate would otherwise turn into a garbage
/// `u64` timestamp).
pub fn wire_time(bytes: u64, gbps: f64) -> Duration {
    assert!(
        gbps.is_finite() && gbps > 0.0,
        "rate must be finite and positive, got {gbps}"
    );
    let bits = bytes as f64 * 8.0;
    Duration::from_ps(ps_from_f64((bits / gbps * 1_000.0).round()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions_roundtrip() {
        let t = SimTime::from_us(1234);
        assert_eq!(t.as_ps(), 1_234_000_000);
        assert_eq!(t.as_us(), 1234);
        assert_eq!(t.as_ns(), 1_234_000);
    }

    #[test]
    fn simtime_ordering_and_arith() {
        let a = SimTime::from_ns(10);
        let b = a + Duration::from_ns(5);
        assert!(b > a);
        assert_eq!(b - a, Duration::from_ns(5));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_ns(5));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_mul_div_avoids_overflow() {
        let d = Duration::from_ms(30);
        // Large numerator/denominator that would overflow a u64 product.
        let scaled = d.mul_div(1 << 40, 1 << 41);
        assert_eq!(scaled.as_ps(), d.as_ps() / 2);
        assert_eq!(d.mul_div(3, 1), d * 3);
    }

    #[test]
    fn freq_cycle_conversion() {
        let f = Freq::from_ghz(3.0);
        assert_eq!(f.ps_per_cycle(), 333);
        assert_eq!(f.cycles_to_duration(12).as_ps(), 3_996);
        assert_eq!(f.duration_to_cycles(Duration::from_ns(1)), 3);
    }

    #[test]
    fn freq_default_is_3ghz() {
        assert_eq!(Freq::default(), Freq::from_ghz(3.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn freq_rejects_zero() {
        let _ = Freq::from_ghz(0.0);
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        // Regression: these used to wrap in release builds (and only
        // overflow-panic in debug), so a huge --duration-ms could travel
        // back in time silently.
        assert_eq!(SimTime::from_ns(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_us(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_ms(u64::MAX), SimTime::MAX);
        assert_eq!(Duration::from_ns(u64::MAX).as_ps(), u64::MAX);
        assert_eq!(Duration::from_us(u64::MAX).as_ps(), u64::MAX);
        assert_eq!(Duration::from_ms(u64::MAX).as_ps(), u64::MAX);
        // Values just past the boundary saturate too, not only u64::MAX.
        assert_eq!(SimTime::from_ms(u64::MAX / PS_PER_MS + 1), SimTime::MAX);
        // In-range values are unchanged.
        assert_eq!(SimTime::from_ms(5).as_ps(), 5 * PS_PER_MS);
    }

    #[test]
    fn f64_constructors_clamp_nan_and_negative() {
        assert_eq!(Duration::from_ns_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_us_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_ns_f64(f64::INFINITY).as_ps(), u64::MAX);
        assert_eq!(Duration::from_us_f64(1.5).as_ps(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn wire_time_rejects_nan_rate() {
        let _ = wire_time(64, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn wire_time_rejects_infinite_rate() {
        let _ = wire_time(64, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn wire_time_rejects_zero_rate() {
        let _ = wire_time(64, 0.0);
    }

    #[test]
    fn wire_time_saturates_on_extreme_inputs() {
        // u64::MAX bytes at a tiny rate overflows f64→u64; saturate.
        assert_eq!(wire_time(u64::MAX, 1e-30).as_ps(), u64::MAX);
    }

    #[test]
    fn wire_time_100g() {
        // 64 bytes at 100 Gbps = 5.12 ns.
        assert_eq!(wire_time(64, 100.0).as_ps(), 5_120);
        // 1514 bytes at 10 Gbps = 1211.2 ns.
        assert_eq!(wire_time(1514, 10.0).as_ps(), 1_211_200);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", SimTime::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12.000ns");
        assert_eq!(format!("{}", SimTime::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_ms(12)), "12.000ms");
    }
}
