//! Property tests for the simulation engine: the event queue is a stable
//! time-ordered priority queue, and the statistics primitives compute
//! exact values.

use idio_engine::queue::EventQueue;
use idio_engine::stats::{LatencyRecorder, RateSampler};
use idio_engine::time::{Duration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_pops_sorted_and_stable(times in proptest::collection::vec(0..10_000u64, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt, "time order");
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO among ties");
                }
            }
            prop_assert_eq!(SimTime::from_ps(times[idx]), at, "payload matches schedule");
            last = Some((at, idx));
        }
        prop_assert_eq!(q.now(), SimTime::from_ps(*times.iter().max().unwrap()));
    }

    #[test]
    fn percentiles_match_sorted_reference(
        mut samples in proptest::collection::vec(0..1_000_000u64, 1..500),
        p in 1..=100u8,
    ) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_ps(s));
        }
        samples.sort_unstable();
        let rank = ((f64::from(p) / 100.0) * samples.len() as f64).ceil() as usize;
        let expected = samples[rank.saturating_sub(1)];
        prop_assert_eq!(
            rec.percentile(f64::from(p)),
            Some(Duration::from_ps(expected))
        );
    }

    #[test]
    fn rate_sampler_recovers_total(counts in proptest::collection::vec(0..1000u64, 1..100)) {
        let interval = Duration::from_us(10);
        let mut s = RateSampler::new("prop", interval);
        let mut acc = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            acc += c;
            s.sample(SimTime::from_us((i as u64 + 1) * 10), acc);
        }
        // Integrating the rate series recovers the total event count.
        let recovered: f64 = s
            .series()
            .samples()
            .iter()
            .map(|smp| smp.value * interval.as_secs_f64())
            .sum();
        prop_assert!((recovered - acc as f64).abs() < 1e-6 * acc.max(1) as f64);
    }

    #[test]
    fn wire_time_scales_linearly(bytes in 1..100_000u64, gbps in 1..400u32) {
        let one = idio_engine::time::wire_time(bytes, f64::from(gbps));
        let two = idio_engine::time::wire_time(bytes * 2, f64::from(gbps));
        let diff = two.as_ps() as i128 - 2 * one.as_ps() as i128;
        prop_assert!(diff.abs() <= 1, "rounding only: {diff}");
    }
}
