//! Randomized property tests for the simulation engine: the event queue is
//! a stable time-ordered priority queue, and the statistics primitives
//! compute exact values. Driven by the in-repo deterministic harness
//! (`idio_engine::check`) — the build environment has no crates.io access.

use std::collections::BTreeMap;

use idio_engine::check::Cases;
use idio_engine::queue::EventQueue;
use idio_engine::stats::{LatencyRecorder, RateSampler};
use idio_engine::telemetry::MetricsRegistry;
use idio_engine::time::{Duration, SimTime};

#[test]
fn queue_pops_sorted_and_stable() {
    Cases::new(256).run(|g| {
        let times = g.vec(1..200, |g| g.u64(0..10_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                assert!(at >= lt, "time order");
                if at == lt {
                    assert!(idx > lidx, "FIFO among ties");
                }
            }
            assert_eq!(SimTime::from_ps(times[idx]), at, "payload matches schedule");
            last = Some((at, idx));
        }
        assert_eq!(q.now(), SimTime::from_ps(*times.iter().max().unwrap()));
    });
}

#[test]
fn percentiles_match_sorted_reference() {
    Cases::new(256).run(|g| {
        let mut samples = g.vec(1..500, |g| g.u64(0..1_000_000));
        let p = g.u64(1..101) as u8;
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_ps(s));
        }
        samples.sort_unstable();
        let rank = ((f64::from(p) / 100.0) * samples.len() as f64).ceil() as usize;
        let expected = samples[rank.saturating_sub(1)];
        assert_eq!(
            rec.percentile(f64::from(p)),
            Some(Duration::from_ps(expected))
        );
    });
}

#[test]
fn rate_sampler_recovers_total() {
    Cases::new(256).run(|g| {
        let counts = g.vec(1..100, |g| g.u64(0..1000));
        let interval = Duration::from_us(10);
        let mut s = RateSampler::new("prop", interval);
        let mut acc = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            acc += c;
            s.sample(SimTime::from_us((i as u64 + 1) * 10), acc);
        }
        // Integrating the rate series recovers the total event count.
        let recovered: f64 = s
            .series()
            .samples()
            .iter()
            .map(|smp| smp.value * interval.as_secs_f64())
            .sum();
        assert!((recovered - acc as f64).abs() < 1e-6 * acc.max(1) as f64);
    });
}

#[test]
fn registry_delta_equals_sum_of_increments() {
    // A snapshot delta must account for exactly the increments applied
    // between the two snapshots — no more, no less — for any interleaving
    // of counter names and increment sizes.
    const NAMES: [&str; 5] = [
        "nic.dma.lines",
        "core0.mlc.wb",
        "prefetch.drops",
        "llc.wb",
        "engine.events.arrival",
    ];
    Cases::new(256).run(|g| {
        let mut reg = MetricsRegistry::new();
        let ops = g.vec(1..200, |g| (*g.choose(&NAMES), g.u64(0..1000)));
        let split = g.usize(0..ops.len() + 1);

        let mut before_sums: BTreeMap<&str, u64> = BTreeMap::new();
        for &(name, n) in &ops[..split] {
            reg.counter_add(name, n);
            *before_sums.entry(name).or_default() += n;
        }
        let mid = reg.snapshot();

        let mut after_sums: BTreeMap<&str, u64> = BTreeMap::new();
        for &(name, n) in &ops[split..] {
            reg.counter_add(name, n);
            *after_sums.entry(name).or_default() += n;
        }
        let end = reg.snapshot();

        // Absolute values: snapshot equals the total of all increments.
        for &name in &NAMES {
            let total = before_sums.get(name).copied().unwrap_or(0)
                + after_sums.get(name).copied().unwrap_or(0);
            assert_eq!(end.counter(name), total, "total for {name}");
            assert_eq!(
                mid.counter(name),
                before_sums.get(name).copied().unwrap_or(0)
            );
        }

        // Delta: exactly the increments applied after the mid snapshot.
        let delta = end.delta_since(&mid);
        for &name in &NAMES {
            assert_eq!(
                delta.counter(name),
                after_sums.get(name).copied().unwrap_or(0),
                "delta for {name}"
            );
        }
        // And nothing else: every counter present in the delta was named.
        for (name, _) in delta.counters() {
            assert!(NAMES.contains(&name), "unexpected counter {name}");
        }
    });
}

#[test]
fn wire_time_scales_linearly() {
    Cases::new(256).run(|g| {
        let bytes = g.u64(1..100_000);
        let gbps = g.u32(1..400);
        let one = idio_engine::time::wire_time(bytes, f64::from(gbps));
        let two = idio_engine::time::wire_time(bytes * 2, f64::from(gbps));
        let diff = two.as_ps() as i128 - 2 * one.as_ps() as i128;
        assert!(diff.abs() <= 1, "rounding only: {diff}");
    });
}
