//! # idio-mem
//!
//! A bandwidth/latency DRAM model for the IDIO reproduction.
//!
//! The model follows the Table I configuration (DDR4-3200). Each channel is
//! a bandwidth-limited server: a line transfer occupies the channel for
//! `64 B / channel_bandwidth`, requests queue FIFO per channel, and every
//! request additionally pays a fixed device latency (CAS + controller).
//! That is deliberately simpler than a bank-state DRAM simulator — the
//! paper's observations depend on *how much* DRAM traffic each policy
//! generates and on congestion-induced queueing, not on bank-level timing.
//!
//! # Examples
//!
//! ```
//! use idio_engine::time::SimTime;
//! use idio_mem::{DramConfig, DramModel, DramOp};
//!
//! let mut dram = DramModel::new(DramConfig::default());
//! let done = dram.request(SimTime::ZERO, DramOp::Read);
//! assert!(done > SimTime::ZERO);
//! assert_eq!(dram.stats().reads.get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use idio_engine::stats::Counter;
use idio_engine::time::{Duration, SimTime};

/// Kind of a DRAM line transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramOp {
    /// A 64-byte line read.
    Read,
    /// A 64-byte line write.
    Write,
}

/// DRAM model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Per-channel sustained bandwidth in bytes/second.
    pub channel_bytes_per_sec: f64,
    /// Fixed device latency added to every request.
    pub device_latency: Duration,
}

impl DramConfig {
    /// DDR4-3200 with `channels` channels: 25.6 GB/s per channel and 50 ns
    /// device latency.
    pub fn ddr4_3200(channels: usize) -> Self {
        DramConfig {
            channels,
            channel_bytes_per_sec: 25.6e9,
            device_latency: Duration::from_ns(50),
        }
    }

    /// Service time of one 64-byte line on a channel.
    pub fn line_service_time(&self) -> Duration {
        Duration::from_ps((64.0 / self.channel_bytes_per_sec * 1e12).round() as u64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the channel count is zero or the bandwidth is
    /// not positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("at least one DRAM channel required".into());
        }
        if self.channel_bytes_per_sec <= 0.0 || !self.channel_bytes_per_sec.is_finite() {
            return Err("channel bandwidth must be positive".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    /// Two channels of DDR4-3200.
    fn default() -> Self {
        DramConfig::ddr4_3200(2)
    }
}

/// DRAM traffic counters.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// Line reads served.
    pub reads: Counter,
    /// Line writes served.
    pub writes: Counter,
    /// Sum of queueing delays in picoseconds (time waiting for a channel).
    pub total_queue_ps: Counter,
    /// Cumulative channel busy time in picoseconds across all channels.
    pub busy_ps: Counter,
}

impl DramStats {
    /// Total line transactions.
    pub fn total(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.total() * 64
    }

    /// Mean queueing delay per request.
    pub fn mean_queue_delay(&self) -> Duration {
        match self.total_queue_ps.get().checked_div(self.total()) {
            None => Duration::ZERO,
            Some(ps) => Duration::from_ps(ps),
        }
    }
}

/// The DRAM timing model.
///
/// Requests are assigned to channels round-robin, approximating line
/// interleaving.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    next_free: Vec<SimTime>,
    rr: usize,
    service: Duration,
    stats: DramStats,
}

impl DramModel {
    /// Creates a model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DramConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DRAM config: {e}");
        }
        DramModel {
            next_free: vec![SimTime::ZERO; cfg.channels],
            rr: 0,
            service: cfg.line_service_time(),
            cfg,
            stats: DramStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zeroes the statistics (channel occupancy state is retained).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Issues one line transaction at `now`; returns its completion time
    /// (queueing + device latency + transfer).
    pub fn request(&mut self, now: SimTime, op: DramOp) -> SimTime {
        let ch = self.rr;
        self.rr = (self.rr + 1) % self.next_free.len();
        let start = self.next_free[ch].max(now);
        let queue_delay = start - now;
        self.next_free[ch] = start + self.service;
        match op {
            DramOp::Read => self.stats.reads.inc(),
            DramOp::Write => self.stats.writes.inc(),
        }
        self.stats.total_queue_ps.add(queue_delay.as_ps());
        self.stats.busy_ps.add(self.service.as_ps());
        start + self.cfg.device_latency + self.service
    }

    /// Issues `n` line transactions at `now`; returns the completion time
    /// of the last one. Convenience for multi-line DRAM effects reported by
    /// the cache hierarchy.
    pub fn request_many(&mut self, now: SimTime, op: DramOp, n: u32) -> SimTime {
        let mut done = now;
        for _ in 0..n {
            done = done.max(self.request(now, op));
        }
        done
    }

    /// Aggregate bandwidth utilisation over `[0, now]`, in `0.0..=1.0`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let capacity = now.as_ps() as f64 * self.next_free.len() as f64;
        (self.stats.busy_ps.get() as f64 / capacity).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_service_time_ddr4_3200() {
        let cfg = DramConfig::ddr4_3200(1);
        // 64 B / 25.6 GB/s = 2.5 ns.
        assert_eq!(cfg.line_service_time(), Duration::from_ps(2500));
    }

    #[test]
    fn unloaded_latency_is_device_plus_transfer() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1));
        let done = d.request(SimTime::from_ns(100), DramOp::Read);
        assert_eq!(done, SimTime::from_ns(100) + Duration::from_ps(52_500));
        assert_eq!(d.stats().mean_queue_delay(), Duration::ZERO);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1));
        let t = SimTime::ZERO;
        let first = d.request(t, DramOp::Write);
        let second = d.request(t, DramOp::Write);
        // The second waits for the channel: 2.5 ns extra.
        assert_eq!(second - first, Duration::from_ps(2500));
        assert_eq!(d.stats().total_queue_ps.get(), 2500);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(2));
        let t = SimTime::ZERO;
        let a = d.request(t, DramOp::Read);
        let b = d.request(t, DramOp::Read);
        assert_eq!(a, b, "two channels absorb two requests without queueing");
    }

    #[test]
    fn request_many_counts_and_orders() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(2));
        let done = d.request_many(SimTime::ZERO, DramOp::Write, 4);
        assert_eq!(d.stats().writes.get(), 4);
        // 4 lines over 2 channels: second wave queues 2.5 ns.
        assert_eq!(done.as_ps(), 50_000 + 2 * 2500);
    }

    #[test]
    fn utilization_accumulates() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1));
        for _ in 0..100 {
            d.request(SimTime::ZERO, DramOp::Read);
        }
        // 100 lines * 2.5 ns busy over a 1 us window on one channel = 25%.
        let u = d.utilization(SimTime::from_us(1));
        assert!((u - 0.25).abs() < 1e-9, "got {u}");
        assert_eq!(d.stats().bytes(), 6400);
    }

    #[test]
    fn reset_stats_keeps_channel_state() {
        let mut d = DramModel::new(DramConfig::ddr4_3200(1));
        d.request(SimTime::ZERO, DramOp::Read);
        d.reset_stats();
        assert_eq!(d.stats().total(), 0);
        // Channel still busy: a new request at t=0 queues.
        d.request(SimTime::ZERO, DramOp::Read);
        assert!(d.stats().total_queue_ps.get() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM config")]
    fn zero_channels_rejected() {
        let _ = DramModel::new(DramConfig {
            channels: 0,
            ..DramConfig::default()
        });
    }
}
