//! Traffic generators: steady-rate and bursty streams (Sec. VI).
//!
//! The paper defines a burst by three parameters: the **burst period** (time
//! between the starts of two consecutive bursts, fixed at 10 ms), the
//! **burst rate** (bits per second during a burst), and the **burst length**
//! (time from the first to the last packet of a burst). The burst length is
//! chosen so each burst delivers exactly `ring_size` packets — preventing
//! drops within a single burst — which [`BurstSpec::for_ring`] computes.

use idio_engine::rng::SimRng;
use idio_engine::time::{wire_time, Duration, SimTime};

use crate::packet::{Dscp, FiveTuple, Packet};

/// One packet arrival produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Time the last bit of the frame arrives at the NIC.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// Static description of the packets a generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// The flow's five-tuple.
    pub tuple: FiveTuple,
    /// DSCP marking (application class signalling).
    pub dscp: Dscp,
    /// Frame length in bytes.
    pub packet_len: u16,
}

impl FlowSpec {
    /// A UDP flow of `packet_len`-byte best-effort frames to `dst_port`.
    pub fn udp_to_port(dst_port: u16, packet_len: u16) -> Self {
        FlowSpec {
            tuple: FiveTuple::udp(0x0a00_0001, 0x0a00_0002, 40_000 + dst_port, dst_port),
            dscp: Dscp::BEST_EFFORT,
            packet_len,
        }
    }

    /// Returns the spec with a different DSCP marking.
    pub fn with_dscp(mut self, dscp: Dscp) -> Self {
        self.dscp = dscp;
        self
    }
}

/// Parameters of a periodic burst pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Time between the starts of two consecutive bursts.
    pub period: Duration,
    /// Number of packets in each burst.
    pub packets_per_burst: u32,
    /// Interarrival time of packets within a burst (the burst rate).
    pub intra_gap: Duration,
}

impl BurstSpec {
    /// The paper's burst construction: `ring_size` packets per burst at
    /// `rate_gbps`, every `period` (10 ms in the evaluation).
    ///
    /// # Panics
    ///
    /// Panics if the burst does not fit in the period or any parameter is
    /// zero.
    pub fn for_ring(ring_size: u32, packet_len: u16, rate_gbps: f64, period: Duration) -> Self {
        assert!(ring_size > 0, "empty burst");
        let intra_gap = wire_time(u64::from(packet_len), rate_gbps);
        let burst_len = intra_gap * u64::from(ring_size);
        assert!(
            burst_len < period,
            "burst of {burst_len} does not fit in period {period}"
        );
        BurstSpec {
            period,
            packets_per_burst: ring_size,
            intra_gap,
        }
    }

    /// Duration from the first to the last packet of one burst.
    pub fn burst_length(&self) -> Duration {
        self.intra_gap * u64::from(self.packets_per_burst.saturating_sub(1))
    }
}

/// The arrival pattern of a traffic source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// A constant packet rate from time zero.
    Steady {
        /// Line rate in gigabits per second.
        rate_gbps: f64,
    },
    /// Periodic bursts (Sec. VI).
    Bursty(BurstSpec),
    /// Memoryless (Poisson) arrivals at a mean rate — the classic open-loop
    /// datacenter load model; exposes policies to irregular instantaneous
    /// rates without the regular structure of [`TrafficPattern::Bursty`].
    Poisson {
        /// Mean offered load in gigabits per second.
        rate_gbps: f64,
        /// Seed for the exponential interarrival draws (keeps runs
        /// deterministic).
        seed: u64,
    },
}

/// A deterministic packet-arrival generator for one flow.
///
/// Implements [`Iterator`], yielding [`Arrival`]s in time order until the
/// configured horizon.
///
/// # Examples
///
/// ```
/// use idio_engine::time::{Duration, SimTime};
/// use idio_net::gen::{FlowSpec, TrafficGen, TrafficPattern};
///
/// // 10 Gbps of MTU frames for 1 ms: one frame every ~1.2 us.
/// let gen = TrafficGen::new(
///     FlowSpec::udp_to_port(5000, 1514),
///     TrafficPattern::Steady { rate_gbps: 10.0 },
///     SimTime::from_ms(1),
/// );
/// let arrivals: Vec<_> = gen.collect();
/// assert_eq!(arrivals.len(), 826);
/// assert!(arrivals.windows(2).all(|w| w[0].at < w[1].at));
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGen {
    flow: FlowSpec,
    pattern: TrafficPattern,
    until: SimTime,
    next_id: u64,
    /// Index of the next packet within the current burst (bursty only).
    burst_pos: u32,
    /// Start time of the current burst / next steady arrival.
    cursor: SimTime,
    /// RNG for stochastic patterns.
    rng: SimRng,
}

impl TrafficGen {
    /// Creates a generator emitting until `until` (exclusive).
    pub fn new(flow: FlowSpec, pattern: TrafficPattern, until: SimTime) -> Self {
        let seed = match pattern {
            TrafficPattern::Steady { rate_gbps } | TrafficPattern::Poisson { rate_gbps, .. } => {
                assert!(rate_gbps > 0.0, "rate must be positive");
                if let TrafficPattern::Poisson { seed, .. } = pattern {
                    seed
                } else {
                    0
                }
            }
            TrafficPattern::Bursty(_) => 0,
        };
        TrafficGen {
            flow,
            pattern,
            until,
            next_id: 0,
            burst_pos: 0,
            cursor: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The flow specification this generator emits.
    pub fn flow(&self) -> &FlowSpec {
        &self.flow
    }

    fn make(&mut self, at: SimTime) -> Arrival {
        let id = self.next_id;
        self.next_id += 1;
        Arrival {
            at,
            packet: Packet::new(id, self.flow.packet_len, self.flow.tuple, self.flow.dscp),
        }
    }
}

impl Iterator for TrafficGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        match self.pattern {
            TrafficPattern::Steady { rate_gbps } => {
                let at = self.cursor;
                if at >= self.until {
                    return None;
                }
                self.cursor = at + wire_time(u64::from(self.flow.packet_len), rate_gbps);
                Some(self.make(at))
            }
            TrafficPattern::Poisson { rate_gbps, .. } => {
                let at = self.cursor;
                if at >= self.until {
                    return None;
                }
                // Exponential interarrival with the packet's mean service
                // slot as the mean.
                let mean = wire_time(u64::from(self.flow.packet_len), rate_gbps);
                let u = self.rng.unit_f64().max(f64::MIN_POSITIVE);
                let gap_ps = (-u.ln() * mean.as_ps() as f64).round().max(1.0) as u64;
                self.cursor = at + Duration::from_ps(gap_ps);
                Some(self.make(at))
            }
            TrafficPattern::Bursty(spec) => {
                let at = self.cursor + spec.intra_gap * u64::from(self.burst_pos);
                if at >= self.until {
                    return None;
                }
                let arrival = self.make(at);
                self.burst_pos += 1;
                if self.burst_pos == spec.packets_per_burst {
                    self.burst_pos = 0;
                    self.cursor += spec.period;
                }
                Some(arrival)
            }
        }
    }
}

/// Maximum concurrently-active flows one [`FlowSet`] can carry.
pub const MAX_FLOW_SET_FLOWS: u32 = 1 << 24;

/// Maximum tenant tag a wide [`FlowSet`] accepts (the tag occupies the
/// first source-IP octet above the `11.0.0.0` base).
pub const MAX_FLOW_SET_TAG: u16 = 239;

/// Number of flow generations a churning [`FlowSet`] distinguishes before
/// flow identifiers repeat (port/address reuse, as on real networks).
const CHURN_GENERATIONS: u64 = 256;

/// A streaming flow population: derives each flow's five-tuple on demand
/// from `(tenant tag, flow index)` instead of materialising a `Vec`, so a
/// tenant can carry millions of flows with O(1) memory.
///
/// Two derivations exist, picked automatically:
///
/// * **narrow** — the flow count fits the tenant's port range
///   (`base_port + flows <= 65536`) and no churn is configured. The
///   five-tuples are exactly [`FlowSpec::udp_to_port`]`(base_port + i)`,
///   byte-compatible with the materialised flow lists earlier versions
///   built.
/// * **wide** — larger populations (or churning ones) spill the flow
///   index into the source address: the low 16 bits offset the ports, the
///   high bits land in the source IP together with the tenant tag, so
///   tenants can never alias each other's flows.
///
/// With churn configured, each of the `flows` active slots hosts a
/// sequence of flow *incarnations*: slot `j` retires its flow and starts
/// a fresh one (new index, new five-tuple) every `lifetime`, staggered
/// across slots so the population turns over smoothly. The mapping is a
/// pure function of `(slot, time)` — no per-flow state exists anywhere.
///
/// # Examples
///
/// ```
/// use idio_engine::time::{Duration, SimTime};
/// use idio_net::gen::{FlowSet, FlowSpec};
/// use idio_net::packet::Dscp;
///
/// // A small set is byte-compatible with the legacy materialised list.
/// let small = FlowSet::new(0, 4, 5000, 1514, Dscp::BEST_EFFORT);
/// assert_eq!(small.tuple_of(2), FlowSpec::udp_to_port(5002, 1514).tuple);
///
/// // A million-flow set derives tuples on demand and inverts them.
/// let big = FlowSet::new(3, 1_000_000, 5000, 1514, Dscp::BEST_EFFORT);
/// let t = big.tuple_of(900_001);
/// assert_eq!(big.slot_of(&t), Some(900_001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSet {
    /// Tenant tag disambiguating wide sets (unused by narrow sets).
    tag: u16,
    /// Concurrently-active flows (the working-set width).
    flows: u32,
    base_port: u16,
    packet_len: u16,
    dscp: Dscp,
    /// Packets dealt to a flow per visit before rotating to the next
    /// (a packet train; 1 = plain round-robin).
    train: u32,
    /// Flow lifetime: how long a slot keeps one flow before churning to a
    /// fresh one. `None` = the population never turns over.
    churn: Option<Duration>,
}

impl FlowSet {
    /// Source address of every narrow flow (shared with
    /// [`FlowSpec::udp_to_port`]).
    const NARROW_SRC_IP: u32 = 0x0a00_0001;
    /// Destination of every synthetic flow.
    const DST_IP: u32 = 0x0a00_0002;
    /// Base of the wide source-address space (`11.0.0.1`); the tenant tag
    /// selects the first octet above it.
    const WIDE_SRC_BASE: u32 = 0x0b00_0001;
    /// Source ports sit this far above the destination port.
    const SRC_PORT_BASE: u16 = 40_000;

    /// Creates a flow set of `flows` active flows.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero or exceeds [`MAX_FLOW_SET_FLOWS`], or if
    /// `tag` exceeds [`MAX_FLOW_SET_TAG`].
    pub fn new(tag: u16, flows: u32, base_port: u16, packet_len: u16, dscp: Dscp) -> Self {
        assert!(flows > 0, "a tenant needs at least one flow");
        assert!(
            flows <= MAX_FLOW_SET_FLOWS,
            "flow set of {flows} exceeds the {MAX_FLOW_SET_FLOWS} maximum"
        );
        assert!(
            tag <= MAX_FLOW_SET_TAG,
            "tenant tag {tag} exceeds the {MAX_FLOW_SET_TAG} maximum"
        );
        FlowSet {
            tag,
            flows,
            base_port,
            packet_len,
            dscp,
            train: 1,
            churn: None,
        }
    }

    /// Sets the packet-train length: how many consecutive packets each
    /// flow receives per visit.
    ///
    /// # Panics
    ///
    /// Panics if `train` is zero.
    pub fn with_train(mut self, train: u32) -> Self {
        assert!(train > 0, "packet train must hold at least one packet");
        self.train = train;
        self
    }

    /// Enables churn: each flow lives `lifetime`, then its slot starts a
    /// fresh flow. Forces the wide derivation.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is zero.
    pub fn with_churn(mut self, lifetime: Duration) -> Self {
        assert!(lifetime > Duration::ZERO, "flow lifetime must be positive");
        self.churn = Some(lifetime);
        self
    }

    /// Number of concurrently-active flows.
    pub fn flows(&self) -> u32 {
        self.flows
    }

    /// The packet-train length.
    pub fn train(&self) -> u32 {
        self.train
    }

    /// The flow lifetime, when churn is enabled.
    pub fn churn(&self) -> Option<Duration> {
        self.churn
    }

    /// Frame length of every packet in the set.
    pub fn packet_len(&self) -> u16 {
        self.packet_len
    }

    /// Whether the set uses the wide (source-address-spilling) derivation.
    pub fn is_wide(&self) -> bool {
        self.churn.is_some() || u32::from(self.base_port) + self.flows > 65536
    }

    /// The five-tuple of flow `idx`.
    pub fn tuple_of(&self, idx: u32) -> FiveTuple {
        let lo = (idx & 0xffff) as u16;
        let dst_port = self.base_port.wrapping_add(lo);
        let src_port = Self::SRC_PORT_BASE.wrapping_add(dst_port);
        let src_ip = if self.is_wide() {
            Self::WIDE_SRC_BASE + (u32::from(self.tag) << 24) + (idx >> 16)
        } else {
            Self::NARROW_SRC_IP
        };
        FiveTuple::udp(src_ip, Self::DST_IP, src_port, dst_port)
    }

    /// The flow index slot `slot` hosts at time `at` (its current
    /// incarnation under churn; `slot` itself without).
    ///
    /// Incarnation `k` of slot `j` is flow index `j + flows * k`: always
    /// congruent to `j` modulo `flows`, so the slot (and with it the home
    /// queue) is recoverable from any index.
    pub fn index_at(&self, slot: u32, at: SimTime) -> u32 {
        debug_assert!(slot < self.flows);
        match self.churn {
            None => slot,
            Some(life) => {
                // Stagger slot churn uniformly across one lifetime so the
                // population turns over smoothly instead of in lockstep.
                let stagger = life.as_ps() / u64::from(self.flows) * u64::from(slot);
                let k = (at.as_ps() + stagger) / life.as_ps() % CHURN_GENERATIONS;
                slot + self.flows * k as u32
            }
        }
    }

    /// Inverts [`FlowSet::tuple_of`]: the active slot a five-tuple
    /// belongs to, or `None` if the tuple is not from this set.
    pub fn slot_of(&self, flow: &FiveTuple) -> Option<u32> {
        if flow.proto != 17 || flow.dst_ip != Self::DST_IP {
            return None;
        }
        let lo = flow.dst_port.wrapping_sub(self.base_port);
        if flow.src_port != Self::SRC_PORT_BASE.wrapping_add(flow.dst_port) {
            return None;
        }
        let idx = if self.is_wide() {
            let rel = flow
                .src_ip
                .wrapping_sub(Self::WIDE_SRC_BASE + (u32::from(self.tag) << 24));
            if rel > 0xffff {
                return None;
            }
            (rel << 16) | u32::from(lo)
        } else {
            if flow.src_ip != Self::NARROW_SRC_IP {
                return None;
            }
            u32::from(lo)
        };
        let slot = idx % self.flows;
        // Narrow sets cover exactly [0, flows); wide indices wrap by
        // construction.
        if !self.is_wide() && idx >= self.flows {
            return None;
        }
        Some(slot)
    }
}

/// How a [`MultiFlowGen`] produces its flow population.
#[derive(Debug, Clone)]
enum FlowBacking {
    /// A materialised flow list (legacy small populations and replay).
    Explicit(Vec<FlowSpec>),
    /// A streaming [`FlowSet`] (O(1) memory at any flow count).
    Stream(FlowSet),
}

/// A deterministic multi-flow generator: one aggregate arrival pattern
/// dealt over a flow population.
///
/// The timing of the merged stream is *exactly* that of a single
/// [`TrafficGen`] driven by `pattern` (so a tenant's aggregate offered
/// load is independent of its flow count); only the five-tuple and DSCP
/// rotate per packet. This is how a multi-tenant scenario spreads one
/// tenant's load across many queues: each flow is pinned to a queue via
/// the flow director (or hashed there by RSS), so consecutive packets
/// fan out over the tenant's cores.
///
/// The population is either an explicit [`FlowSpec`] list (dealt
/// round-robin) or a streaming [`FlowSet`], which adds packet trains and
/// flow churn on top of the same rotation.
///
/// Packet ids stay monotonic across the merged stream.
///
/// # Examples
///
/// ```
/// use idio_engine::time::SimTime;
/// use idio_net::gen::{FlowSpec, MultiFlowGen, TrafficPattern};
///
/// let flows: Vec<_> = (0..3).map(|i| FlowSpec::udp_to_port(6000 + i, 1514)).collect();
/// let mut g = MultiFlowGen::new(flows, TrafficPattern::Steady { rate_gbps: 10.0 }, SimTime::from_us(50));
/// let a = g.next().unwrap();
/// let b = g.next().unwrap();
/// assert_ne!(a.packet.flow, b.packet.flow);
/// assert_eq!(b.packet.id, a.packet.id + 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiFlowGen {
    inner: TrafficGen,
    backing: FlowBacking,
    /// Rotation cursor: index into the explicit list, or the active slot
    /// of a streaming set.
    cursor: u32,
    /// Packets left before the cursor rotates (streaming trains).
    train_left: u32,
}

impl MultiFlowGen {
    /// Creates a generator dealing `pattern` arrivals round-robin over an
    /// explicit `flows` list until `until` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty or the flows disagree on frame length
    /// (the aggregate pattern's wire timing is per-frame).
    pub fn new(flows: Vec<FlowSpec>, pattern: TrafficPattern, until: SimTime) -> Self {
        assert!(!flows.is_empty(), "a tenant needs at least one flow");
        assert!(
            flows.iter().all(|f| f.packet_len == flows[0].packet_len),
            "flows of one generator must share a frame length"
        );
        MultiFlowGen {
            inner: TrafficGen::new(flows[0], pattern, until),
            backing: FlowBacking::Explicit(flows),
            cursor: 0,
            train_left: 1,
        }
    }

    /// Creates a generator dealing `pattern` arrivals over a streaming
    /// [`FlowSet`] until `until` (exclusive).
    pub fn streaming(set: FlowSet, pattern: TrafficPattern, until: SimTime) -> Self {
        let timing = FlowSpec {
            tuple: set.tuple_of(0),
            dscp: set.dscp,
            packet_len: set.packet_len,
        };
        MultiFlowGen {
            inner: TrafficGen::new(timing, pattern, until),
            backing: FlowBacking::Stream(set),
            cursor: 0,
            train_left: set.train,
        }
    }

    /// The explicit flow list, when one backs this generator (empty for
    /// streaming sets — their population is derived, not stored).
    pub fn flows(&self) -> &[FlowSpec] {
        match &self.backing {
            FlowBacking::Explicit(flows) => flows,
            FlowBacking::Stream(_) => &[],
        }
    }

    /// The streaming flow set, when one backs this generator.
    pub fn flow_set(&self) -> Option<&FlowSet> {
        match &self.backing {
            FlowBacking::Explicit(_) => None,
            FlowBacking::Stream(set) => Some(set),
        }
    }
}

impl Iterator for MultiFlowGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let a = self.inner.next()?;
        let (tuple, dscp, len) = match &self.backing {
            FlowBacking::Explicit(flows) => {
                let spec = flows[self.cursor as usize];
                self.cursor = (self.cursor + 1) % flows.len() as u32;
                (spec.tuple, spec.dscp, spec.packet_len)
            }
            FlowBacking::Stream(set) => {
                let idx = set.index_at(self.cursor, a.at);
                let tuple = set.tuple_of(idx);
                self.train_left -= 1;
                if self.train_left == 0 {
                    self.cursor = (self.cursor + 1) % set.flows;
                    self.train_left = set.train;
                }
                (tuple, set.dscp, set.packet_len)
            }
        };
        Some(Arrival {
            at: a.at,
            packet: Packet::new(a.packet.id, len, tuple, dscp),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowSpec {
        FlowSpec::udp_to_port(5000, 1514)
    }

    #[test]
    fn steady_rate_interarrival() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Steady { rate_gbps: 100.0 },
            SimTime::from_us(10),
        );
        let a: Vec<_> = g.collect();
        // 1514 B at 100 Gbps = 121.12 ns per frame; 10 us / 121.12 ns = 82+.
        assert_eq!(a.len(), 83);
        let gap = a[1].at - a[0].at;
        assert_eq!(gap, wire_time(1514, 100.0));
    }

    #[test]
    fn burst_spec_matches_paper_lengths() {
        // Sec. VI: ring 1024, 1514 B packets — burst lengths 1.155 / 0.231 /
        // 0.115 ms (packets_per_burst ends 1 gap earlier; compare the full
        // span including the last frame's slot).
        for (rate, expect_ms) in [(10.0, 1.24), (25.0, 0.496), (100.0, 0.124)] {
            let s = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(10));
            let span = (s.intra_gap * 1024).as_secs_f64() * 1e3;
            assert!(
                (span - expect_ms).abs() / expect_ms < 0.08,
                "rate {rate}: span {span} vs {expect_ms}"
            );
        }
    }

    #[test]
    fn bursty_generator_emits_exact_burst_sizes() {
        let spec = BurstSpec::for_ring(8, 1514, 100.0, Duration::from_us(100));
        let g = TrafficGen::new(flow(), TrafficPattern::Bursty(spec), SimTime::from_us(250));
        let a: Vec<_> = g.collect();
        // Bursts start at 0, 100 us, 200 us: 3 bursts x 8 packets.
        assert_eq!(a.len(), 24);
        // First burst confined to its burst length.
        assert!(a[7].at - a[0].at == spec.burst_length());
        // Gap between bursts is the period minus the intra-burst span.
        assert_eq!(a[8].at, SimTime::from_us(100));
        assert_eq!(a[16].at, SimTime::from_us(200));
    }

    #[test]
    fn ids_are_monotonic() {
        let spec = BurstSpec::for_ring(4, 1514, 25.0, Duration::from_us(50));
        let g = TrafficGen::new(flow(), TrafficPattern::Bursty(spec), SimTime::from_us(120));
        let ids: Vec<_> = g.map(|a| a.packet.id).collect();
        assert_eq!(ids, (0..ids.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_exclusive() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::ZERO,
        );
        assert_eq!(g.count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_burst_rejected() {
        let _ = BurstSpec::for_ring(1024, 1514, 10.0, Duration::from_us(100));
    }

    #[test]
    fn poisson_mean_rate_approximates_target() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Poisson {
                rate_gbps: 10.0,
                seed: 42,
            },
            SimTime::from_ms(10),
        );
        let n = g.count() as f64;
        // 10 Gbps of 1514 B frames over 10 ms = ~8256 packets expected.
        let expect = 10e9 / (1514.0 * 8.0) * 10e-3;
        assert!((n - expect).abs() / expect < 0.05, "{n} vs {expect}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let collect = |seed| {
            TrafficGen::new(
                flow(),
                TrafficPattern::Poisson {
                    rate_gbps: 25.0,
                    seed,
                },
                SimTime::from_us(200),
            )
            .map(|a| a.at)
            .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn poisson_arrivals_strictly_ordered() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Poisson {
                rate_gbps: 100.0,
                seed: 3,
            },
            SimTime::from_us(100),
        );
        let times: Vec<_> = g.map(|a| a.at).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn multi_flow_keeps_aggregate_timing_and_rotates_flows() {
        let until = SimTime::from_us(60);
        let pattern = TrafficPattern::Steady { rate_gbps: 25.0 };
        let single: Vec<_> = TrafficGen::new(flow(), pattern, until).collect();
        let flows: Vec<_> = (0..3)
            .map(|i| FlowSpec::udp_to_port(6000 + i, 1514).with_dscp(Dscp::CLASS1_DEFAULT))
            .collect();
        let multi: Vec<_> = MultiFlowGen::new(flows.clone(), pattern, until).collect();
        assert_eq!(multi.len(), single.len(), "same aggregate offered load");
        for (i, (s, m)) in single.iter().zip(&multi).enumerate() {
            assert_eq!(m.at, s.at, "arrival {i} keeps the aggregate schedule");
            assert_eq!(m.packet.id, i as u64, "ids monotonic across flows");
            assert_eq!(m.packet.flow, flows[i % 3].tuple, "round-robin dealing");
            assert_eq!(m.packet.dscp, Dscp::CLASS1_DEFAULT);
        }
    }

    #[test]
    #[should_panic(expected = "share a frame length")]
    fn multi_flow_rejects_mixed_frame_lengths() {
        let flows = vec![
            FlowSpec::udp_to_port(6000, 1514),
            FlowSpec::udp_to_port(6001, 256),
        ];
        let _ = MultiFlowGen::new(
            flows,
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::from_us(10),
        );
    }

    #[test]
    fn dscp_marking_propagates() {
        let f = flow().with_dscp(Dscp::CLASS1_DEFAULT);
        let mut g = TrafficGen::new(
            f,
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::from_us(10),
        );
        assert_eq!(g.next().unwrap().packet.dscp, Dscp::CLASS1_DEFAULT);
    }

    #[test]
    fn narrow_flow_set_matches_legacy_flow_specs() {
        let set = FlowSet::new(7, 64, 6000, 1514, Dscp::CLASS1_DEFAULT);
        assert!(!set.is_wide(), "64 flows at port 6000 fit the port range");
        for i in 0..64u32 {
            let legacy = FlowSpec::udp_to_port(6000 + i as u16, 1514);
            assert_eq!(set.tuple_of(i), legacy.tuple, "flow {i}");
        }
    }

    #[test]
    fn streaming_narrow_set_is_byte_identical_to_explicit_list() {
        let until = SimTime::from_us(50);
        let pattern = TrafficPattern::Poisson {
            rate_gbps: 25.0,
            seed: 9,
        };
        let flows: Vec<_> = (0..5)
            .map(|i| FlowSpec::udp_to_port(6000 + i, 1514).with_dscp(Dscp::CLASS1_DEFAULT))
            .collect();
        let explicit: Vec<_> = MultiFlowGen::new(flows, pattern, until).collect();
        let set = FlowSet::new(0, 5, 6000, 1514, Dscp::CLASS1_DEFAULT);
        let streamed: Vec<_> = MultiFlowGen::streaming(set, pattern, until).collect();
        assert_eq!(explicit, streamed);
    }

    #[test]
    fn wide_flow_set_round_trips_every_index_shape() {
        let set = FlowSet::new(3, 1_000_000, 5000, 1514, Dscp::BEST_EFFORT);
        assert!(set.is_wide());
        for idx in [0u32, 1, 65_535, 65_536, 131_072, 999_999] {
            let t = set.tuple_of(idx);
            assert_eq!(set.slot_of(&t), Some(idx), "index {idx}");
        }
    }

    #[test]
    fn flow_sets_of_distinct_tenants_never_alias() {
        let a = FlowSet::new(0, 100_000, 5000, 1514, Dscp::BEST_EFFORT);
        let b = FlowSet::new(1, 100_000, 5000, 1514, Dscp::BEST_EFFORT);
        let narrow = FlowSet::new(2, 64, 5000, 1514, Dscp::BEST_EFFORT);
        for idx in [0u32, 63, 65_536, 99_999] {
            assert_eq!(b.slot_of(&a.tuple_of(idx)), None);
            assert_eq!(a.slot_of(&b.tuple_of(idx)), None);
        }
        assert_eq!(a.slot_of(&narrow.tuple_of(3)), None, "narrow vs wide");
        assert_eq!(narrow.slot_of(&a.tuple_of(3)), None, "wide vs narrow");
    }

    #[test]
    fn churn_turns_the_population_over_and_keeps_slots_invertible() {
        let life = Duration::from_us(10);
        let set = FlowSet::new(0, 8, 5000, 1514, Dscp::BEST_EFFORT).with_churn(life);
        assert!(set.is_wide(), "churn forces the wide derivation");
        let early = set.index_at(2, SimTime::from_us(1));
        let late = set.index_at(2, SimTime::from_us(21));
        assert_ne!(early, late, "slot 2 churned to a fresh flow");
        assert_eq!(early % 8, 2, "incarnations stay congruent to the slot");
        assert_eq!(late % 8, 2);
        assert_eq!(set.slot_of(&set.tuple_of(late)), Some(2));
        // Stagger: not every slot churns at the same instant.
        let at = SimTime::from_us(5);
        let gens: Vec<_> = (0..8).map(|j| set.index_at(j, at) / 8).collect();
        assert!(
            gens.iter().any(|&g| g != gens[0]),
            "staggered churn: generations {gens:?} should be mixed"
        );
    }

    #[test]
    fn packet_trains_deal_consecutive_packets_to_one_flow() {
        let set = FlowSet::new(0, 4, 6000, 1514, Dscp::BEST_EFFORT).with_train(3);
        let g = MultiFlowGen::streaming(
            set,
            TrafficPattern::Steady { rate_gbps: 25.0 },
            SimTime::from_us(20),
        );
        let arrivals: Vec<_> = g.collect();
        assert!(arrivals.len() > 12);
        for (i, a) in arrivals.iter().enumerate() {
            let slot = (i as u32 / 3) % 4;
            assert_eq!(a.packet.flow, set.tuple_of(slot), "packet {i}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 16777216 maximum")]
    fn oversized_flow_set_rejected() {
        let _ = FlowSet::new(0, MAX_FLOW_SET_FLOWS + 1, 5000, 1514, Dscp::BEST_EFFORT);
    }

    #[test]
    #[should_panic(expected = "tenant tag 240 exceeds")]
    fn oversized_tenant_tag_rejected() {
        let _ = FlowSet::new(240, 64, 5000, 1514, Dscp::BEST_EFFORT);
    }
}
