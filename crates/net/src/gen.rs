//! Traffic generators: steady-rate and bursty streams (Sec. VI).
//!
//! The paper defines a burst by three parameters: the **burst period** (time
//! between the starts of two consecutive bursts, fixed at 10 ms), the
//! **burst rate** (bits per second during a burst), and the **burst length**
//! (time from the first to the last packet of a burst). The burst length is
//! chosen so each burst delivers exactly `ring_size` packets — preventing
//! drops within a single burst — which [`BurstSpec::for_ring`] computes.

use idio_engine::rng::SimRng;
use idio_engine::time::{wire_time, Duration, SimTime};

use crate::packet::{Dscp, FiveTuple, Packet};

/// One packet arrival produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Time the last bit of the frame arrives at the NIC.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// Static description of the packets a generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// The flow's five-tuple.
    pub tuple: FiveTuple,
    /// DSCP marking (application class signalling).
    pub dscp: Dscp,
    /// Frame length in bytes.
    pub packet_len: u16,
}

impl FlowSpec {
    /// A UDP flow of `packet_len`-byte best-effort frames to `dst_port`.
    pub fn udp_to_port(dst_port: u16, packet_len: u16) -> Self {
        FlowSpec {
            tuple: FiveTuple::udp(0x0a00_0001, 0x0a00_0002, 40_000 + dst_port, dst_port),
            dscp: Dscp::BEST_EFFORT,
            packet_len,
        }
    }

    /// Returns the spec with a different DSCP marking.
    pub fn with_dscp(mut self, dscp: Dscp) -> Self {
        self.dscp = dscp;
        self
    }
}

/// Parameters of a periodic burst pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Time between the starts of two consecutive bursts.
    pub period: Duration,
    /// Number of packets in each burst.
    pub packets_per_burst: u32,
    /// Interarrival time of packets within a burst (the burst rate).
    pub intra_gap: Duration,
}

impl BurstSpec {
    /// The paper's burst construction: `ring_size` packets per burst at
    /// `rate_gbps`, every `period` (10 ms in the evaluation).
    ///
    /// # Panics
    ///
    /// Panics if the burst does not fit in the period or any parameter is
    /// zero.
    pub fn for_ring(ring_size: u32, packet_len: u16, rate_gbps: f64, period: Duration) -> Self {
        assert!(ring_size > 0, "empty burst");
        let intra_gap = wire_time(u64::from(packet_len), rate_gbps);
        let burst_len = intra_gap * u64::from(ring_size);
        assert!(
            burst_len < period,
            "burst of {burst_len} does not fit in period {period}"
        );
        BurstSpec {
            period,
            packets_per_burst: ring_size,
            intra_gap,
        }
    }

    /// Duration from the first to the last packet of one burst.
    pub fn burst_length(&self) -> Duration {
        self.intra_gap * u64::from(self.packets_per_burst.saturating_sub(1))
    }
}

/// The arrival pattern of a traffic source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// A constant packet rate from time zero.
    Steady {
        /// Line rate in gigabits per second.
        rate_gbps: f64,
    },
    /// Periodic bursts (Sec. VI).
    Bursty(BurstSpec),
    /// Memoryless (Poisson) arrivals at a mean rate — the classic open-loop
    /// datacenter load model; exposes policies to irregular instantaneous
    /// rates without the regular structure of [`TrafficPattern::Bursty`].
    Poisson {
        /// Mean offered load in gigabits per second.
        rate_gbps: f64,
        /// Seed for the exponential interarrival draws (keeps runs
        /// deterministic).
        seed: u64,
    },
}

/// A deterministic packet-arrival generator for one flow.
///
/// Implements [`Iterator`], yielding [`Arrival`]s in time order until the
/// configured horizon.
///
/// # Examples
///
/// ```
/// use idio_engine::time::{Duration, SimTime};
/// use idio_net::gen::{FlowSpec, TrafficGen, TrafficPattern};
///
/// // 10 Gbps of MTU frames for 1 ms: one frame every ~1.2 us.
/// let gen = TrafficGen::new(
///     FlowSpec::udp_to_port(5000, 1514),
///     TrafficPattern::Steady { rate_gbps: 10.0 },
///     SimTime::from_ms(1),
/// );
/// let arrivals: Vec<_> = gen.collect();
/// assert_eq!(arrivals.len(), 826);
/// assert!(arrivals.windows(2).all(|w| w[0].at < w[1].at));
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGen {
    flow: FlowSpec,
    pattern: TrafficPattern,
    until: SimTime,
    next_id: u64,
    /// Index of the next packet within the current burst (bursty only).
    burst_pos: u32,
    /// Start time of the current burst / next steady arrival.
    cursor: SimTime,
    /// RNG for stochastic patterns.
    rng: SimRng,
}

impl TrafficGen {
    /// Creates a generator emitting until `until` (exclusive).
    pub fn new(flow: FlowSpec, pattern: TrafficPattern, until: SimTime) -> Self {
        let seed = match pattern {
            TrafficPattern::Steady { rate_gbps } | TrafficPattern::Poisson { rate_gbps, .. } => {
                assert!(rate_gbps > 0.0, "rate must be positive");
                if let TrafficPattern::Poisson { seed, .. } = pattern {
                    seed
                } else {
                    0
                }
            }
            TrafficPattern::Bursty(_) => 0,
        };
        TrafficGen {
            flow,
            pattern,
            until,
            next_id: 0,
            burst_pos: 0,
            cursor: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
        }
    }

    /// The flow specification this generator emits.
    pub fn flow(&self) -> &FlowSpec {
        &self.flow
    }

    fn make(&mut self, at: SimTime) -> Arrival {
        let id = self.next_id;
        self.next_id += 1;
        Arrival {
            at,
            packet: Packet::new(id, self.flow.packet_len, self.flow.tuple, self.flow.dscp),
        }
    }
}

impl Iterator for TrafficGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        match self.pattern {
            TrafficPattern::Steady { rate_gbps } => {
                let at = self.cursor;
                if at >= self.until {
                    return None;
                }
                self.cursor = at + wire_time(u64::from(self.flow.packet_len), rate_gbps);
                Some(self.make(at))
            }
            TrafficPattern::Poisson { rate_gbps, .. } => {
                let at = self.cursor;
                if at >= self.until {
                    return None;
                }
                // Exponential interarrival with the packet's mean service
                // slot as the mean.
                let mean = wire_time(u64::from(self.flow.packet_len), rate_gbps);
                let u = self.rng.unit_f64().max(f64::MIN_POSITIVE);
                let gap_ps = (-u.ln() * mean.as_ps() as f64).round().max(1.0) as u64;
                self.cursor = at + Duration::from_ps(gap_ps);
                Some(self.make(at))
            }
            TrafficPattern::Bursty(spec) => {
                let at = self.cursor + spec.intra_gap * u64::from(self.burst_pos);
                if at >= self.until {
                    return None;
                }
                let arrival = self.make(at);
                self.burst_pos += 1;
                if self.burst_pos == spec.packets_per_burst {
                    self.burst_pos = 0;
                    self.cursor += spec.period;
                }
                Some(arrival)
            }
        }
    }
}

/// A deterministic multi-flow generator: one aggregate arrival pattern
/// dealt round-robin across a set of flows.
///
/// The timing of the merged stream is *exactly* that of a single
/// [`TrafficGen`] driven by `pattern` (so a tenant's aggregate offered
/// load is independent of its flow count); only the five-tuple and DSCP
/// rotate per packet. This is how a multi-tenant scenario spreads one
/// tenant's load across many queues: each flow is pinned to a queue via
/// the flow director (or hashed there by RSS), so consecutive packets
/// fan out over the tenant's cores.
///
/// Packet ids stay monotonic across the merged stream.
///
/// # Examples
///
/// ```
/// use idio_engine::time::SimTime;
/// use idio_net::gen::{FlowSpec, MultiFlowGen, TrafficPattern};
///
/// let flows: Vec<_> = (0..3).map(|i| FlowSpec::udp_to_port(6000 + i, 1514)).collect();
/// let mut g = MultiFlowGen::new(flows, TrafficPattern::Steady { rate_gbps: 10.0 }, SimTime::from_us(50));
/// let a = g.next().unwrap();
/// let b = g.next().unwrap();
/// assert_ne!(a.packet.flow, b.packet.flow);
/// assert_eq!(b.packet.id, a.packet.id + 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiFlowGen {
    inner: TrafficGen,
    flows: Vec<FlowSpec>,
    next_flow: usize,
}

impl MultiFlowGen {
    /// Creates a generator dealing `pattern` arrivals over `flows` until
    /// `until` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty or the flows disagree on frame length
    /// (the aggregate pattern's wire timing is per-frame).
    pub fn new(flows: Vec<FlowSpec>, pattern: TrafficPattern, until: SimTime) -> Self {
        assert!(!flows.is_empty(), "a tenant needs at least one flow");
        assert!(
            flows.iter().all(|f| f.packet_len == flows[0].packet_len),
            "flows of one generator must share a frame length"
        );
        MultiFlowGen {
            inner: TrafficGen::new(flows[0], pattern, until),
            flows,
            next_flow: 0,
        }
    }

    /// The flow specifications this generator rotates through.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }
}

impl Iterator for MultiFlowGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let a = self.inner.next()?;
        let spec = self.flows[self.next_flow];
        self.next_flow = (self.next_flow + 1) % self.flows.len();
        Some(Arrival {
            at: a.at,
            packet: Packet::new(a.packet.id, spec.packet_len, spec.tuple, spec.dscp),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowSpec {
        FlowSpec::udp_to_port(5000, 1514)
    }

    #[test]
    fn steady_rate_interarrival() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Steady { rate_gbps: 100.0 },
            SimTime::from_us(10),
        );
        let a: Vec<_> = g.collect();
        // 1514 B at 100 Gbps = 121.12 ns per frame; 10 us / 121.12 ns = 82+.
        assert_eq!(a.len(), 83);
        let gap = a[1].at - a[0].at;
        assert_eq!(gap, wire_time(1514, 100.0));
    }

    #[test]
    fn burst_spec_matches_paper_lengths() {
        // Sec. VI: ring 1024, 1514 B packets — burst lengths 1.155 / 0.231 /
        // 0.115 ms (packets_per_burst ends 1 gap earlier; compare the full
        // span including the last frame's slot).
        for (rate, expect_ms) in [(10.0, 1.24), (25.0, 0.496), (100.0, 0.124)] {
            let s = BurstSpec::for_ring(1024, 1514, rate, Duration::from_ms(10));
            let span = (s.intra_gap * 1024).as_secs_f64() * 1e3;
            assert!(
                (span - expect_ms).abs() / expect_ms < 0.08,
                "rate {rate}: span {span} vs {expect_ms}"
            );
        }
    }

    #[test]
    fn bursty_generator_emits_exact_burst_sizes() {
        let spec = BurstSpec::for_ring(8, 1514, 100.0, Duration::from_us(100));
        let g = TrafficGen::new(flow(), TrafficPattern::Bursty(spec), SimTime::from_us(250));
        let a: Vec<_> = g.collect();
        // Bursts start at 0, 100 us, 200 us: 3 bursts x 8 packets.
        assert_eq!(a.len(), 24);
        // First burst confined to its burst length.
        assert!(a[7].at - a[0].at == spec.burst_length());
        // Gap between bursts is the period minus the intra-burst span.
        assert_eq!(a[8].at, SimTime::from_us(100));
        assert_eq!(a[16].at, SimTime::from_us(200));
    }

    #[test]
    fn ids_are_monotonic() {
        let spec = BurstSpec::for_ring(4, 1514, 25.0, Duration::from_us(50));
        let g = TrafficGen::new(flow(), TrafficPattern::Bursty(spec), SimTime::from_us(120));
        let ids: Vec<_> = g.map(|a| a.packet.id).collect();
        assert_eq!(ids, (0..ids.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_exclusive() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::ZERO,
        );
        assert_eq!(g.count(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_burst_rejected() {
        let _ = BurstSpec::for_ring(1024, 1514, 10.0, Duration::from_us(100));
    }

    #[test]
    fn poisson_mean_rate_approximates_target() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Poisson {
                rate_gbps: 10.0,
                seed: 42,
            },
            SimTime::from_ms(10),
        );
        let n = g.count() as f64;
        // 10 Gbps of 1514 B frames over 10 ms = ~8256 packets expected.
        let expect = 10e9 / (1514.0 * 8.0) * 10e-3;
        assert!((n - expect).abs() / expect < 0.05, "{n} vs {expect}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let collect = |seed| {
            TrafficGen::new(
                flow(),
                TrafficPattern::Poisson {
                    rate_gbps: 25.0,
                    seed,
                },
                SimTime::from_us(200),
            )
            .map(|a| a.at)
            .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn poisson_arrivals_strictly_ordered() {
        let g = TrafficGen::new(
            flow(),
            TrafficPattern::Poisson {
                rate_gbps: 100.0,
                seed: 3,
            },
            SimTime::from_us(100),
        );
        let times: Vec<_> = g.map(|a| a.at).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn multi_flow_keeps_aggregate_timing_and_rotates_flows() {
        let until = SimTime::from_us(60);
        let pattern = TrafficPattern::Steady { rate_gbps: 25.0 };
        let single: Vec<_> = TrafficGen::new(flow(), pattern, until).collect();
        let flows: Vec<_> = (0..3)
            .map(|i| FlowSpec::udp_to_port(6000 + i, 1514).with_dscp(Dscp::CLASS1_DEFAULT))
            .collect();
        let multi: Vec<_> = MultiFlowGen::new(flows.clone(), pattern, until).collect();
        assert_eq!(multi.len(), single.len(), "same aggregate offered load");
        for (i, (s, m)) in single.iter().zip(&multi).enumerate() {
            assert_eq!(m.at, s.at, "arrival {i} keeps the aggregate schedule");
            assert_eq!(m.packet.id, i as u64, "ids monotonic across flows");
            assert_eq!(m.packet.flow, flows[i % 3].tuple, "round-robin dealing");
            assert_eq!(m.packet.dscp, Dscp::CLASS1_DEFAULT);
        }
    }

    #[test]
    #[should_panic(expected = "share a frame length")]
    fn multi_flow_rejects_mixed_frame_lengths() {
        let flows = vec![
            FlowSpec::udp_to_port(6000, 1514),
            FlowSpec::udp_to_port(6001, 256),
        ];
        let _ = MultiFlowGen::new(
            flows,
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::from_us(10),
        );
    }

    #[test]
    fn dscp_marking_propagates() {
        let f = flow().with_dscp(Dscp::CLASS1_DEFAULT);
        let mut g = TrafficGen::new(
            f,
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::from_us(10),
        );
        assert_eq!(g.next().unwrap().packet.dscp, Dscp::CLASS1_DEFAULT);
    }
}
