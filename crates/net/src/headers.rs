//! Wire-format protocol headers: Ethernet II, IPv4, UDP.
//!
//! The IDIO classifier inspects real header bytes on the NIC — the DSCP
//! bits of the IPv4 differentiated-services byte and the five-tuple. This
//! module provides byte-exact serialisation and parsing for the header
//! stack the evaluation traffic uses, so the classifier path can be
//! exercised against actual wire bytes (and so traces written by the
//! tooling are real packets). All headers together fit in the first cache
//! line (14 + 20 + 8 = 42 bytes), which is the structural assumption
//! behind "the first DMA transaction carries the header" (Sec. V-A).

use std::error::Error;
use std::fmt;

use crate::packet::{Dscp, FiveTuple, Packet};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// Bytes of an Ethernet II header.
pub const ETH_HEADER_BYTES: usize = 14;
/// Bytes of a minimal IPv4 header (no options).
pub const IPV4_HEADER_BYTES: usize = 20;
/// Bytes of a UDP header.
pub const UDP_HEADER_BYTES: usize = 8;
/// Total bytes of the Ethernet+IPv4+UDP stack.
pub const STACK_HEADER_BYTES: usize = ETH_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES;

/// Error parsing a header from wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version/type field did not match expectations.
    Unsupported(&'static str),
    /// The IPv4 header checksum did not verify.
    BadChecksum,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { need, have } => {
                write!(f, "truncated header: need {need} bytes, have {have}")
            }
            ParseError::Unsupported(what) => write!(f, "unsupported {what}"),
            ParseError::BadChecksum => f.write_str("IPv4 header checksum mismatch"),
        }
    }
}

impl Error for ParseError {}

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType (0x0800 for IPv4).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Serialises into `out[..14]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than 14 bytes.
    pub fn write(&self, out: &mut [u8]) {
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on a short buffer.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < ETH_HEADER_BYTES {
            return Err(ParseError::Truncated {
                need: ETH_HEADER_BYTES,
                have: buf.len(),
            });
        }
        let mut dst = [0; 6];
        let mut src = [0; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        })
    }
}

/// A minimal (option-less) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated-services code point (the classifier's class input).
    pub dscp: Dscp,
    /// ECN bits.
    pub ecn: u8,
    /// Total length (header + payload) in bytes.
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (17 = UDP).
    pub protocol: u8,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
}

impl Ipv4Header {
    /// Serialises into `out[..20]`, computing the header checksum.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than 20 bytes.
    pub fn write(&self, out: &mut [u8]) {
        out[0] = 0x45; // version 4, IHL 5
        out[1] = (self.dscp.get() << 2) | (self.ecn & 0x3);
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..8].copy_from_slice(&[0, 0, 0, 0]); // id, flags, frag
        out[8] = self.ttl;
        out[9] = self.protocol;
        out[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
        out[12..16].copy_from_slice(&self.src.to_be_bytes());
        out[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = ipv4_checksum(&out[..IPV4_HEADER_BYTES]);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Parses and checksum-verifies from wire bytes.
    ///
    /// # Errors
    ///
    /// [`ParseError::Truncated`] on a short buffer,
    /// [`ParseError::Unsupported`] for non-IPv4/optioned headers, and
    /// [`ParseError::BadChecksum`] when verification fails.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < IPV4_HEADER_BYTES {
            return Err(ParseError::Truncated {
                need: IPV4_HEADER_BYTES,
                have: buf.len(),
            });
        }
        if buf[0] != 0x45 {
            return Err(ParseError::Unsupported("IP version/IHL"));
        }
        if ipv4_checksum(&buf[..IPV4_HEADER_BYTES]) != 0 {
            return Err(ParseError::BadChecksum);
        }
        Ok(Ipv4Header {
            dscp: Dscp::new(buf[1] >> 2).expect("6 bits"),
            ecn: buf[1] & 0x3,
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            ttl: buf[8],
            protocol: buf[9],
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        })
    }
}

/// The internet checksum over a header slice. Over a well-formed header
/// (checksum field populated) the result is zero.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in header.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += u32::from(word);
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of UDP header + payload.
    pub len: u16,
}

impl UdpHeader {
    /// Serialises into `out[..8]` (checksum 0 = unused, as permitted for
    /// IPv4).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than 8 bytes.
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.len.to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]);
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on a short buffer.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        if buf.len() < UDP_HEADER_BYTES {
            return Err(ParseError::Truncated {
                need: UDP_HEADER_BYTES,
                have: buf.len(),
            });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            len: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }
}

/// Builds the 42-byte Ethernet+IPv4+UDP header stack for a [`Packet`].
///
/// # Examples
///
/// ```
/// use idio_net::headers::{parse_wire_header, wire_header};
/// use idio_net::packet::{Dscp, FiveTuple, Packet};
///
/// let pkt = Packet::new(0, 1514, FiveTuple::udp(1, 2, 30, 40), Dscp::CLASS1_DEFAULT);
/// let bytes = wire_header(&pkt);
/// let (flow, dscp) = parse_wire_header(&bytes).unwrap();
/// assert_eq!(flow, pkt.flow);
/// assert_eq!(dscp, pkt.dscp);
/// ```
pub fn wire_header(packet: &Packet) -> [u8; STACK_HEADER_BYTES] {
    let mut out = [0u8; STACK_HEADER_BYTES];
    let eth = EthernetHeader {
        dst: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
        src: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
        ethertype: ETHERTYPE_IPV4,
    };
    eth.write(&mut out[..ETH_HEADER_BYTES]);
    let ip_total = packet.len as usize - ETH_HEADER_BYTES;
    let ip = Ipv4Header {
        dscp: packet.dscp,
        ecn: 0,
        total_len: ip_total as u16,
        ttl: 64,
        protocol: packet.flow.proto,
        src: packet.flow.src_ip,
        dst: packet.flow.dst_ip,
    };
    ip.write(&mut out[ETH_HEADER_BYTES..ETH_HEADER_BYTES + IPV4_HEADER_BYTES]);
    let udp = UdpHeader {
        src_port: packet.flow.src_port,
        dst_port: packet.flow.dst_port,
        len: (ip_total - IPV4_HEADER_BYTES) as u16,
    };
    udp.write(&mut out[ETH_HEADER_BYTES + IPV4_HEADER_BYTES..]);
    out
}

/// Parses a header stack back into the five-tuple and DSCP the classifier
/// needs (exactly what NIC parsing hardware extracts).
///
/// # Errors
///
/// Propagates any header [`ParseError`]; non-IPv4 or non-UDP frames are
/// [`ParseError::Unsupported`].
pub fn parse_wire_header(buf: &[u8]) -> Result<(FiveTuple, Dscp), ParseError> {
    let eth = EthernetHeader::parse(buf)?;
    if eth.ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::Unsupported("ethertype"));
    }
    let ip = Ipv4Header::parse(&buf[ETH_HEADER_BYTES..])?;
    if ip.protocol != PROTO_UDP {
        return Err(ParseError::Unsupported("IP protocol"));
    }
    let udp = UdpHeader::parse(&buf[ETH_HEADER_BYTES + IPV4_HEADER_BYTES..])?;
    Ok((
        FiveTuple {
            src_ip: ip.src,
            dst_ip: ip.dst,
            src_port: udp.src_port,
            dst_port: udp.dst_port,
            proto: ip.protocol,
        },
        ip.dscp,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(dscp: u8) -> Packet {
        Packet::new(
            7,
            1514,
            FiveTuple::udp(0x0a000001, 0x0a000002, 1234, 5678),
            Dscp::new(dscp).unwrap(),
        )
    }

    #[test]
    fn stack_fits_one_cache_line() {
        // Sec. V-A assumption: all headers fit the first cache line.
        const { assert!(STACK_HEADER_BYTES <= 64) };
        assert_eq!(STACK_HEADER_BYTES, 42);
    }

    #[test]
    fn roundtrip_preserves_flow_and_dscp() {
        for dscp in [0u8, 8, 46, 63] {
            let p = pkt(dscp);
            let bytes = wire_header(&p);
            let (flow, d) = parse_wire_header(&bytes).unwrap();
            assert_eq!(flow, p.flow);
            assert_eq!(d.get(), dscp);
        }
    }

    #[test]
    fn ipv4_checksum_verifies_and_detects_corruption() {
        let p = pkt(8);
        let mut bytes = wire_header(&p);
        assert!(Ipv4Header::parse(&bytes[ETH_HEADER_BYTES..]).is_ok());
        // Flip one bit in the TTL: checksum must catch it.
        bytes[ETH_HEADER_BYTES + 8] ^= 0x01;
        assert_eq!(
            Ipv4Header::parse(&bytes[ETH_HEADER_BYTES..]),
            Err(ParseError::BadChecksum)
        );
    }

    #[test]
    fn lengths_are_consistent() {
        let p = pkt(0);
        let bytes = wire_header(&p);
        let ip = Ipv4Header::parse(&bytes[ETH_HEADER_BYTES..]).unwrap();
        assert_eq!(ip.total_len as usize, 1514 - ETH_HEADER_BYTES);
        let udp = UdpHeader::parse(&bytes[ETH_HEADER_BYTES + IPV4_HEADER_BYTES..]).unwrap();
        assert_eq!(
            udp.len as usize,
            1514 - ETH_HEADER_BYTES - IPV4_HEADER_BYTES
        );
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        assert!(matches!(
            EthernetHeader::parse(&[0u8; 5]),
            Err(ParseError::Truncated { need: 14, have: 5 })
        ));
        assert!(matches!(
            Ipv4Header::parse(&[0x45; 10]),
            Err(ParseError::Truncated { .. })
        ));
        assert!(matches!(
            UdpHeader::parse(&[0; 3]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn non_ipv4_rejected() {
        let p = pkt(0);
        let mut bytes = wire_header(&p);
        bytes[12] = 0x86; // ethertype -> not IPv4
        assert_eq!(
            parse_wire_header(&bytes),
            Err(ParseError::Unsupported("ethertype"))
        );
        let mut bytes = wire_header(&p);
        bytes[ETH_HEADER_BYTES] = 0x46; // IHL 6: options unsupported
        assert_eq!(
            Ipv4Header::parse(&bytes[ETH_HEADER_BYTES..]).unwrap_err(),
            ParseError::Unsupported("IP version/IHL")
        );
    }

    #[test]
    fn mac_display() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(format!("{m}"), "de:ad:be:ef:00:01");
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ParseError::BadChecksum.to_string().contains("checksum"));
        assert!(ParseError::Truncated { need: 14, have: 2 }
            .to_string()
            .contains("14"));
    }
}
