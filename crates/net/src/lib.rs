//! # idio-net
//!
//! Packet and traffic-generation substrate of the IDIO reproduction:
//! structural packets (length + the header fields the NIC classifier
//! inspects), five-tuple flows with a stable hardware-style hash, and the
//! steady / bursty traffic generators defined in Sec. VI of the paper.
//!
//! The paper's evaluation drives the simulated server with a hardware load
//! generator model; [`gen::TrafficGen`] plays that role here.
//!
//! # Examples
//!
//! ```
//! use idio_engine::time::{Duration, SimTime};
//! use idio_net::{BurstSpec, FlowSpec, TrafficGen, TrafficPattern};
//!
//! // The paper's Fig. 9 load: 1024-packet bursts of MTU frames at
//! // 100 Gbps, every 10 ms.
//! let spec = BurstSpec::for_ring(1024, 1514, 100.0, Duration::from_ms(10));
//! let gen = TrafficGen::new(
//!     FlowSpec::udp_to_port(5000, 1514),
//!     TrafficPattern::Bursty(spec),
//!     SimTime::from_ms(10),
//! );
//! assert_eq!(gen.count(), 1024); // exactly one ring-size burst per period
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod headers;
pub mod packet;
pub mod trace;

pub use gen::{
    Arrival, BurstSpec, FlowSet, FlowSpec, MultiFlowGen, TrafficGen, TrafficPattern,
    MAX_FLOW_SET_FLOWS, MAX_FLOW_SET_TAG,
};
pub use headers::{
    parse_wire_header, wire_header, EthernetHeader, Ipv4Header, MacAddr, ParseError, UdpHeader,
};
pub use packet::{Dscp, FiveTuple, Packet, HEADER_BYTES, MIN_FRAME_BYTES, MTU_FRAME_BYTES};
pub use trace::{read_trace, write_trace, TraceError};
