//! Packets, five-tuples, and the DSCP-based application-class marking.
//!
//! Packets are modelled structurally: a wire length plus the header fields
//! the NIC-side IDIO classifier inspects (the IPv4 five-tuple and the DSCP
//! field of the differentiated-services byte). Payload bytes themselves are
//! never materialised — the cache model works on addresses, not contents.

use std::fmt;

/// Ethernet maximum transmission unit frame size used throughout the paper.
pub const MTU_FRAME_BYTES: u16 = 1514;
/// Minimum Ethernet frame size.
pub const MIN_FRAME_BYTES: u16 = 64;
/// Bytes of protocol headers at the start of every frame. All well-known
/// protocol stacks fit their headers in the first cache line (Sec. V-A).
pub const HEADER_BYTES: u16 = 64;

/// A differentiated-services code point (6 bits, RFC 2474).
///
/// The sending application marks its class here; IDIO's classifier maps a
/// configurable set of DSCP values to *application class 1* (long use
/// distance — payload steered directly to DRAM).
///
/// # Examples
///
/// ```
/// use idio_net::packet::Dscp;
///
/// let d = Dscp::new(46).unwrap(); // EF
/// assert_eq!(d.get(), 46);
/// assert!(Dscp::new(64).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dscp(u8);

impl Dscp {
    /// Best-effort (default) code point.
    pub const BEST_EFFORT: Dscp = Dscp(0);
    /// The code point this reproduction uses to mark application class 1
    /// (long use distance), by convention CS1.
    pub const CLASS1_DEFAULT: Dscp = Dscp(8);

    /// Creates a DSCP; `None` if the value does not fit in 6 bits.
    pub fn new(v: u8) -> Option<Self> {
        (v < 64).then_some(Dscp(v))
    }

    /// The raw 6-bit value.
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Dscp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dscp{}", self.0)
    }
}

/// An IPv4/transport five-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 TCP, 17 UDP).
    pub proto: u8,
}

impl FiveTuple {
    /// A UDP flow between two synthetic endpoints, convenient for tests and
    /// workload construction.
    pub fn udp(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: 17,
        }
    }

    /// A deterministic 32-bit hash of the tuple, as computed by NIC
    /// receive-side-scaling / Flow Director hardware. (FNV-1a; the exact
    /// function is irrelevant as long as it is stable and well-spread.)
    pub fn hash32(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        let mut mix = |b: u8| {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        };
        for b in self.src_ip.to_be_bytes() {
            mix(b);
        }
        for b in self.dst_ip.to_be_bytes() {
            mix(b);
        }
        for b in self.src_port.to_be_bytes() {
            mix(b);
        }
        for b in self.dst_port.to_be_bytes() {
            mix(b);
        }
        mix(self.proto);
        h
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{}/{}",
            self.src_ip >> 24 & 0xff,
            self.src_ip >> 16 & 0xff,
            self.src_ip >> 8 & 0xff,
            self.src_ip & 0xff,
            self.src_port,
            self.dst_ip >> 24 & 0xff,
            self.dst_ip >> 16 & 0xff,
            self.dst_ip >> 8 & 0xff,
            self.dst_ip & 0xff,
            self.dst_port,
            self.proto,
        )
    }
}

/// A network packet as seen by the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Monotonic id within one traffic source (diagnostics / latency
    /// matching).
    pub id: u64,
    /// Total frame length on the wire, in bytes.
    pub len: u16,
    /// The flow this packet belongs to.
    pub flow: FiveTuple,
    /// The differentiated-services code point carried in the IP header.
    pub dscp: Dscp,
}

impl Packet {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `len` is below the minimum frame size.
    pub fn new(id: u64, len: u16, flow: FiveTuple, dscp: Dscp) -> Self {
        assert!(
            len >= MIN_FRAME_BYTES,
            "frame of {len} bytes below Ethernet minimum"
        );
        Packet {
            id,
            len,
            flow,
            dscp,
        }
    }

    /// Payload bytes (frame length minus the one-line header).
    pub fn payload_len(&self) -> u16 {
        self.len.saturating_sub(HEADER_BYTES)
    }

    /// Number of 64-byte lines the frame occupies in a DMA buffer.
    pub fn lines(&self) -> u32 {
        u32::from(self.len).div_ceil(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dscp_bounds() {
        assert_eq!(Dscp::new(0), Some(Dscp::BEST_EFFORT));
        assert_eq!(Dscp::new(63).unwrap().get(), 63);
        assert!(Dscp::new(64).is_none());
    }

    #[test]
    fn tuple_hash_is_stable_and_spread() {
        let a = FiveTuple::udp(0x0a000001, 0x0a000002, 1000, 5000);
        let b = FiveTuple::udp(0x0a000001, 0x0a000002, 1001, 5000);
        assert_eq!(a.hash32(), a.hash32());
        assert_ne!(a.hash32(), b.hash32());
    }

    #[test]
    fn packet_line_counts() {
        let f = FiveTuple::default();
        assert_eq!(Packet::new(0, 64, f, Dscp::BEST_EFFORT).lines(), 1);
        assert_eq!(Packet::new(0, 65, f, Dscp::BEST_EFFORT).lines(), 2);
        assert_eq!(Packet::new(0, 1514, f, Dscp::BEST_EFFORT).lines(), 24);
        assert_eq!(Packet::new(0, 1024, f, Dscp::BEST_EFFORT).lines(), 16);
    }

    #[test]
    fn payload_excludes_header_line() {
        let p = Packet::new(1, 1514, FiveTuple::default(), Dscp::BEST_EFFORT);
        assert_eq!(p.payload_len(), 1450);
        let tiny = Packet::new(2, 64, FiveTuple::default(), Dscp::BEST_EFFORT);
        assert_eq!(tiny.payload_len(), 0);
    }

    #[test]
    #[should_panic(expected = "below Ethernet minimum")]
    fn undersized_frame_rejected() {
        let _ = Packet::new(0, 32, FiveTuple::default(), Dscp::BEST_EFFORT);
    }

    #[test]
    fn display_formats() {
        let t = FiveTuple::udp(0x0a000001, 0x0b000002, 7, 9);
        let s = format!("{t}");
        assert!(s.contains("10.0.0.1:7"));
        assert!(s.contains("11.0.0.2:9"));
        assert_eq!(format!("{}", Dscp::CLASS1_DEFAULT), "dscp8");
    }
}
