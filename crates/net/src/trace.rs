//! Packet-trace reading and writing.
//!
//! A simple line-oriented trace format lets experiments replay captured or
//! synthetic arrival sequences instead of the analytic generators:
//!
//! ```text
//! # time_ns len src_ip dst_ip src_port dst_port proto dscp
//! 0 1514 167772161 167772162 41000 5000 17 0
//! 1211 1514 167772161 167772162 41000 5000 17 0
//! ```
//!
//! Lines starting with `#` are comments. Times must be non-decreasing.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use idio_engine::time::SimTime;

use crate::gen::Arrival;
use crate::packet::{Dscp, FiveTuple, Packet};

/// Error reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number, description).
    Malformed(usize, String),
    /// Timestamps went backwards.
    OutOfOrder(usize),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Malformed(line, what) => {
                write!(f, "malformed trace line {line}: {what}")
            }
            TraceError::OutOfOrder(line) => {
                write!(f, "trace line {line}: timestamps must be non-decreasing")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Reads a trace into arrivals.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failure, malformed lines, or
/// out-of-order timestamps.
///
/// # Examples
///
/// ```
/// use idio_net::trace::read_trace;
///
/// let text = "# demo\n0 1514 1 2 30 40 17 0\n1211 1514 1 2 30 40 17 8\n";
/// let arrivals = read_trace(text.as_bytes())?;
/// assert_eq!(arrivals.len(), 2);
/// assert_eq!(arrivals[1].at.as_ns(), 1211);
/// assert_eq!(arrivals[1].packet.dscp.get(), 8);
/// # Ok::<(), idio_net::trace::TraceError>(())
/// ```
pub fn read_trace<R: BufRead>(reader: R) -> Result<Vec<Arrival>, TraceError> {
    let mut out = Vec::new();
    let mut last = 0u64;
    let mut id = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 8 {
            return Err(TraceError::Malformed(
                lineno,
                format!("expected 8 fields, got {}", fields.len()),
            ));
        }
        let parse = |idx: usize, name: &str| -> Result<u64, TraceError> {
            fields[idx]
                .parse::<u64>()
                .map_err(|e| TraceError::Malformed(lineno, format!("{name}: {e}")))
        };
        let t_ns = parse(0, "time_ns")?;
        if t_ns < last {
            return Err(TraceError::OutOfOrder(lineno));
        }
        last = t_ns;
        let len = parse(1, "len")? as u16;
        let flow = FiveTuple {
            src_ip: parse(2, "src_ip")? as u32,
            dst_ip: parse(3, "dst_ip")? as u32,
            src_port: parse(4, "src_port")? as u16,
            dst_port: parse(5, "dst_port")? as u16,
            proto: parse(6, "proto")? as u8,
        };
        let dscp = Dscp::new(parse(7, "dscp")? as u8)
            .ok_or_else(|| TraceError::Malformed(lineno, "dscp out of range".into()))?;
        out.push(Arrival {
            at: SimTime::from_ns(t_ns),
            packet: Packet::new(id, len, flow, dscp),
        });
        id += 1;
    }
    Ok(out)
}

/// Writes arrivals in the trace format (with a header comment).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut writer: W, arrivals: &[Arrival]) -> std::io::Result<()> {
    writeln!(
        writer,
        "# time_ns len src_ip dst_ip src_port dst_port proto dscp"
    )?;
    for a in arrivals {
        let p = &a.packet;
        writeln!(
            writer,
            "{} {} {} {} {} {} {} {}",
            a.at.as_ns(),
            p.len,
            p.flow.src_ip,
            p.flow.dst_ip,
            p.flow.src_port,
            p.flow.dst_port,
            p.flow.proto,
            p.dscp.get()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{FlowSpec, TrafficGen, TrafficPattern};

    #[test]
    fn write_read_roundtrip() {
        let gen = TrafficGen::new(
            FlowSpec::udp_to_port(5000, 1514),
            TrafficPattern::Steady { rate_gbps: 10.0 },
            SimTime::from_us(20),
        );
        let original: Vec<Arrival> = gen.collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).unwrap();
        let replayed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(replayed.len(), original.len());
        for (a, b) in original.iter().zip(&replayed) {
            // Nanosecond-quantised times.
            assert_eq!(a.at.as_ns(), b.at.as_ns());
            assert_eq!(a.packet.len, b.packet.len);
            assert_eq!(a.packet.flow, b.packet.flow);
            assert_eq!(a.packet.dscp, b.packet.dscp);
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n  \n0 64 1 2 3 4 17 0\n";
        let a = read_trace(text.as_bytes()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].packet.len, 64);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "0 64 1 2 3 4 17 0\nnot a line\n";
        match read_trace(text.as_bytes()) {
            Err(TraceError::Malformed(2, _)) => {}
            other => panic!("expected malformed at line 2, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let text = "100 64 1 2 3 4 17 0\n50 64 1 2 3 4 17 0\n";
        match read_trace(text.as_bytes()) {
            Err(TraceError::OutOfOrder(2)) => {}
            other => panic!("expected out-of-order at line 2, got {other:?}"),
        }
    }

    #[test]
    fn bad_dscp_rejected() {
        let text = "0 64 1 2 3 4 17 64\n";
        assert!(matches!(
            read_trace(text.as_bytes()),
            Err(TraceError::Malformed(1, _))
        ));
    }
}
