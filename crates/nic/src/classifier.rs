//! The NIC-side IDIO classifier (Sec. V-A).
//!
//! For every inbound packet the classifier determines:
//!
//! 1. the **application class** from the DSCP field of the IP header
//!    (a configurable set of code points maps to class 1);
//! 2. which DMA transaction carries the packet **header** (the first line —
//!    all common protocol headers fit in 64 bytes);
//! 3. the **destination core** (resolved by Flow Director / ADQ, passed in
//!    by the NIC);
//! 4. the start of an **RX burst** per destination core: a 32-bit byte
//!    counter per core, reset every 1 µs, that signals a burst when it
//!    exceeds `rxBurstTHR` within the window.

use idio_cache::addr::CoreId;
use idio_engine::time::{Duration, SimTime};
use idio_net::packet::{Dscp, Packet};

use crate::tlp::AppClass;

/// Classifier configuration.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    /// DSCP values treated as application class 1.
    pub class1_dscps: Vec<Dscp>,
    /// Burst counter window (1 µs in the paper).
    pub burst_window: Duration,
    /// Byte threshold per window above which a burst is signalled.
    /// The paper sets `rxBurstTHR` to 10 Gbps, i.e. 1250 bytes per 1 µs.
    pub rx_burst_thr_bytes: u32,
}

impl ClassifierConfig {
    /// The paper's experimental setting: `rxBurstTHR` = 10 Gbps over a 1 µs
    /// window, class 1 marked by [`Dscp::CLASS1_DEFAULT`].
    pub fn paper_default() -> Self {
        ClassifierConfig {
            class1_dscps: vec![Dscp::CLASS1_DEFAULT],
            burst_window: Duration::from_us(1),
            rx_burst_thr_bytes: 1250,
        }
    }

    /// Sets the burst threshold from a line rate in Gbps (bytes within one
    /// window at that rate).
    pub fn with_burst_thr_gbps(mut self, gbps: f64) -> Self {
        let bytes = gbps * 1e9 / 8.0 * self.burst_window.as_secs_f64();
        self.rx_burst_thr_bytes = bytes.round() as u32;
        self
    }
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig::paper_default()
    }
}

/// Classification outcome for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketClass {
    /// Application class derived from the DSCP marking.
    pub app_class: AppClass,
    /// Whether this packet's first DMA transaction should carry the
    /// burst-start flag for its destination core.
    pub burst_started: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct BurstCounter {
    window_idx: u64,
    bytes: u32,
    signalled: bool,
}

/// The classifier state machine.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::CoreId;
/// use idio_engine::time::SimTime;
/// use idio_net::packet::{Dscp, FiveTuple, Packet};
/// use idio_nic::classifier::{ClassifierConfig, IdioClassifier};
/// use idio_nic::tlp::AppClass;
///
/// let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 2);
/// let pkt = Packet::new(0, 1514, FiveTuple::default(), Dscp::BEST_EFFORT);
/// let c = cl.classify(SimTime::ZERO, &pkt, CoreId::new(0));
/// assert_eq!(c.app_class, AppClass::Class0);
/// // One MTU frame already exceeds 1250 B in the window: burst signalled.
/// assert!(c.burst_started);
/// ```
#[derive(Debug, Clone)]
pub struct IdioClassifier {
    cfg: ClassifierConfig,
    class1: [bool; 64],
    counters: Vec<BurstCounter>,
    bursts_signalled: u64,
}

impl IdioClassifier {
    /// Creates a classifier for `num_cores` destination cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the burst window is zero.
    pub fn new(cfg: ClassifierConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(
            cfg.burst_window > Duration::ZERO,
            "burst window must be positive"
        );
        let mut class1 = [false; 64];
        for d in &cfg.class1_dscps {
            class1[d.get() as usize] = true;
        }
        IdioClassifier {
            cfg,
            class1,
            counters: vec![BurstCounter::default(); num_cores],
            bursts_signalled: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }

    /// Total burst-start notifications emitted.
    pub fn bursts_signalled(&self) -> u64 {
        self.bursts_signalled
    }

    /// Classifies one packet arriving at `at` destined for `dest_core`.
    ///
    /// # Panics
    ///
    /// Panics if `dest_core` is out of range.
    pub fn classify(&mut self, at: SimTime, packet: &Packet, dest_core: CoreId) -> PacketClass {
        let app_class = if self.class1[packet.dscp.get() as usize] {
            AppClass::Class1
        } else {
            AppClass::Class0
        };

        let ctr = &mut self.counters[dest_core.index()];
        let window_idx = at.as_ps() / self.cfg.burst_window.as_ps();
        if window_idx != ctr.window_idx {
            // The 1 us window rolled over: reset the 32-bit counter. The
            // burst signal re-arms only after a quiet window (one that
            // stayed below the threshold), so a sustained multi-window
            // burst signals its *arrival* once, not once per window.
            let prev_over = ctr.bytes > self.cfg.rx_burst_thr_bytes;
            let contiguous = window_idx == ctr.window_idx + 1;
            ctr.window_idx = window_idx;
            ctr.bytes = 0;
            if !(prev_over && contiguous) {
                ctr.signalled = false;
            }
        }
        ctr.bytes = ctr.bytes.saturating_add(u32::from(packet.len));

        let burst_started = if !ctr.signalled && ctr.bytes > self.cfg.rx_burst_thr_bytes {
            ctr.signalled = true;
            self.bursts_signalled += 1;
            true
        } else {
            false
        };

        PacketClass {
            app_class,
            burst_started,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_net::packet::FiveTuple;

    fn pkt(len: u16, dscp: Dscp) -> Packet {
        Packet::new(0, len, FiveTuple::default(), dscp)
    }

    const C0: CoreId = CoreId::new(0);
    const C1: CoreId = CoreId::new(1);

    #[test]
    fn dscp_mapping_to_class1() {
        let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 1);
        let c = cl.classify(SimTime::ZERO, &pkt(200, Dscp::CLASS1_DEFAULT), C0);
        assert_eq!(c.app_class, AppClass::Class1);
        let c = cl.classify(SimTime::ZERO, &pkt(200, Dscp::BEST_EFFORT), C0);
        assert_eq!(c.app_class, AppClass::Class0);
    }

    #[test]
    fn burst_signalled_once_per_sustained_burst() {
        let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 1);
        // 100 Gbps: an MTU frame every ~121 ns, 8 frames in the window.
        let mut signals = 0;
        for i in 0..8 {
            let t = SimTime::from_ps(i * 121_120);
            if cl
                .classify(t, &pkt(1514, Dscp::BEST_EFFORT), C0)
                .burst_started
            {
                signals += 1;
            }
        }
        assert_eq!(signals, 1, "one signal per threshold crossing");
        assert_eq!(cl.bursts_signalled(), 1);
    }

    #[test]
    fn slow_traffic_never_signals() {
        let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 1);
        // 1 Gbps of small frames: 125 bytes per window.
        for i in 0..100 {
            let t = SimTime::from_us(i);
            let c = cl.classify(t, &pkt(125, Dscp::BEST_EFFORT), C0);
            assert!(!c.burst_started);
        }
    }

    #[test]
    fn counters_are_per_core() {
        let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 2);
        // Saturate core 0's counter; core 1 stays quiet.
        let c = cl.classify(SimTime::ZERO, &pkt(1514, Dscp::BEST_EFFORT), C0);
        assert!(c.burst_started);
        let c = cl.classify(SimTime::ZERO, &pkt(125, Dscp::BEST_EFFORT), C1);
        assert!(!c.burst_started);
    }

    #[test]
    fn sustained_burst_signals_only_at_arrival() {
        let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 1);
        // 100 Gbps sustained for 5 us: ~8 frames per 1 us window.
        let mut signals = 0;
        for i in 0..40u64 {
            let t = SimTime::from_ps(i * 121_120);
            if cl
                .classify(t, &pkt(1514, Dscp::BEST_EFFORT), C0)
                .burst_started
            {
                signals += 1;
            }
        }
        assert_eq!(signals, 1, "a multi-window burst signals once");
    }

    #[test]
    fn new_burst_after_quiet_window_resignals() {
        let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 1);
        assert!(
            cl.classify(SimTime::ZERO, &pkt(1514, Dscp::BEST_EFFORT), C0)
                .burst_started
        );
        // 10 ms later (a new burst period): signals again.
        assert!(
            cl.classify(SimTime::from_ms(10), &pkt(1514, Dscp::BEST_EFFORT), C0)
                .burst_started
        );
        assert_eq!(cl.bursts_signalled(), 2);
    }

    #[test]
    fn threshold_from_gbps() {
        let cfg = ClassifierConfig::paper_default().with_burst_thr_gbps(20.0);
        assert_eq!(cfg.rx_burst_thr_bytes, 2500);
    }
}
