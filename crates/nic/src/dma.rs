//! PCIe DMA engine pacing.
//!
//! The DMA engine serialises line-granular PCIe transactions onto the link
//! between the NIC and the root complex. It is a bandwidth-limited server:
//! each 64-byte transaction occupies the link for `64 B / pcie_bandwidth`,
//! and requests queue FIFO. Inbound writes (RX) and outbound reads (TX)
//! share the same engine, modelling shared PCIe bandwidth.

use idio_engine::time::{Duration, SimTime};

/// DMA engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Effective PCIe payload bandwidth in bytes/second. Defaults to a
    /// x16 Gen3 link's ~16 GB/s, comfortably above a 100 Gbps port
    /// (12.5 GB/s) so the link itself is not the bottleneck.
    pub bytes_per_sec: f64,
    /// Delay between the completion of a packet's payload DMA and the
    /// descriptor writeback becoming visible to the driver. The paper
    /// measures ~1.9 µs between the first DMA transaction and the start of
    /// the execution phase (Sec. VII).
    pub desc_writeback_delay: Duration,
}

impl DmaConfig {
    /// Service time of one 64-byte transaction on the link.
    pub fn line_time(&self) -> Duration {
        Duration::from_ps((64.0 / self.bytes_per_sec * 1e12).round() as u64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the bandwidth is not positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_sec <= 0.0 || !self.bytes_per_sec.is_finite() {
            return Err("pcie bandwidth must be positive".into());
        }
        Ok(())
    }
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            bytes_per_sec: 16.0e9,
            desc_writeback_delay: Duration::from_us_f64(1.9),
        }
    }
}

/// The schedule of one multi-line DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaSchedule {
    /// Time the first line transaction issues.
    pub first: SimTime,
    /// Gap between consecutive line transactions.
    pub gap: Duration,
    /// Number of line transactions.
    pub lines: u32,
}

impl DmaSchedule {
    /// Issue time of line `i` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is out of range.
    pub fn line_time(&self, i: u32) -> SimTime {
        debug_assert!(i < self.lines);
        self.first + self.gap * u64::from(i)
    }

    /// Completion time of the last line transaction.
    pub fn done(&self) -> SimTime {
        self.first + self.gap * u64::from(self.lines)
    }

    /// Iterates over the issue times of all lines.
    pub fn iter(&self) -> impl Iterator<Item = SimTime> + '_ {
        (0..self.lines).map(|i| self.line_time(i))
    }
}

/// The PCIe DMA pacing engine.
///
/// # Examples
///
/// ```
/// use idio_engine::time::SimTime;
/// use idio_nic::dma::{DmaConfig, DmaEngine};
///
/// let mut dma = DmaEngine::new(DmaConfig::default());
/// // A 1514-byte frame: 24 line transactions, 4 ns each.
/// let s = dma.schedule(SimTime::ZERO, 24);
/// assert_eq!(s.lines, 24);
/// assert_eq!(s.done().as_ns(), 96);
/// ```
#[derive(Debug, Clone)]
pub struct DmaEngine {
    cfg: DmaConfig,
    line_time: Duration,
    next_free: SimTime,
}

impl DmaEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DmaConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DMA config: {e}");
        }
        DmaEngine {
            line_time: cfg.line_time(),
            cfg,
            next_free: SimTime::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.cfg
    }

    /// Reserves link time for a `lines`-line transfer requested at `now`;
    /// returns the per-line schedule.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn schedule(&mut self, now: SimTime, lines: u32) -> DmaSchedule {
        assert!(lines > 0, "empty DMA transfer");
        let first = self.next_free.max(now);
        let sched = DmaSchedule {
            first,
            gap: self.line_time,
            lines,
        };
        self.next_free = sched.done();
        sched
    }

    /// Earliest time a new transfer could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_time_matches_bandwidth() {
        let cfg = DmaConfig::default();
        assert_eq!(cfg.line_time(), Duration::from_ns(4));
    }

    #[test]
    fn transfers_serialise_on_the_link() {
        let mut dma = DmaEngine::new(DmaConfig::default());
        let a = dma.schedule(SimTime::ZERO, 10);
        let b = dma.schedule(SimTime::ZERO, 10);
        assert_eq!(b.first, a.done());
        assert_eq!(dma.next_free(), b.done());
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut dma = DmaEngine::new(DmaConfig::default());
        dma.schedule(SimTime::ZERO, 1);
        let s = dma.schedule(SimTime::from_us(5), 1);
        assert_eq!(s.first, SimTime::from_us(5));
    }

    #[test]
    fn schedule_iter_yields_paced_times() {
        let mut dma = DmaEngine::new(DmaConfig::default());
        let s = dma.schedule(SimTime::ZERO, 3);
        let times: Vec<_> = s.iter().collect();
        assert_eq!(
            times,
            vec![SimTime::ZERO, SimTime::from_ns(4), SimTime::from_ns(8)]
        );
        assert_eq!(s.line_time(2), SimTime::from_ns(8));
    }

    #[test]
    #[should_panic(expected = "empty DMA")]
    fn zero_line_transfer_rejected() {
        DmaEngine::new(DmaConfig::default()).schedule(SimTime::ZERO, 0);
    }
}
