//! Ethernet Flow Director: steering packets to the consuming core's queue.
//!
//! Models the two flavours described in Sec. II-C:
//!
//! * **Externally Programmed (EP)** — software installs perfect-match
//!   filters (five-tuple → queue), used when applications are pinned;
//! * **Application Targeting Routing (ATR)** — the NIC learns the target
//!   queue by populating a hash-indexed *Filter Table* (up to 8 K entries in
//!   modern adapters); lookups hash the packet's five-tuple into the table.
//!
//! Unmatched packets fall back to RSS (hash modulo queue count).
//!
//! Both tables are **bounded**, the way the silicon's are:
//!
//! * Perfect-match filters live in a fixed-capacity set-associative table
//!   (hash-bucketed, [`PERFECT_WAYS`] entries per set). An install into a
//!   full set either fails ([`FilterInstall::Rejected`] — the sideband
//!   "filter space full" error real drivers report) or, in the evicting
//!   flavour drivers use to refresh stale pins, deterministically replaces
//!   the oldest entry of the set.
//! * ATR entries carry the installing flow's hash signature and an install
//!   timestamp. A colliding lookup still steers to the stored queue — the
//!   hardware has no way to tell — but is counted as a stale/collision
//!   mis-steer. With an ATR lifetime configured, entries age out lazily on
//!   first touch past the deadline.
//!
//! Every lookup outcome and table mutation is counted in [`FdStats`], so
//! the host can export the perfect/ATR/RSS steering mix and the
//! eviction/aging churn behind it.

use idio_engine::time::{Duration, SimTime};
use idio_net::packet::FiveTuple;

/// Default Filter Table capacity (Sec. II-C: "up to 8k entries").
pub const DEFAULT_FILTER_TABLE_ENTRIES: usize = 8192;

/// Default RSS indirection-table size (Intel NICs: 128–512 entries).
pub const DEFAULT_RSS_TABLE_ENTRIES: usize = 128;

/// Associativity of the perfect-filter table: each flow hashes to a set of
/// this many candidate slots.
pub const PERFECT_WAYS: usize = 4;

/// A receive-queue index on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueueId(pub u16);

impl QueueId {
    /// Index as `usize` for container indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a lookup was resolved (exposed for diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringSource {
    /// A perfect-match (EP) filter matched.
    PerfectMatch,
    /// The ATR filter table matched with the installing flow's signature.
    FilterTable,
    /// The ATR filter table matched, but the entry was installed by a
    /// *different* flow (hash collision) — the packet is steered to the
    /// colliding flow's queue, i.e. very likely mis-steered.
    FilterTableCollision,
    /// Fallback RSS hash.
    Rss,
}

/// Outcome of a perfect-filter install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterInstall {
    /// The flow took a free slot in its set.
    Installed,
    /// The flow was already present; its queue was updated in place.
    Updated,
    /// The set was full; the oldest resident entry was evicted to make
    /// room (evicting installs only).
    Evicted,
    /// The set was full and nothing was evicted; the filter was not
    /// installed (non-evicting installs only).
    Rejected,
}

/// Flow-director table and lookup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FdStats {
    /// Lookups resolved by a perfect-match filter.
    pub perfect_hits: u64,
    /// Lookups resolved by an ATR entry whose signature matched.
    pub atr_hits: u64,
    /// Lookups resolved by a colliding ATR entry (stale or hash-aliased):
    /// steered to the *colliding* flow's queue.
    pub atr_collisions: u64,
    /// Lookups that fell back to RSS.
    pub rss_fallbacks: u64,
    /// Perfect filters installed into a free slot.
    pub perfect_installed: u64,
    /// Perfect installs that updated an existing filter in place.
    pub perfect_updated: u64,
    /// Perfect installs that evicted the oldest entry of a full set.
    pub perfect_evicted: u64,
    /// Perfect installs rejected because the set was full.
    pub perfect_rejected: u64,
    /// ATR learn events that wrote the filter table.
    pub atr_learned: u64,
    /// ATR entries invalidated because they outlived the ATR lifetime.
    pub atr_aged: u64,
}

/// One resident perfect-match filter.
#[derive(Debug, Clone, Copy)]
struct PerfectEntry {
    flow: FiveTuple,
    queue: QueueId,
    /// Global install sequence number; the eviction victim in a full set
    /// is always the entry with the smallest sequence (oldest install).
    seq: u64,
}

/// One ATR filter-table entry.
#[derive(Debug, Clone, Copy)]
struct AtrEntry {
    /// Signature of the installing flow, to detect collisions at lookup.
    sig: u32,
    queue: QueueId,
    installed_at: SimTime,
}

/// Bit-mixes a 32-bit flow hash with a salt, so the perfect-set index,
/// the ATR signature, and the raw hash are decorrelated.
#[inline]
fn mix32(h: u32, salt: u32) -> u32 {
    let mut x = h ^ salt;
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    x
}

/// The Flow Director steering engine.
///
/// # Examples
///
/// ```
/// use idio_engine::time::SimTime;
/// use idio_net::packet::FiveTuple;
/// use idio_nic::flow_director::{FlowDirector, QueueId, SteeringSource};
///
/// let mut fd = FlowDirector::new(4, 8192);
/// let flow = FiveTuple::udp(1, 2, 100, 200);
/// // Before any filter: RSS fallback.
/// let (q0, src) = fd.lookup(SimTime::ZERO, &flow);
/// assert_eq!(src, SteeringSource::Rss);
/// // Pin the flow (EP mode):
/// fd.install_perfect(flow, QueueId(3));
/// assert_eq!(
///     fd.lookup(SimTime::ZERO, &flow),
///     (QueueId(3), SteeringSource::PerfectMatch)
/// );
/// # let _ = q0;
/// ```
#[derive(Debug, Clone)]
pub struct FlowDirector {
    num_queues: u16,
    /// Perfect-match filters: `perfect_sets` sets of `perfect_ways` slots,
    /// flattened row-major.
    perfect: Vec<Option<PerfectEntry>>,
    perfect_sets: usize,
    perfect_ways: usize,
    perfect_occupied: usize,
    install_seq: u64,
    filter_table: Vec<Option<AtrEntry>>,
    /// ATR entries older than this are invalidated on first touch.
    /// `None` disables aging.
    atr_lifetime: Option<Duration>,
    /// RSS indirection table: hash → queue, software-programmable.
    rss_table: Vec<QueueId>,
    stats: FdStats,
}

impl FlowDirector {
    /// Creates a director for `num_queues` queues with both the perfect
    /// and ATR tables sized to `table_entries` slots (real adapters share
    /// one filter memory between the two).
    ///
    /// # Panics
    ///
    /// Panics if `num_queues` or `table_entries` is zero.
    pub fn new(num_queues: u16, table_entries: usize) -> Self {
        Self::with_tables(num_queues, table_entries, table_entries)
    }

    /// Creates a director with independently sized tables:
    /// `perfect_entries` perfect-filter slots (rounded down to a multiple
    /// of [`PERFECT_WAYS`], minimum one set) and `atr_entries` ATR
    /// filter-table slots.
    ///
    /// # Panics
    ///
    /// Panics if `num_queues`, `perfect_entries`, or `atr_entries` is zero.
    pub fn with_tables(num_queues: u16, perfect_entries: usize, atr_entries: usize) -> Self {
        assert!(num_queues > 0, "need at least one queue");
        assert!(perfect_entries > 0, "perfect filter table cannot be empty");
        assert!(atr_entries > 0, "filter table cannot be empty");
        let ways = PERFECT_WAYS.min(perfect_entries);
        let sets = (perfect_entries / ways).max(1);
        FlowDirector {
            num_queues,
            perfect: vec![None; sets * ways],
            perfect_sets: sets,
            perfect_ways: ways,
            perfect_occupied: 0,
            install_seq: 0,
            filter_table: vec![None; atr_entries],
            atr_lifetime: None,
            // Identity spread: entry i -> queue i % n (the power-on
            // default real NICs program).
            rss_table: (0..DEFAULT_RSS_TABLE_ENTRIES)
                .map(|i| QueueId((i % num_queues as usize) as u16))
                .collect(),
            stats: FdStats::default(),
        }
    }

    /// Sets the ATR entry lifetime; entries older than this are
    /// invalidated (and counted as aged) when next touched. `None`
    /// disables aging.
    pub fn set_atr_lifetime(&mut self, lifetime: Option<Duration>) {
        self.atr_lifetime = lifetime;
    }

    /// Reprograms the RSS indirection table (`ethtool -X` style). The
    /// table size stays fixed; each entry must name a valid queue.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or names an out-of-range queue.
    pub fn set_rss_table(&mut self, entries: &[QueueId]) {
        assert!(!entries.is_empty(), "RSS table cannot be empty");
        assert!(
            entries.iter().all(|q| q.0 < self.num_queues),
            "RSS entry names an out-of-range queue"
        );
        self.rss_table = entries.to_vec();
    }

    /// The current RSS indirection table.
    pub fn rss_table(&self) -> &[QueueId] {
        &self.rss_table
    }

    /// Number of configured queues.
    pub fn num_queues(&self) -> u16 {
        self.num_queues
    }

    /// Total perfect-filter slots.
    pub fn perfect_capacity(&self) -> usize {
        self.perfect.len()
    }

    /// Installs a perfect-match (EP) filter. When the flow's set is full
    /// the install is rejected (and counted); drivers that want to
    /// replace stale pins use [`FlowDirector::install_perfect_evicting`].
    ///
    /// # Panics
    ///
    /// Panics if the queue is out of range.
    pub fn install_perfect(&mut self, flow: FiveTuple, queue: QueueId) -> FilterInstall {
        self.install_inner(flow, queue, false)
    }

    /// Installs a perfect-match filter, evicting the oldest entry of the
    /// flow's set when it is full (deterministic victim: smallest install
    /// sequence number).
    ///
    /// # Panics
    ///
    /// Panics if the queue is out of range.
    pub fn install_perfect_evicting(&mut self, flow: FiveTuple, queue: QueueId) -> FilterInstall {
        self.install_inner(flow, queue, true)
    }

    fn install_inner(&mut self, flow: FiveTuple, queue: QueueId, evict: bool) -> FilterInstall {
        assert!(queue.0 < self.num_queues, "queue out of range");
        let base = self.perfect_set_base(&flow);
        let set = &mut self.perfect[base..base + self.perfect_ways];
        // Present already? Update in place (keeps the original age).
        if let Some(e) = set.iter_mut().flatten().find(|e| e.flow == flow) {
            e.queue = queue;
            self.stats.perfect_updated += 1;
            return FilterInstall::Updated;
        }
        // Free slot in the set?
        if let Some(slot) = set.iter_mut().find(|s| s.is_none()) {
            *slot = Some(PerfectEntry {
                flow,
                queue,
                seq: self.install_seq,
            });
            self.install_seq += 1;
            self.perfect_occupied += 1;
            self.stats.perfect_installed += 1;
            return FilterInstall::Installed;
        }
        if !evict {
            self.stats.perfect_rejected += 1;
            return FilterInstall::Rejected;
        }
        // Evict the oldest entry of the set.
        let victim = set
            .iter_mut()
            .min_by_key(|s| s.as_ref().map_or(u64::MAX, |e| e.seq))
            .expect("sets have at least one way");
        *victim = Some(PerfectEntry {
            flow,
            queue,
            seq: self.install_seq,
        });
        self.install_seq += 1;
        self.stats.perfect_evicted += 1;
        FilterInstall::Evicted
    }

    /// ATR learning: records that `flow`'s consumer lives on `queue`
    /// (hardware does this by observing TX traffic or, for drop-path
    /// applications, the driver mirrors it at packet completion).
    ///
    /// # Panics
    ///
    /// Panics if the queue is out of range.
    pub fn learn(&mut self, now: SimTime, flow: &FiveTuple, queue: QueueId) {
        assert!(queue.0 < self.num_queues, "queue out of range");
        let idx = self.table_index(flow);
        self.filter_table[idx] = Some(AtrEntry {
            sig: mix32(flow.hash32(), 0x85eb_ca6b),
            queue,
            installed_at: now,
        });
        self.stats.atr_learned += 1;
    }

    /// Looks up the destination queue for a packet, counting the outcome.
    pub fn lookup(&mut self, now: SimTime, flow: &FiveTuple) -> (QueueId, SteeringSource) {
        let base = self.perfect_set_base(flow);
        if let Some(e) = self.perfect[base..base + self.perfect_ways]
            .iter()
            .flatten()
            .find(|e| e.flow == *flow)
        {
            let q = e.queue;
            self.stats.perfect_hits += 1;
            return (q, SteeringSource::PerfectMatch);
        }
        let idx = self.table_index(flow);
        if let Some(e) = self.filter_table[idx] {
            if self
                .atr_lifetime
                .is_some_and(|life| now.saturating_since(e.installed_at) > life)
            {
                // Entry outlived the ATR lifetime: invalidate and fall
                // through to RSS.
                self.filter_table[idx] = None;
                self.stats.atr_aged += 1;
            } else if e.sig == mix32(flow.hash32(), 0x85eb_ca6b) {
                self.stats.atr_hits += 1;
                return (e.queue, SteeringSource::FilterTable);
            } else {
                // A different flow installed this entry; the hardware
                // cannot tell and steers to the colliding flow's queue.
                self.stats.atr_collisions += 1;
                return (e.queue, SteeringSource::FilterTableCollision);
            }
        }
        let idx = (flow.hash32() as usize) % self.rss_table.len();
        self.stats.rss_fallbacks += 1;
        (self.rss_table[idx], SteeringSource::Rss)
    }

    fn table_index(&self, flow: &FiveTuple) -> usize {
        (flow.hash32() as usize) % self.filter_table.len()
    }

    fn perfect_set_base(&self, flow: &FiveTuple) -> usize {
        (mix32(flow.hash32(), 0x9e37_79b9) as usize % self.perfect_sets) * self.perfect_ways
    }

    /// Lookup and mutation counters.
    pub fn stats(&self) -> &FdStats {
        &self.stats
    }

    /// Number of installed perfect-match filters.
    pub fn perfect_filter_count(&self) -> usize {
        self.perfect_occupied
    }

    /// Number of populated ATR filter-table entries.
    pub fn filter_table_population(&self) -> usize {
        self.filter_table.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_engine::check::{Cases, Gen};

    /// Naive reference model of a *single-set* director: a perfect table
    /// of at most [`PERFECT_WAYS`] slots (so set indexing is trivial and
    /// FIFO eviction is exact), an ATR table storing the real flow per
    /// hash bucket, and the director's own RSS indirection table.
    struct Model {
        perfect: Vec<(FiveTuple, QueueId, u64)>,
        capacity: usize,
        seq: u64,
        atr: Vec<Option<(FiveTuple, QueueId, SimTime)>>,
        atr_lifetime: Option<Duration>,
        rss: Vec<QueueId>,
    }

    impl Model {
        fn install(&mut self, flow: FiveTuple, queue: QueueId, evict: bool) -> FilterInstall {
            if let Some(e) = self.perfect.iter_mut().find(|(f, _, _)| *f == flow) {
                e.1 = queue;
                return FilterInstall::Updated;
            }
            if self.perfect.len() < self.capacity {
                self.perfect.push((flow, queue, self.seq));
                self.seq += 1;
                return FilterInstall::Installed;
            }
            if !evict {
                return FilterInstall::Rejected;
            }
            let oldest = self
                .perfect
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, s))| *s)
                .map(|(i, _)| i)
                .expect("table is full, hence non-empty");
            self.perfect.remove(oldest);
            self.perfect.push((flow, queue, self.seq));
            self.seq += 1;
            FilterInstall::Evicted
        }

        fn learn(&mut self, now: SimTime, flow: FiveTuple, queue: QueueId) {
            let idx = flow.hash32() as usize % self.atr.len();
            self.atr[idx] = Some((flow, queue, now));
        }

        fn lookup(&mut self, now: SimTime, flow: &FiveTuple) -> (QueueId, SteeringSource) {
            if let Some((_, q, _)) = self.perfect.iter().find(|(f, _, _)| f == flow) {
                return (*q, SteeringSource::PerfectMatch);
            }
            let idx = flow.hash32() as usize % self.atr.len();
            if let Some((f, q, at)) = self.atr[idx] {
                if self
                    .atr_lifetime
                    .is_some_and(|life| now.saturating_since(at) > life)
                {
                    self.atr[idx] = None;
                } else if f == *flow {
                    return (q, SteeringSource::FilterTable);
                } else {
                    return (q, SteeringSource::FilterTableCollision);
                }
            }
            let idx = flow.hash32() as usize % self.rss.len();
            (self.rss[idx], SteeringSource::Rss)
        }
    }

    /// A pool of flows with pairwise-distinct hardware hashes, so the
    /// model's flow-equality collision check agrees with the director's
    /// signature comparison.
    fn flow_pool() -> Vec<FiveTuple> {
        let flows: Vec<FiveTuple> = (0..8u32)
            .map(|i| FiveTuple::udp(i + 1, i + 100, 1000 + i as u16, 2000 + i as u16))
            .collect();
        for a in 0..flows.len() {
            for b in a + 1..flows.len() {
                assert_ne!(flows[a].hash32(), flows[b].hash32(), "pool must not alias");
            }
        }
        flows
    }

    /// The satellite's property: against a bounded director whose perfect
    /// table is a single set (capacity <= [`PERFECT_WAYS`]), a random
    /// stream of installs, learns, lookups and time advances behaves
    /// exactly like the naive model — same steering decisions, same
    /// install outcomes, same occupancy.
    #[test]
    fn random_streams_match_the_reference_model() {
        let flows = flow_pool();
        Cases::new(300).run(|g: &mut Gen| {
            let queues = g.u16(1..5);
            let capacity = g.usize(1..PERFECT_WAYS + 1);
            let atr_entries = g.usize(1..9);
            let lifetime = g.bool().then(|| Duration::from_ns(g.u64(1..3_000)));
            let mut fd = FlowDirector::with_tables(queues, capacity, atr_entries);
            fd.set_atr_lifetime(lifetime);
            let mut model = Model {
                perfect: Vec::new(),
                capacity,
                seq: 0,
                atr: vec![None; atr_entries],
                atr_lifetime: lifetime,
                rss: fd.rss_table().to_vec(),
            };
            let mut now = SimTime::ZERO;
            for step in 0..g.usize(1..200) {
                now += Duration::from_ns(g.u64(0..1_500));
                let flow = flows[g.usize(0..flows.len())];
                let queue = QueueId(g.u16(0..queues));
                match g.usize(0..4) {
                    0 => {
                        fd.learn(now, &flow, queue);
                        model.learn(now, flow, queue);
                    }
                    1 => {
                        let evict = g.bool();
                        let got = if evict {
                            fd.install_perfect_evicting(flow, queue)
                        } else {
                            fd.install_perfect(flow, queue)
                        };
                        let want = model.install(flow, queue, evict);
                        assert_eq!(got, want, "step {step}: install diverged");
                    }
                    _ => {
                        let got = fd.lookup(now, &flow);
                        let want = model.lookup(now, &flow);
                        assert_eq!(got, want, "step {step}: lookup diverged");
                    }
                }
                assert_eq!(
                    fd.perfect_filter_count(),
                    model.perfect.len(),
                    "step {step}: occupancy diverged"
                );
            }
        });
    }

    /// Capacity-1 boundary: the table is one set of one way, so a second
    /// distinct flow is rejected outright and an evicting install always
    /// replaces the sole occupant.
    #[test]
    fn capacity_one_table_rejects_then_evicts() {
        let mut fd = FlowDirector::with_tables(2, 1, 4);
        let a = FiveTuple::udp(1, 2, 10, 20);
        let b = FiveTuple::udp(3, 4, 30, 40);
        assert_eq!(fd.perfect_capacity(), 1);
        assert_eq!(fd.install_perfect(a, QueueId(0)), FilterInstall::Installed);
        assert_eq!(fd.install_perfect(b, QueueId(1)), FilterInstall::Rejected);
        assert_eq!(
            fd.lookup(SimTime::ZERO, &a),
            (QueueId(0), SteeringSource::PerfectMatch)
        );
        assert_eq!(fd.install_perfect(a, QueueId(1)), FilterInstall::Updated);
        assert_eq!(
            fd.install_perfect_evicting(b, QueueId(1)),
            FilterInstall::Evicted
        );
        assert_eq!(
            fd.lookup(SimTime::ZERO, &b),
            (QueueId(1), SteeringSource::PerfectMatch)
        );
        assert_ne!(
            fd.lookup(SimTime::ZERO, &a).1,
            SteeringSource::PerfectMatch,
            "the evicted flow lost its filter"
        );
        assert_eq!(fd.perfect_filter_count(), 1);
        assert_eq!(fd.stats().perfect_rejected, 1);
        assert_eq!(fd.stats().perfect_evicted, 1);
    }

    /// Exactly-full boundary: a single 4-way set filled to the brim keeps
    /// updating in place, rejects fresh flows, and an evicting install
    /// removes precisely the oldest entry.
    #[test]
    fn exactly_full_set_updates_rejects_and_evicts_fifo() {
        let mut fd = FlowDirector::with_tables(4, PERFECT_WAYS, 4);
        let flows = flow_pool();
        for (i, f) in flows[..PERFECT_WAYS].iter().enumerate() {
            assert_eq!(
                fd.install_perfect(*f, QueueId(i as u16)),
                FilterInstall::Installed
            );
        }
        assert_eq!(fd.perfect_filter_count(), PERFECT_WAYS);
        assert_eq!(
            fd.install_perfect(flows[4], QueueId(0)),
            FilterInstall::Rejected,
            "full set rejects a fresh flow"
        );
        assert_eq!(
            fd.install_perfect(flows[2], QueueId(3)),
            FilterInstall::Updated,
            "resident flows update in place at capacity"
        );
        assert_eq!(
            fd.install_perfect_evicting(flows[4], QueueId(2)),
            FilterInstall::Evicted
        );
        assert_ne!(
            fd.lookup(SimTime::ZERO, &flows[0]).1,
            SteeringSource::PerfectMatch,
            "the first-installed flow was the FIFO victim"
        );
        for f in &flows[1..5] {
            assert_eq!(
                fd.lookup(SimTime::ZERO, f).1,
                SteeringSource::PerfectMatch,
                "younger residents survive the eviction"
            );
        }
        assert_eq!(fd.perfect_filter_count(), PERFECT_WAYS);
    }

    #[test]
    fn rss_fallback_is_stable_and_in_range() {
        let mut fd = FlowDirector::new(4, 16);
        let f = FiveTuple::udp(9, 9, 9, 9);
        let (q1, s1) = fd.lookup(SimTime::ZERO, &f);
        let (q2, _) = fd.lookup(SimTime::ZERO, &f);
        assert_eq!(q1, q2);
        assert_eq!(s1, SteeringSource::Rss);
        assert!(q1.0 < 4);
        assert_eq!(fd.stats().rss_fallbacks, 2);
    }

    #[test]
    fn atr_learning_overrides_rss() {
        let mut fd = FlowDirector::new(4, 8192);
        let f = FiveTuple::udp(1, 2, 3, 4);
        fd.learn(SimTime::ZERO, &f, QueueId(2));
        assert_eq!(
            fd.lookup(SimTime::ZERO, &f),
            (QueueId(2), SteeringSource::FilterTable)
        );
        assert_eq!(fd.filter_table_population(), 1);
        assert_eq!(fd.stats().atr_hits, 1);
    }

    #[test]
    fn perfect_match_beats_atr() {
        let mut fd = FlowDirector::new(4, 8192);
        let f = FiveTuple::udp(1, 2, 3, 4);
        fd.learn(SimTime::ZERO, &f, QueueId(1));
        assert_eq!(fd.install_perfect(f, QueueId(3)), FilterInstall::Installed);
        assert_eq!(
            fd.lookup(SimTime::ZERO, &f),
            (QueueId(3), SteeringSource::PerfectMatch)
        );
        assert_eq!(fd.perfect_filter_count(), 1);
        assert_eq!(fd.stats().perfect_hits, 1);
    }

    #[test]
    fn hash_collisions_share_table_entries() {
        // A 1-entry table makes every flow collide: the last learner wins —
        // the documented ATR behaviour for colliding flows. The colliding
        // lookup still steers to the stored queue, but is counted as a
        // collision mis-steer.
        let mut fd = FlowDirector::new(4, 1);
        let f1 = FiveTuple::udp(1, 1, 1, 1);
        let f2 = FiveTuple::udp(2, 2, 2, 2);
        fd.learn(SimTime::ZERO, &f1, QueueId(0));
        fd.learn(SimTime::ZERO, &f2, QueueId(3));
        let (q, src) = fd.lookup(SimTime::ZERO, &f1);
        assert_eq!(q, QueueId(3));
        assert_eq!(src, SteeringSource::FilterTableCollision);
        assert_eq!(fd.stats().atr_collisions, 1);
    }

    #[test]
    fn rss_indirection_table_is_programmable() {
        let mut fd = FlowDirector::new(4, 16);
        // Point every RSS bucket at queue 3.
        fd.set_rss_table(&[QueueId(3)]);
        for port in 0..20 {
            let f = FiveTuple::udp(1, 2, port, 9);
            assert_eq!(
                fd.lookup(SimTime::ZERO, &f),
                (QueueId(3), SteeringSource::Rss)
            );
        }
        assert_eq!(fd.rss_table().len(), 1);
    }

    #[test]
    fn default_rss_spread_covers_all_queues() {
        let mut fd = FlowDirector::new(4, 16);
        let mut hit = [false; 4];
        for port in 0..200 {
            let f = FiveTuple::udp(1, 2, port, 9);
            let (q, _) = fd.lookup(SimTime::ZERO, &f);
            hit[q.index()] = true;
        }
        assert!(hit.iter().all(|&h| h), "RSS spreads across queues: {hit:?}");
    }

    #[test]
    fn full_set_rejects_then_evicts_oldest() {
        // Capacity 4 with 4 ways = a single set: every flow collides.
        let mut fd = FlowDirector::new(4, 4);
        assert_eq!(fd.perfect_capacity(), 4);
        let flows: Vec<FiveTuple> = (0..5).map(|i| FiveTuple::udp(i, i, 1, 1)).collect();
        for f in &flows[..4] {
            assert_eq!(fd.install_perfect(*f, QueueId(0)), FilterInstall::Installed);
        }
        // Non-evicting install into the full set fails and is counted.
        assert_eq!(
            fd.install_perfect(flows[4], QueueId(1)),
            FilterInstall::Rejected
        );
        assert_eq!(fd.stats().perfect_rejected, 1);
        assert_eq!(fd.perfect_filter_count(), 4);
        // The evicting flavour replaces the oldest install (flows[0]).
        assert_eq!(
            fd.install_perfect_evicting(flows[4], QueueId(1)),
            FilterInstall::Evicted
        );
        assert_eq!(fd.stats().perfect_evicted, 1);
        assert_eq!(fd.perfect_filter_count(), 4);
        assert_eq!(fd.lookup(SimTime::ZERO, &flows[4]).0, QueueId(1));
        assert_eq!(
            fd.lookup(SimTime::ZERO, &flows[0]).1,
            SteeringSource::Rss,
            "the oldest pin was the eviction victim"
        );
    }

    #[test]
    fn reinstall_updates_in_place() {
        let mut fd = FlowDirector::new(4, 4);
        let f = FiveTuple::udp(1, 2, 3, 4);
        assert_eq!(fd.install_perfect(f, QueueId(0)), FilterInstall::Installed);
        assert_eq!(fd.install_perfect(f, QueueId(2)), FilterInstall::Updated);
        assert_eq!(fd.perfect_filter_count(), 1);
        assert_eq!(fd.lookup(SimTime::ZERO, &f).0, QueueId(2));
    }

    #[test]
    fn capacity_one_table_holds_exactly_one_pin() {
        let mut fd = FlowDirector::with_tables(4, 1, 1);
        assert_eq!(fd.perfect_capacity(), 1);
        let f1 = FiveTuple::udp(1, 1, 1, 1);
        let f2 = FiveTuple::udp(2, 2, 2, 2);
        assert_eq!(fd.install_perfect(f1, QueueId(0)), FilterInstall::Installed);
        assert_eq!(fd.install_perfect(f2, QueueId(1)), FilterInstall::Rejected);
        assert_eq!(
            fd.install_perfect_evicting(f2, QueueId(1)),
            FilterInstall::Evicted
        );
        assert_eq!(fd.lookup(SimTime::ZERO, &f2).0, QueueId(1));
        assert_eq!(fd.perfect_filter_count(), 1);
    }

    #[test]
    fn atr_entries_age_out_lazily() {
        let mut fd = FlowDirector::new(4, 8192);
        fd.set_atr_lifetime(Some(Duration::from_us(10)));
        let f = FiveTuple::udp(1, 2, 3, 4);
        fd.learn(SimTime::ZERO, &f, QueueId(2));
        // Within the lifetime: a normal ATR hit.
        assert_eq!(
            fd.lookup(SimTime::from_us(10), &f).1,
            SteeringSource::FilterTable
        );
        // Past it: the entry is invalidated and the lookup falls to RSS.
        let (_, src) = fd.lookup(SimTime::from_us(21), &f);
        assert_eq!(src, SteeringSource::Rss);
        assert_eq!(fd.stats().atr_aged, 1);
        assert_eq!(fd.filter_table_population(), 0);
        // Re-learning re-arms the entry.
        fd.learn(SimTime::from_us(21), &f, QueueId(1));
        assert_eq!(
            fd.lookup(SimTime::from_us(22), &f),
            (QueueId(1), SteeringSource::FilterTable)
        );
    }

    #[test]
    fn no_lifetime_means_no_aging() {
        let mut fd = FlowDirector::new(4, 8192);
        let f = FiveTuple::udp(1, 2, 3, 4);
        fd.learn(SimTime::ZERO, &f, QueueId(2));
        assert_eq!(
            fd.lookup(SimTime::from_ms(500), &f).1,
            SteeringSource::FilterTable
        );
        assert_eq!(fd.stats().atr_aged, 0);
    }

    #[test]
    #[should_panic(expected = "out-of-range queue")]
    fn rss_oob_queue_rejected() {
        let mut fd = FlowDirector::new(2, 8);
        fd.set_rss_table(&[QueueId(2)]);
    }

    #[test]
    #[should_panic(expected = "queue out of range")]
    fn oob_queue_rejected() {
        let mut fd = FlowDirector::new(2, 8);
        fd.install_perfect(FiveTuple::default(), QueueId(2));
    }
}
