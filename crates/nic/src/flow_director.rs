//! Ethernet Flow Director: steering packets to the consuming core's queue.
//!
//! Models the two flavours described in Sec. II-C:
//!
//! * **Externally Programmed (EP)** — software installs perfect-match
//!   filters (five-tuple → queue), used when applications are pinned;
//! * **Application Targeting Routing (ATR)** — the NIC learns the target
//!   queue by populating a hash-indexed *Filter Table* (up to 8 K entries in
//!   modern adapters); lookups hash the packet's five-tuple into the table.
//!
//! Unmatched packets fall back to RSS (hash modulo queue count).

use std::collections::HashMap;

use idio_net::packet::FiveTuple;

/// Default Filter Table capacity (Sec. II-C: "up to 8k entries").
pub const DEFAULT_FILTER_TABLE_ENTRIES: usize = 8192;

/// Default RSS indirection-table size (Intel NICs: 128–512 entries).
pub const DEFAULT_RSS_TABLE_ENTRIES: usize = 128;

/// A receive-queue index on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueueId(pub u16);

impl QueueId {
    /// Index as `usize` for container indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a lookup was resolved (exposed for diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringSource {
    /// A perfect-match (EP) filter matched.
    PerfectMatch,
    /// The ATR filter table matched.
    FilterTable,
    /// Fallback RSS hash.
    Rss,
}

/// The Flow Director steering engine.
///
/// # Examples
///
/// ```
/// use idio_net::packet::FiveTuple;
/// use idio_nic::flow_director::{FlowDirector, QueueId, SteeringSource};
///
/// let mut fd = FlowDirector::new(4, 8192);
/// let flow = FiveTuple::udp(1, 2, 100, 200);
/// // Before any filter: RSS fallback.
/// let (q0, src) = fd.lookup(&flow);
/// assert_eq!(src, SteeringSource::Rss);
/// // Pin the flow (EP mode):
/// fd.install_perfect(flow, QueueId(3));
/// assert_eq!(fd.lookup(&flow), (QueueId(3), SteeringSource::PerfectMatch));
/// # let _ = q0;
/// ```
#[derive(Debug, Clone)]
pub struct FlowDirector {
    num_queues: u16,
    perfect: HashMap<FiveTuple, QueueId>,
    filter_table: Vec<Option<QueueId>>,
    /// RSS indirection table: hash → queue, software-programmable.
    rss_table: Vec<QueueId>,
}

impl FlowDirector {
    /// Creates a director for `num_queues` queues with an ATR filter table
    /// of `table_entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `num_queues` or `table_entries` is zero.
    pub fn new(num_queues: u16, table_entries: usize) -> Self {
        assert!(num_queues > 0, "need at least one queue");
        assert!(table_entries > 0, "filter table cannot be empty");
        FlowDirector {
            num_queues,
            perfect: HashMap::new(),
            filter_table: vec![None; table_entries],
            // Identity spread: entry i -> queue i % n (the power-on
            // default real NICs program).
            rss_table: (0..DEFAULT_RSS_TABLE_ENTRIES)
                .map(|i| QueueId((i % num_queues as usize) as u16))
                .collect(),
        }
    }

    /// Reprograms the RSS indirection table (`ethtool -X` style). The
    /// table size stays fixed; each entry must name a valid queue.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or names an out-of-range queue.
    pub fn set_rss_table(&mut self, entries: &[QueueId]) {
        assert!(!entries.is_empty(), "RSS table cannot be empty");
        assert!(
            entries.iter().all(|q| q.0 < self.num_queues),
            "RSS entry names an out-of-range queue"
        );
        self.rss_table = entries.to_vec();
    }

    /// The current RSS indirection table.
    pub fn rss_table(&self) -> &[QueueId] {
        &self.rss_table
    }

    /// Number of configured queues.
    pub fn num_queues(&self) -> u16 {
        self.num_queues
    }

    /// Installs a perfect-match (EP) filter.
    ///
    /// # Panics
    ///
    /// Panics if the queue is out of range.
    pub fn install_perfect(&mut self, flow: FiveTuple, queue: QueueId) {
        assert!(queue.0 < self.num_queues, "queue out of range");
        self.perfect.insert(flow, queue);
    }

    /// ATR learning: records that `flow`'s consumer lives on `queue`
    /// (hardware does this by observing TX traffic).
    ///
    /// # Panics
    ///
    /// Panics if the queue is out of range.
    pub fn learn(&mut self, flow: &FiveTuple, queue: QueueId) {
        assert!(queue.0 < self.num_queues, "queue out of range");
        let idx = self.table_index(flow);
        self.filter_table[idx] = Some(queue);
    }

    /// Looks up the destination queue for a packet.
    pub fn lookup(&self, flow: &FiveTuple) -> (QueueId, SteeringSource) {
        if let Some(&q) = self.perfect.get(flow) {
            return (q, SteeringSource::PerfectMatch);
        }
        if let Some(q) = self.filter_table[self.table_index(flow)] {
            return (q, SteeringSource::FilterTable);
        }
        let idx = (flow.hash32() as usize) % self.rss_table.len();
        (self.rss_table[idx], SteeringSource::Rss)
    }

    fn table_index(&self, flow: &FiveTuple) -> usize {
        (flow.hash32() as usize) % self.filter_table.len()
    }

    /// Number of installed perfect-match filters.
    pub fn perfect_filter_count(&self) -> usize {
        self.perfect.len()
    }

    /// Number of populated ATR filter-table entries.
    pub fn filter_table_population(&self) -> usize {
        self.filter_table.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_fallback_is_stable_and_in_range() {
        let fd = FlowDirector::new(4, 16);
        let f = FiveTuple::udp(9, 9, 9, 9);
        let (q1, s1) = fd.lookup(&f);
        let (q2, _) = fd.lookup(&f);
        assert_eq!(q1, q2);
        assert_eq!(s1, SteeringSource::Rss);
        assert!(q1.0 < 4);
    }

    #[test]
    fn atr_learning_overrides_rss() {
        let mut fd = FlowDirector::new(4, 8192);
        let f = FiveTuple::udp(1, 2, 3, 4);
        fd.learn(&f, QueueId(2));
        assert_eq!(fd.lookup(&f), (QueueId(2), SteeringSource::FilterTable));
        assert_eq!(fd.filter_table_population(), 1);
    }

    #[test]
    fn perfect_match_beats_atr() {
        let mut fd = FlowDirector::new(4, 8192);
        let f = FiveTuple::udp(1, 2, 3, 4);
        fd.learn(&f, QueueId(1));
        fd.install_perfect(f, QueueId(3));
        assert_eq!(fd.lookup(&f), (QueueId(3), SteeringSource::PerfectMatch));
        assert_eq!(fd.perfect_filter_count(), 1);
    }

    #[test]
    fn hash_collisions_share_table_entries() {
        // A 1-entry table makes every flow collide: the last learner wins —
        // the documented ATR behaviour for colliding flows.
        let mut fd = FlowDirector::new(4, 1);
        let f1 = FiveTuple::udp(1, 1, 1, 1);
        let f2 = FiveTuple::udp(2, 2, 2, 2);
        fd.learn(&f1, QueueId(0));
        fd.learn(&f2, QueueId(3));
        assert_eq!(fd.lookup(&f1).0, QueueId(3));
    }

    #[test]
    fn rss_indirection_table_is_programmable() {
        let mut fd = FlowDirector::new(4, 16);
        // Point every RSS bucket at queue 3.
        fd.set_rss_table(&[QueueId(3)]);
        for port in 0..20 {
            let f = FiveTuple::udp(1, 2, port, 9);
            assert_eq!(fd.lookup(&f), (QueueId(3), SteeringSource::Rss));
        }
        assert_eq!(fd.rss_table().len(), 1);
    }

    #[test]
    fn default_rss_spread_covers_all_queues() {
        let fd = FlowDirector::new(4, 16);
        let mut hit = [false; 4];
        for port in 0..200 {
            let f = FiveTuple::udp(1, 2, port, 9);
            let (q, _) = fd.lookup(&f);
            hit[q.index()] = true;
        }
        assert!(hit.iter().all(|&h| h), "RSS spreads across queues: {hit:?}");
    }

    #[test]
    #[should_panic(expected = "out-of-range queue")]
    fn rss_oob_queue_rejected() {
        let mut fd = FlowDirector::new(2, 8);
        fd.set_rss_table(&[QueueId(2)]);
    }

    #[test]
    #[should_panic(expected = "queue out of range")]
    fn oob_queue_rejected() {
        let mut fd = FlowDirector::new(2, 8);
        fd.install_perfect(FiveTuple::default(), QueueId(2));
    }
}
