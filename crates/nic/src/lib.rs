//! # idio-nic
//!
//! The NIC substrate of the IDIO reproduction: receive descriptor rings
//! with fixed 2 KiB DMA buffers, a PCIe DMA pacing engine, Ethernet Flow
//! Director steering (EP and ATR modes), the **IDIO classifier** of
//! Sec. V-A (application class from DSCP, header-line detection, per-core
//! 1 µs burst counters), and the Fig. 7 **TLP reserved-bit encoding** that
//! carries classifier metadata to the on-chip IDIO controller.
//!
//! The NIC produces *plans* ([`nic::RxDma`]) — which line transactions
//! happen when, with what metadata — and the full-system simulator in
//! `idio-core` enacts them against the cache hierarchy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod dma;
pub mod flow_director;
pub mod nic;
pub mod ring;
pub mod tlp;
pub mod tx;

pub use classifier::{ClassifierConfig, IdioClassifier, PacketClass};
pub use dma::{DmaConfig, DmaEngine, DmaSchedule};
pub use flow_director::{
    FdStats, FilterInstall, FlowDirector, QueueId, SteeringSource, DEFAULT_FILTER_TABLE_ENTRIES,
    PERFECT_WAYS,
};
pub use nic::{Nic, NicConfig, NicStats, RingLayout, RxDma};
pub use ring::{ReserveError, RxRing, RxSlot, DEFAULT_BUF_BYTES, DESC_BYTES};
pub use tlp::{AppClass, CoreRangeError, TlpHeader, TlpMeta};
pub use tx::{TxRing, TxRingFullError, TxSlot, TX_DESC_BYTES};
