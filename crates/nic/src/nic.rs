//! The NIC composite: queues, steering, classification, and DMA pacing.
//!
//! [`Nic`] glues the substrate pieces together the way the hardware does:
//! an inbound packet is steered to a queue by Flow Director (queues are
//! pinned to cores ADQ-style), classified by the IDIO classifier, given a
//! descriptor and DMA buffer from the queue's ring, and its line
//! transactions are paced onto the PCIe link. The host-side simulator
//! (`idio-core`) turns the returned [`RxDma`] plan into cache-hierarchy
//! events.

use idio_cache::addr::CoreId;
use idio_engine::stats::Counter;
use idio_engine::time::{Duration, SimTime};
use idio_net::packet::Packet;

use crate::classifier::{ClassifierConfig, IdioClassifier, PacketClass};
use crate::dma::{DmaConfig, DmaEngine, DmaSchedule};
use crate::flow_director::{FlowDirector, QueueId, SteeringSource, DEFAULT_FILTER_TABLE_ENTRIES};
use crate::ring::{RxRing, RxSlot, DESC_BYTES};
#[cfg(test)]
use crate::tlp::AppClass;
use crate::tlp::{TlpHeader, TlpMeta};

/// Address layout of one receive queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLayout {
    /// Base address of the queue's DMA buffer pool.
    pub buf_base: idio_cache::addr::Addr,
    /// Base address of the queue's descriptor array.
    pub desc_base: idio_cache::addr::Addr,
}

/// NIC configuration.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Descriptor-ring size per queue (DPDK default: 1024).
    pub ring_size: u32,
    /// Core each queue is pinned to (ADQ); also defines the queue count.
    pub queue_core: Vec<CoreId>,
    /// Classifier settings.
    pub classifier: ClassifierConfig,
    /// DMA/PCIe settings.
    pub dma: DmaConfig,
    /// Flow Director ATR filter-table entries.
    pub filter_table_entries: usize,
    /// Flow Director perfect-match (EP) filter slots.
    pub perfect_filter_entries: usize,
    /// ATR entries older than this age out on first touch; `None`
    /// disables aging.
    pub atr_lifetime: Option<Duration>,
    /// Steering-policy domain of each queue, parallel to `queue_core`.
    /// Domains are opaque ids resolved by the host: the NIC only stamps
    /// them into each packet's DMA plan so the receive path can look up
    /// the queue's policy without a per-line table walk. Empty means
    /// every queue is in domain 0 (the system default policy).
    pub queue_policy_domain: Vec<u16>,
}

impl NicConfig {
    /// A NIC with one queue per core in `cores`, 1024-deep rings, and the
    /// paper-default classifier and DMA settings.
    pub fn per_core_queues(cores: &[CoreId]) -> Self {
        NicConfig {
            ring_size: 1024,
            queue_core: cores.to_vec(),
            classifier: ClassifierConfig::paper_default(),
            dma: DmaConfig::default(),
            filter_table_entries: DEFAULT_FILTER_TABLE_ENTRIES,
            perfect_filter_entries: DEFAULT_FILTER_TABLE_ENTRIES,
            atr_lifetime: None,
            queue_policy_domain: Vec::new(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for an empty queue map, zero ring size, or invalid
    /// DMA settings.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_core.is_empty() {
            return Err("NIC needs at least one queue".into());
        }
        if self.ring_size == 0 {
            return Err("ring size must be positive".into());
        }
        if !self.queue_policy_domain.is_empty()
            && self.queue_policy_domain.len() != self.queue_core.len()
        {
            return Err(format!(
                "queue_policy_domain has {} entries for {} queues",
                self.queue_policy_domain.len(),
                self.queue_core.len()
            ));
        }
        self.dma.validate()
    }
}

/// The DMA plan for one received packet, to be enacted by the host-side
/// simulator.
#[derive(Debug, Clone)]
pub struct RxDma {
    /// The reserved descriptor/buffer slot.
    pub slot: RxSlot,
    /// Queue the packet landed on.
    pub queue: QueueId,
    /// Core the queue is pinned to.
    pub dest_core: CoreId,
    /// Classification outcome.
    pub class: PacketClass,
    /// Pacing of the payload line writes (one PCIe write per 64 B).
    pub payload: DmaSchedule,
    /// Pacing of the descriptor writeback lines (after the coalescing
    /// delay).
    pub descriptor: DmaSchedule,
    /// TLP metadata of the header line (line 0). Payload-line metadata
    /// is derived on demand via [`RxDma::line_meta`] — only the header
    /// carries the header/burst flags, so storing one meta per line was
    /// a per-packet allocation carrying no information.
    pub head_meta: TlpMeta,
    /// Steering-policy domain of the queue the packet landed on (from
    /// [`NicConfig::queue_policy_domain`]; 0 when unconfigured).
    pub policy_domain: u16,
    /// How the Flow Director resolved the queue, so the host can account
    /// the perfect/ATR/RSS steering mix and attribute mis-steers.
    pub steer: SteeringSource,
}

impl RxDma {
    /// Time the descriptor becomes visible to the polling driver.
    pub fn visible_at(&self) -> SimTime {
        self.descriptor.done()
    }

    /// TLP metadata of payload line `i` (line 0 is the header line).
    #[inline]
    pub fn line_meta(&self, i: u32) -> TlpMeta {
        if i == 0 {
            self.head_meta
        } else {
            TlpMeta {
                is_header: false,
                is_burst: false,
                ..self.head_meta
            }
        }
    }
}

/// NIC-level counters.
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Packets successfully queued.
    pub rx_packets: Counter,
    /// Bytes successfully queued.
    pub rx_bytes: Counter,
    /// Packets dropped because the destination ring was full.
    pub rx_drops: Counter,
    /// Packets transmitted (TX path).
    pub tx_packets: Counter,
    /// Descriptor writebacks performed.
    pub desc_writebacks: Counter,
}

/// Per-queue receive counters (the device-level breakdown of
/// [`NicStats::rx_packets`] / [`NicStats::rx_drops`], needed to attribute
/// load and loss to the tenant that owns each queue).
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Packets successfully queued on this queue.
    pub rx_packets: Counter,
    /// Packets dropped because this queue's ring was full.
    pub rx_drops: Counter,
}

/// The NIC model.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::{Addr, CoreId};
/// use idio_engine::time::SimTime;
/// use idio_net::packet::{Dscp, FiveTuple, Packet};
/// use idio_nic::nic::{Nic, NicConfig, RingLayout};
///
/// let cfg = NicConfig::per_core_queues(&[CoreId::new(0)]);
/// let layout = vec![RingLayout {
///     buf_base: Addr::new(0x10_0000),
///     desc_base: Addr::new(0x50_0000),
/// }];
/// let mut nic = Nic::new(cfg, layout);
/// let pkt = Packet::new(0, 1514, FiveTuple::default(), Dscp::BEST_EFFORT);
/// let dma = nic.rx_packet(SimTime::ZERO, pkt).expect("ring has space");
/// assert_eq!(dma.payload.lines, 24);
/// assert!(dma.line_meta(0).is_header);
/// assert!(dma.visible_at() > dma.payload.done());
/// ```
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    rings: Vec<RxRing>,
    flow_director: FlowDirector,
    classifier: IdioClassifier,
    dma: DmaEngine,
    stats: NicStats,
    queue_stats: Vec<QueueStats>,
    num_cores: usize,
}

impl Nic {
    /// Creates a NIC with the given queue layouts (one per configured
    /// queue).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `layouts` does not match
    /// the queue count.
    pub fn new(cfg: NicConfig, layouts: Vec<RingLayout>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid NIC config: {e}");
        }
        assert_eq!(
            layouts.len(),
            cfg.queue_core.len(),
            "one ring layout per queue required"
        );
        let rings = layouts
            .iter()
            .map(|l| RxRing::new(cfg.ring_size, l.buf_base, l.desc_base))
            .collect();
        let num_cores = cfg
            .queue_core
            .iter()
            .map(|c| c.index() + 1)
            .max()
            .unwrap_or(1);
        let mut flow_director = FlowDirector::with_tables(
            cfg.queue_core.len() as u16,
            cfg.perfect_filter_entries,
            cfg.filter_table_entries,
        );
        flow_director.set_atr_lifetime(cfg.atr_lifetime);
        let classifier = IdioClassifier::new(cfg.classifier.clone(), num_cores);
        let dma = DmaEngine::new(cfg.dma);
        let queue_stats = (0..cfg.queue_core.len())
            .map(|_| QueueStats::default())
            .collect();
        Nic {
            cfg,
            rings,
            flow_director,
            classifier,
            dma,
            stats: NicStats::default(),
            queue_stats,
            num_cores,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// NIC counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Per-queue receive counters, indexed by queue.
    pub fn queue_stats(&self) -> &[QueueStats] {
        &self.queue_stats
    }

    /// The Flow Director (steering-mix counters and table occupancy).
    pub fn flow_director(&self) -> &FlowDirector {
        &self.flow_director
    }

    /// The Flow Director (to install EP filters or drive ATR learning).
    pub fn flow_director_mut(&mut self) -> &mut FlowDirector {
        &mut self.flow_director
    }

    /// The receive ring of `queue`.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn ring(&self, queue: QueueId) -> &RxRing {
        &self.rings[queue.index()]
    }

    /// Mutable access to the receive ring of `queue` (the driver side:
    /// `pop_completed` / `free`).
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn ring_mut(&mut self, queue: QueueId) -> &mut RxRing {
        &mut self.rings[queue.index()]
    }

    /// Number of cores addressable by this NIC's queues.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Handles one inbound packet: steer, classify, reserve a descriptor,
    /// and pace its DMA. Returns `None` (and counts a drop) when the
    /// destination ring is full.
    pub fn rx_packet(&mut self, now: SimTime, packet: Packet) -> Option<RxDma> {
        let (queue, steer) = self.flow_director.lookup(now, &packet.flow);
        let dest_core = self.cfg.queue_core[queue.index()];
        let class = self.classifier.classify(now, &packet, dest_core);

        let slot = match self.rings[queue.index()].reserve(packet, now) {
            Ok(s) => s,
            // Ring-full and pool-starved drops both land here; the pool's
            // own `starved` counter attributes the cause.
            Err(_) => {
                self.stats.rx_drops.inc();
                self.queue_stats[queue.index()].rx_drops.inc();
                return None;
            }
        };
        self.stats.rx_packets.inc();
        self.stats.rx_bytes.add(u64::from(packet.len));
        self.queue_stats[queue.index()].rx_packets.inc();

        let lines = packet.lines();
        let payload = self.dma.schedule(now, lines);
        let head_meta = TlpMeta {
            dest_core,
            app_class: class.app_class,
            is_header: true,
            is_burst: class.burst_started,
        };

        // Descriptor writeback: coalesced, visible after the delay.
        let desc_lines = (DESC_BYTES / 64) as u32;
        let desc_start = payload.done() + self.cfg.dma.desc_writeback_delay;
        let descriptor = DmaSchedule {
            first: desc_start,
            gap: self.cfg.dma.line_time(),
            lines: desc_lines,
        };
        self.stats.desc_writebacks.inc();

        let policy_domain = self
            .cfg
            .queue_policy_domain
            .get(queue.index())
            .copied()
            .unwrap_or(0);

        Some(RxDma {
            slot,
            queue,
            dest_core,
            class,
            payload,
            descriptor,
            head_meta,
            policy_domain,
            steer,
        })
    }

    /// Schedules the PCIe reads for transmitting `lines` cache lines
    /// (zero-copy TX of a forwarded packet). Returns the read pacing.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn tx_packet(&mut self, now: SimTime, lines: u32) -> DmaSchedule {
        let sched = self.dma.schedule(now, lines);
        self.stats.tx_packets.inc();
        sched
    }

    /// Encodes a line's metadata into a TLP header (exercises the Fig. 7
    /// encoding; the simulator ships metadata in decoded form for speed,
    /// but the encoding is validated here and in tests).
    ///
    /// # Errors
    ///
    /// Returns an error if the destination core exceeds the 6-bit encoding.
    pub fn encode_tlp(meta: TlpMeta) -> Result<TlpHeader, crate::tlp::CoreRangeError> {
        TlpHeader::encode(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_cache::addr::Addr;
    use idio_net::packet::{Dscp, FiveTuple};

    fn nic(cores: usize, ring_size: u32) -> Nic {
        let core_ids: Vec<CoreId> = (0..cores as u16).map(CoreId::new).collect();
        let mut cfg = NicConfig::per_core_queues(&core_ids);
        cfg.ring_size = ring_size;
        let layouts = (0..cores as u64)
            .map(|i| RingLayout {
                buf_base: Addr::new(0x100_0000 + i * 0x40_0000),
                desc_base: Addr::new(0x800_0000 + i * 0x10_0000),
            })
            .collect();
        Nic::new(cfg, layouts)
    }

    fn pkt(id: u64, port: u16) -> Packet {
        Packet::new(
            id,
            1514,
            FiveTuple::udp(1, 2, 1000, port),
            Dscp::BEST_EFFORT,
        )
    }

    #[test]
    fn rx_reserves_and_paces() {
        let mut n = nic(1, 8);
        let dma = n.rx_packet(SimTime::ZERO, pkt(0, 1)).unwrap();
        assert_eq!(dma.payload.lines, 24);
        assert_eq!(dma.descriptor.lines, 2);
        // Descriptor lands after payload + 1.9 us coalescing delay.
        let gap = dma.descriptor.first - dma.payload.done();
        assert_eq!(gap, DmaConfig::default().desc_writeback_delay);
        assert_eq!(n.stats().rx_packets.get(), 1);
    }

    #[test]
    fn ring_full_drops_are_counted() {
        let mut n = nic(1, 2);
        assert!(n.rx_packet(SimTime::ZERO, pkt(0, 1)).is_some());
        assert!(n.rx_packet(SimTime::ZERO, pkt(1, 1)).is_some());
        assert!(n.rx_packet(SimTime::ZERO, pkt(2, 1)).is_none());
        assert_eq!(n.stats().rx_drops.get(), 1);
        assert_eq!(n.stats().rx_packets.get(), 2);
        assert_eq!(n.queue_stats()[0].rx_packets.get(), 2);
        assert_eq!(n.queue_stats()[0].rx_drops.get(), 1);
    }

    #[test]
    fn queue_stats_attribute_per_queue() {
        let mut n = nic(2, 8);
        let flow = FiveTuple::udp(1, 2, 1000, 7);
        n.flow_director_mut().install_perfect(flow, QueueId(1));
        let _ = n.rx_packet(SimTime::ZERO, Packet::new(0, 1514, flow, Dscp::BEST_EFFORT));
        assert_eq!(n.queue_stats()[1].rx_packets.get(), 1);
        assert_eq!(n.queue_stats()[0].rx_packets.get(), 0);
    }

    #[test]
    fn policy_domain_is_stamped_per_queue() {
        let core_ids = [CoreId::new(0), CoreId::new(1)];
        let mut cfg = NicConfig::per_core_queues(&core_ids);
        cfg.ring_size = 8;
        cfg.queue_policy_domain = vec![0, 3];
        let layouts = (0..2u64)
            .map(|i| RingLayout {
                buf_base: Addr::new(0x100_0000 + i * 0x40_0000),
                desc_base: Addr::new(0x800_0000 + i * 0x10_0000),
            })
            .collect();
        let mut n = Nic::new(cfg, layouts);
        let flow = FiveTuple::udp(1, 2, 1000, 7);
        n.flow_director_mut().install_perfect(flow, QueueId(1));
        let dma = n
            .rx_packet(SimTime::ZERO, Packet::new(0, 1514, flow, Dscp::BEST_EFFORT))
            .unwrap();
        assert_eq!(dma.policy_domain, 3);
        // Unconfigured (empty) map means everything is domain 0.
        let mut plain = nic(1, 8);
        assert_eq!(
            plain
                .rx_packet(SimTime::ZERO, pkt(0, 1))
                .unwrap()
                .policy_domain,
            0
        );
    }

    #[test]
    fn mismatched_policy_domain_length_rejected() {
        let mut cfg = NicConfig::per_core_queues(&[CoreId::new(0), CoreId::new(1)]);
        cfg.queue_policy_domain = vec![0];
        assert!(cfg.validate().unwrap_err().contains("queue_policy_domain"));
    }

    #[test]
    fn perfect_filters_steer_to_pinned_queue() {
        let mut n = nic(2, 8);
        let flow = FiveTuple::udp(1, 2, 1000, 7);
        n.flow_director_mut().install_perfect(flow, QueueId(1));
        let dma = n
            .rx_packet(SimTime::ZERO, Packet::new(0, 1514, flow, Dscp::BEST_EFFORT))
            .unwrap();
        assert_eq!(dma.queue, QueueId(1));
        assert_eq!(dma.dest_core, CoreId::new(1));
    }

    #[test]
    fn first_line_is_header_and_carries_burst() {
        let mut n = nic(1, 8);
        let dma = n.rx_packet(SimTime::ZERO, pkt(0, 1)).unwrap();
        assert!(dma.line_meta(0).is_header);
        assert!(dma.line_meta(0).is_burst, "MTU frame crosses rxBurstTHR");
        assert!((1..dma.payload.lines)
            .map(|i| dma.line_meta(i))
            .all(|m| !m.is_header && !m.is_burst));
    }

    #[test]
    fn class1_dscp_propagates_to_all_lines() {
        let mut n = nic(1, 8);
        let p = Packet::new(0, 1514, FiveTuple::udp(1, 2, 3, 4), Dscp::CLASS1_DEFAULT);
        let dma = n.rx_packet(SimTime::ZERO, p).unwrap();
        assert!((0..dma.payload.lines)
            .map(|i| dma.line_meta(i))
            .all(|m| m.app_class == AppClass::Class1));
        // Metadata survives the Fig. 7 TLP encoding for payload lines.
        let tlp = Nic::encode_tlp(dma.line_meta(1)).unwrap();
        assert_eq!(tlp.decode().app_class, AppClass::Class1);
    }

    #[test]
    fn rx_and_tx_share_the_link() {
        let mut n = nic(1, 8);
        let dma = n.rx_packet(SimTime::ZERO, pkt(0, 1)).unwrap();
        let tx = n.tx_packet(SimTime::ZERO, 24);
        assert_eq!(tx.first, dma.payload.done(), "TX queues behind RX DMA");
    }

    #[test]
    #[should_panic(expected = "one ring layout per queue")]
    fn layout_count_must_match() {
        let cfg = NicConfig::per_core_queues(&[CoreId::new(0), CoreId::new(1)]);
        let _ = Nic::new(
            cfg,
            vec![RingLayout {
                buf_base: Addr::new(0),
                desc_base: Addr::new(0x1000),
            }],
        );
    }
}
