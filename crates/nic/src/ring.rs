//! RX descriptor rings and their DMA buffers.
//!
//! A receive queue is a circular ring of descriptors. The NIC fills
//! descriptors at its *head*; the software stack consumes completed
//! descriptors and, after the packet is fully processed, advances the
//! *tail* to return buffers to the NIC (Fig. 3 of the paper). Each slot
//! owns a fixed, MTU-sized DMA buffer (2 KiB) and a descriptor record
//! (128 B), exactly the run-to-completion recycling model the paper
//! analyses.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use idio_cache::addr::{Addr, LINE_SIZE};
use idio_engine::time::SimTime;
use idio_net::packet::Packet;
use idio_pool::BufPool;

/// Default DMA buffer entry size: MTU packets round up to 2 KiB (Sec. IV-A).
pub const DEFAULT_BUF_BYTES: u64 = 2048;
/// Descriptor record size (Sec. III, observation 1).
pub const DESC_BYTES: u64 = 128;

/// Why [`RxRing::reserve`] dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// The ring had no free descriptor.
    RingFull,
    /// The queue's recycling mbuf pool had no free buffer (allocation
    /// outran recycling; counted in the pool's `starved` stat).
    PoolStarved,
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::RingFull => f.write_str("rx ring full; packet dropped"),
            ReserveError::PoolStarved => f.write_str("mbuf pool starved; packet dropped"),
        }
    }
}

impl Error for ReserveError {}

/// A filled RX descriptor handed to the software stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxSlot {
    /// Ring slot index.
    pub slot: u32,
    /// Base address of the slot's DMA buffer.
    pub buf: Addr,
    /// Base address of the slot's descriptor record.
    pub desc: Addr,
    /// The received packet.
    pub packet: Packet,
    /// Arrival time of the packet at the NIC (for latency accounting).
    pub arrived_at: SimTime,
}

/// A receive descriptor ring with fixed per-slot DMA buffers.
///
/// Invariants (checked in debug builds and property tests):
/// * `0 <= inflight + completed <= size`, where *inflight* slots have been
///   reserved by the NIC but not yet written back, and *completed* slots
///   await software consumption;
/// * slots are consumed and freed strictly in FIFO order.
///
/// # Examples
///
/// ```
/// use idio_cache::addr::Addr;
/// use idio_engine::time::SimTime;
/// use idio_net::packet::{Dscp, FiveTuple, Packet};
/// use idio_nic::ring::RxRing;
///
/// let mut ring = RxRing::new(4, Addr::new(0x10000), Addr::new(0x20000));
/// let pkt = Packet::new(0, 1514, FiveTuple::default(), Dscp::BEST_EFFORT);
/// let slot = ring.reserve(pkt, SimTime::ZERO)?;
/// ring.complete(slot.slot);
/// let batch = ring.pop_completed(32);
/// assert_eq!(batch.len(), 1);
/// ring.free(1);
/// # Ok::<(), idio_nic::ring::ReserveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RxRing {
    size: u32,
    desc_base: Addr,
    desc_stride: u64,
    /// The queue's mbuf pool: buffer allocation per reserved descriptor.
    pool: BufPool,
    /// NIC producer cursor (absolute count of reservations).
    head: u64,
    /// Software free cursor (absolute count of freed slots).
    tail: u64,
    /// Reserved-but-not-yet-completed slots, FIFO.
    inflight: VecDeque<RxSlot>,
    /// Completed slots awaiting software consumption, FIFO.
    completed: VecDeque<RxSlot>,
}

impl RxRing {
    /// Creates a ring of `size` slots with buffers at `buf_base` (2 KiB
    /// stride) and descriptors at `desc_base` (128 B stride). The implicit
    /// mbuf pool is the status quo: one fixed buffer per ring slot, no
    /// LLC budget.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u32, buf_base: Addr, desc_base: Addr) -> Self {
        let pool = BufPool::unbudgeted_dram(
            buf_base,
            DEFAULT_BUF_BYTES,
            (DEFAULT_BUF_BYTES / LINE_SIZE) as u32,
        );
        RxRing::with_pool(size, desc_base, pool)
    }

    /// Creates a ring of `size` slots drawing buffers from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_pool(size: u32, desc_base: Addr, pool: BufPool) -> Self {
        assert!(size > 0, "ring must have at least one slot");
        RxRing {
            size,
            desc_base,
            desc_stride: DESC_BYTES,
            pool,
            head: 0,
            tail: 0,
            inflight: VecDeque::new(),
            completed: VecDeque::new(),
        }
    }

    /// Replaces the ring's mbuf pool. Only legal before any packet has
    /// been reserved (the system installs configured pools right after
    /// NIC construction).
    ///
    /// # Panics
    ///
    /// Panics if the ring has already seen traffic.
    pub fn install_pool(&mut self, pool: BufPool) {
        assert_eq!(self.head, 0, "pool installed on a ring with traffic");
        self.pool = pool;
    }

    /// The ring's mbuf pool (stats, budget, mode).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Ring capacity in slots.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of slots currently owned by the NIC or awaiting consumption.
    pub fn occupied(&self) -> u32 {
        (self.head - self.tail) as u32
    }

    /// Number of free slots available to the NIC.
    pub fn free_slots(&self) -> u32 {
        self.size - self.occupied()
    }

    /// The *use distance* of Fig. 3: packets received but not yet freed.
    pub fn use_distance(&self) -> u32 {
        self.occupied()
    }

    /// Byte span of all DMA buffers (for address-map layout).
    pub fn buf_region_bytes(&self) -> u64 {
        DEFAULT_BUF_BYTES * u64::from(self.size)
    }

    /// Byte span of the descriptor array.
    pub fn desc_region_bytes(&self) -> u64 {
        self.desc_stride * u64::from(self.size)
    }

    /// Buffer base address of pool slot `slot`.
    pub fn buf_addr(&self, slot: u32) -> Addr {
        debug_assert!(slot < self.size);
        self.pool.buf_addr(slot)
    }

    /// Descriptor base address of `slot`.
    pub fn desc_addr(&self, slot: u32) -> Addr {
        debug_assert!(slot < self.size);
        self.desc_base + self.desc_stride * u64::from(slot)
    }

    /// NIC side: reserves the next slot for `packet` and allocates its
    /// DMA buffer from the queue's pool.
    ///
    /// # Errors
    ///
    /// Returns [`ReserveError::RingFull`] when no free descriptor exists,
    /// or [`ReserveError::PoolStarved`] when a recycling pool has no free
    /// buffer. Either way the packet is dropped — the caller must count
    /// it — and neither the descriptor cursor nor the pool advance.
    pub fn reserve(&mut self, packet: Packet, arrived_at: SimTime) -> Result<RxSlot, ReserveError> {
        if self.free_slots() == 0 {
            return Err(ReserveError::RingFull);
        }
        let slot = (self.head % u64::from(self.size)) as u32;
        let buf = self
            .pool
            .alloc(slot)
            .map_err(|_| ReserveError::PoolStarved)?;
        self.head += 1;
        let rx = RxSlot {
            slot,
            buf,
            desc: self.desc_addr(slot),
            packet,
            arrived_at,
        };
        self.inflight.push_back(rx);
        Ok(rx)
    }

    /// NIC side: marks `slot`'s descriptor as written back, making the
    /// packet visible to the polling driver. Slots complete in FIFO order.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not the oldest in-flight slot.
    pub fn complete(&mut self, slot: u32) {
        let rx = self
            .inflight
            .pop_front()
            .expect("complete() with no in-flight slot");
        assert_eq!(rx.slot, slot, "descriptors must complete in order");
        self.completed.push_back(rx);
    }

    /// Software side: number of completed descriptors ready to poll.
    pub fn completed_count(&self) -> u32 {
        self.completed.len() as u32
    }

    /// Software side: takes up to `max` completed descriptors (the PMD's
    /// `rx_burst`).
    pub fn pop_completed(&mut self, max: u32) -> Vec<RxSlot> {
        let n = max.min(self.completed.len() as u32) as usize;
        self.completed.drain(..n).collect()
    }

    /// Software side: returns `n` processed buffers to the NIC (tail
    /// advance) without naming them — only legal on status-quo `Dram`
    /// pools, where buffer identity is the ring slot.
    ///
    /// # Panics
    ///
    /// Panics if freeing more slots than are consumed-but-unfreed, or if
    /// the queue uses a recycling pool (free by address via
    /// [`release`](Self::release) instead).
    pub fn free(&mut self, n: u32) {
        self.advance_tail(n);
        self.pool.free_n(n);
    }

    /// Software side: returns one processed buffer to the NIC *and* to
    /// the mbuf pool, identified by its base address. This is the
    /// completion-time free: for recycling pools the buffer goes back on
    /// top of the LIFO free list here, and the caller self-invalidates
    /// its payload lines when [`BufPool::invalidate_on_free`] says so.
    ///
    /// Returns the freed pool slot id.
    ///
    /// # Panics
    ///
    /// Panics on tail over-advance, on a buffer the pool never handed
    /// out, or on a double free (recycling pools track per-slot liveness).
    pub fn release(&mut self, buf: Addr) -> u32 {
        self.advance_tail(1);
        self.pool.free_buf(buf)
    }

    fn advance_tail(&mut self, n: u32) {
        let consumed =
            self.head - self.tail - self.inflight.len() as u64 - self.completed.len() as u64;
        assert!(
            u64::from(n) <= consumed,
            "freeing {n} slots but only {consumed} are consumed"
        );
        self.tail += u64::from(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idio_net::packet::{Dscp, FiveTuple};

    fn pkt(id: u64) -> Packet {
        Packet::new(id, 1514, FiveTuple::default(), Dscp::BEST_EFFORT)
    }

    fn ring(size: u32) -> RxRing {
        RxRing::new(size, Addr::new(0x100000), Addr::new(0x200000))
    }

    #[test]
    fn addresses_are_strided() {
        let r = ring(8);
        assert_eq!(r.buf_addr(0), Addr::new(0x100000));
        assert_eq!(r.buf_addr(3), Addr::new(0x100000 + 3 * 2048));
        assert_eq!(r.desc_addr(5), Addr::new(0x200000 + 5 * 128));
        assert_eq!(r.buf_region_bytes(), 8 * 2048);
        assert_eq!(r.desc_region_bytes(), 8 * 128);
    }

    #[test]
    fn fill_consume_free_cycle() {
        let mut r = ring(4);
        for i in 0..4 {
            let s = r.reserve(pkt(i), SimTime::ZERO).unwrap();
            assert_eq!(s.slot, i as u32);
        }
        assert_eq!(
            r.reserve(pkt(9), SimTime::ZERO),
            Err(ReserveError::RingFull)
        );
        assert_eq!(r.use_distance(), 4);
        for i in 0..4 {
            r.complete(i);
        }
        let batch = r.pop_completed(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].packet.id, 0);
        r.free(2);
        assert_eq!(r.free_slots(), 2);
        // Slots wrap around.
        let s = r.reserve(pkt(10), SimTime::ZERO).unwrap();
        assert_eq!(s.slot, 0);
    }

    #[test]
    fn completion_is_fifo() {
        let mut r = ring(4);
        r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.reserve(pkt(1), SimTime::ZERO).unwrap();
        r.complete(0);
        r.complete(1);
        assert_eq!(r.completed_count(), 2);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_completion_panics() {
        let mut r = ring(4);
        r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.reserve(pkt(1), SimTime::ZERO).unwrap();
        r.complete(1);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut r = ring(4);
        r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.complete(0);
        // Not yet consumed by pop_completed.
        r.free(1);
    }

    #[test]
    fn free_requires_consumption() {
        let mut r = ring(4);
        r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.complete(0);
        r.pop_completed(32);
        r.free(1);
        assert_eq!(r.free_slots(), 4);
    }

    #[test]
    fn use_distance_tracks_backlog() {
        let mut r = ring(8);
        for i in 0..5 {
            r.reserve(pkt(i), SimTime::ZERO).unwrap();
        }
        for i in 0..5 {
            r.complete(i);
        }
        r.pop_completed(3);
        r.free(3);
        assert_eq!(r.use_distance(), 2);
    }

    #[test]
    fn arrival_time_preserved() {
        let mut r = ring(2);
        let t = SimTime::from_us(7);
        let s = r.reserve(pkt(0), t).unwrap();
        assert_eq!(s.arrived_at, t);
    }

    fn recycle_ring(size: u32, slots: u32) -> RxRing {
        let pool = BufPool::new(
            idio_pool::PoolMode::Recycle { slots },
            Addr::new(0x100000),
            DEFAULT_BUF_BYTES,
            32,
            u64::from(slots) * 32,
        );
        RxRing::with_pool(size, Addr::new(0x200000), pool)
    }

    #[test]
    fn recycle_pool_starves_before_the_ring_fills() {
        let mut r = recycle_ring(4, 2);
        let a = r.reserve(pkt(0), SimTime::ZERO).unwrap();
        let b = r.reserve(pkt(1), SimTime::ZERO).unwrap();
        // Two descriptors still free, but the pool is out of buffers.
        assert_eq!(
            r.reserve(pkt(2), SimTime::ZERO),
            Err(ReserveError::PoolStarved)
        );
        assert_eq!(r.pool().stats().starved, 1);
        // The failed reserve consumed neither a descriptor nor a buffer.
        assert_eq!(r.free_slots(), 2);
        // Completion-time release puts b back on top of the LIFO list.
        r.complete(a.slot);
        r.complete(b.slot);
        r.pop_completed(32);
        r.release(b.buf);
        let c = r.reserve(pkt(3), SimTime::ZERO).unwrap();
        assert_eq!(c.buf, b.buf, "hottest buffer reused first");
        assert_eq!(r.pool().stats().recycled, 1);
    }

    #[test]
    fn release_returns_buffers_by_address_on_dram_pools_too() {
        let mut r = ring(4);
        let s = r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.complete(s.slot);
        r.pop_completed(32);
        assert_eq!(r.release(s.buf), s.slot);
        assert_eq!(r.free_slots(), 4);
    }

    #[test]
    #[should_panic(expected = "free by buffer address")]
    fn anonymous_free_on_recycle_pool_panics() {
        let mut r = recycle_ring(4, 2);
        let s = r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.complete(s.slot);
        r.pop_completed(32);
        r.free(1);
    }

    #[test]
    #[should_panic(expected = "ring with traffic")]
    fn late_pool_install_panics() {
        let mut r = ring(4);
        r.reserve(pkt(0), SimTime::ZERO).unwrap();
        r.install_pool(BufPool::unbudgeted_dram(Addr::new(0), 2048, 32));
    }
}
