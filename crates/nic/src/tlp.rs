//! PCIe Transaction Layer Packet (TLP) header metadata encoding (Fig. 7).
//!
//! IDIO transfers the classifier's per-packet metadata from the NIC to the
//! on-chip IDIO controller inside the *reserved* bits of each DMA request's
//! TLP header:
//!
//! * the destination core is encoded in 6 reserved bits — bit 23, bits
//!   19:16, and bit 11 of the first header dword;
//! * the all-ones core pattern (63) marks **application class 1** (so at
//!   most 63 cores are addressable);
//! * the header/payload flag lives at reserved bit 31 and the burst flag at
//!   reserved bit 10 of the second header dword.
//!
//! Encoding and decoding are exact inverses (property-tested), and encoding
//! never touches non-reserved bits.

use std::error::Error;
use std::fmt;

use idio_cache::addr::CoreId;

/// The application class carried by a DMA transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Short use distance: keep the data on-chip (default).
    Class0,
    /// Long use distance / rarely-touched payload: candidate for selective
    /// direct DRAM access.
    Class1,
}

/// Per-DMA-transaction metadata produced by the IDIO classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlpMeta {
    /// Destination core for the packet. Ignored (and lost in encoding) for
    /// class-1 transactions, which use the all-ones core pattern.
    pub dest_core: CoreId,
    /// Application class.
    pub app_class: AppClass,
    /// Whether this transaction carries the first (header) line of a
    /// packet.
    pub is_header: bool,
    /// Whether the classifier detected the start of an RX burst on this
    /// transaction's destination core.
    pub is_burst: bool,
}

/// Error: the destination core does not fit the 6-bit TLP encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRangeError {
    /// The offending core id.
    pub core: CoreId,
}

impl fmt::Display for CoreRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} exceeds the 62 addressable by IDIO's 6-bit TLP encoding",
            self.core
        )
    }
}

impl Error for CoreRangeError {}

/// A (stylised) PCIe memory-write TLP header: four dwords, of which we model
/// the reserved-bit usage exactly and leave the architected fields zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlpHeader {
    /// The four header dwords.
    pub dwords: [u32; 4],
}

/// Core-id bit positions in dword 0, most-significant first.
const CORE_BITS: [u32; 6] = [23, 19, 18, 17, 16, 11];
/// Header/payload flag position in dword 1.
const HEADER_BIT: u32 = 31;
/// Burst flag position in dword 1.
const BURST_BIT: u32 = 10;
/// All-ones 6-bit pattern marking application class 1.
const CLASS1_PATTERN: u8 = 0x3f;

impl TlpHeader {
    /// Encodes classifier metadata into the reserved bits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreRangeError`] if a class-0 transaction targets a core
    /// above 62.
    pub fn encode(meta: TlpMeta) -> Result<TlpHeader, CoreRangeError> {
        let core6: u8 = match meta.app_class {
            AppClass::Class1 => CLASS1_PATTERN,
            AppClass::Class0 => {
                let c = meta.dest_core.get();
                if c >= 63 {
                    return Err(CoreRangeError {
                        core: meta.dest_core,
                    });
                }
                c as u8
            }
        };
        let mut dwords = [0u32; 4];
        for (i, bit) in CORE_BITS.iter().enumerate() {
            // CORE_BITS[0] carries the MSB of the 6-bit value.
            let v = (core6 >> (5 - i)) & 1;
            dwords[0] |= u32::from(v) << bit;
        }
        if meta.is_header {
            dwords[1] |= 1 << HEADER_BIT;
        }
        if meta.is_burst {
            dwords[1] |= 1 << BURST_BIT;
        }
        Ok(TlpHeader { dwords })
    }

    /// Decodes the reserved bits back into classifier metadata.
    ///
    /// Class-1 transactions decode with `dest_core == CoreId::new(0)`
    /// (the controller ignores the core for class 1).
    pub fn decode(&self) -> TlpMeta {
        let mut core6: u8 = 0;
        for bit in CORE_BITS {
            core6 = (core6 << 1) | ((self.dwords[0] >> bit) & 1) as u8;
        }
        let app_class = if core6 == CLASS1_PATTERN {
            AppClass::Class1
        } else {
            AppClass::Class0
        };
        TlpMeta {
            dest_core: if app_class == AppClass::Class1 {
                CoreId::new(0)
            } else {
                CoreId::new(u16::from(core6))
            },
            app_class,
            is_header: (self.dwords[1] >> HEADER_BIT) & 1 == 1,
            is_burst: (self.dwords[1] >> BURST_BIT) & 1 == 1,
        }
    }

    /// The mask of dword-0 bits the encoding may set (for verifying that
    /// architected fields are untouched).
    pub fn reserved_mask_dword0() -> u32 {
        CORE_BITS.iter().fold(0, |m, b| m | (1 << b))
    }

    /// The mask of dword-1 bits the encoding may set.
    pub fn reserved_mask_dword1() -> u32 {
        (1 << HEADER_BIT) | (1 << BURST_BIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(core: u16, class: AppClass, header: bool, burst: bool) -> TlpMeta {
        TlpMeta {
            dest_core: CoreId::new(core),
            app_class: class,
            is_header: header,
            is_burst: burst,
        }
    }

    #[test]
    fn roundtrip_all_cores_and_flags() {
        for core in 0..63u16 {
            for header in [false, true] {
                for burst in [false, true] {
                    let m = meta(core, AppClass::Class0, header, burst);
                    let h = TlpHeader::encode(m).unwrap();
                    assert_eq!(h.decode(), m, "core {core} h{header} b{burst}");
                }
            }
        }
    }

    #[test]
    fn class1_uses_all_ones_pattern() {
        let m = meta(7, AppClass::Class1, false, true);
        let h = TlpHeader::encode(m).unwrap();
        let d = h.decode();
        assert_eq!(d.app_class, AppClass::Class1);
        assert!(d.is_burst);
        // The core id is deliberately not preserved for class 1.
        assert_eq!(d.dest_core, CoreId::new(0));
        // All six core bits are set.
        assert_eq!(
            h.dwords[0] & TlpHeader::reserved_mask_dword0(),
            TlpHeader::reserved_mask_dword0()
        );
    }

    #[test]
    fn core_63_rejected_for_class0() {
        let err = TlpHeader::encode(meta(63, AppClass::Class0, false, false)).unwrap_err();
        assert_eq!(err.core, CoreId::new(63));
        assert!(err.to_string().contains("6-bit"));
    }

    #[test]
    fn encoding_stays_within_reserved_bits() {
        let h = TlpHeader::encode(meta(62, AppClass::Class0, true, true)).unwrap();
        assert_eq!(h.dwords[0] & !TlpHeader::reserved_mask_dword0(), 0);
        assert_eq!(h.dwords[1] & !TlpHeader::reserved_mask_dword1(), 0);
        assert_eq!(h.dwords[2], 0);
        assert_eq!(h.dwords[3], 0);
    }

    #[test]
    fn bit_positions_match_figure7() {
        // Core 0b100001 (33): MSB at bit 23, LSB at bit 11.
        let h = TlpHeader::encode(meta(33, AppClass::Class0, false, false)).unwrap();
        assert_eq!(h.dwords[0], (1 << 23) | (1 << 11));
        // Header flag bit 31, burst flag bit 10, both in dword 1.
        let h2 = TlpHeader::encode(meta(0, AppClass::Class0, true, true)).unwrap();
        assert_eq!(h2.dwords[1], (1 << 31) | (1 << 10));
    }
}
