//! TX descriptor rings (the egress path of zero-copy forwarders).
//!
//! A transmit queue mirrors the RX structure: software posts descriptors
//! pointing at the buffers to send; the NIC reads the descriptors, DMA-
//! reads the packet data out of the memory hierarchy (the PCIe reads of
//! Fig. 1's egress path), and writes back a completion descriptor that the
//! driver polls to learn the buffer is free. The completion writeback is
//! itself an inbound PCIe write that lands in the DDIO ways.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use idio_cache::addr::Addr;
use idio_engine::time::SimTime;

/// Error: the TX ring is full; the send must be retried later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRingFullError;

impl fmt::Display for TxRingFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("tx ring full; send deferred")
    }
}

impl Error for TxRingFullError {}

/// One posted transmit descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSlot {
    /// Ring slot index.
    pub slot: u32,
    /// Descriptor record address (completion is written here).
    pub desc: Addr,
    /// Buffer to transmit.
    pub buf: Addr,
    /// Cache lines to read out.
    pub lines: u32,
    /// Time the send was posted.
    pub posted_at: SimTime,
}

/// A transmit descriptor ring.
///
/// Invariant: descriptors complete strictly in posting order (the NIC
/// serialises its read DMA on the link).
///
/// # Examples
///
/// ```
/// use idio_cache::addr::Addr;
/// use idio_engine::time::SimTime;
/// use idio_nic::tx::TxRing;
///
/// let mut tx = TxRing::new(4, Addr::new(0x9000));
/// let slot = tx.post(Addr::new(0x40000), 24, SimTime::ZERO)?;
/// assert_eq!(tx.in_flight(), 1);
/// let done = tx.complete();
/// assert_eq!(done.slot, slot.slot);
/// assert_eq!(tx.in_flight(), 0);
/// # Ok::<(), idio_nic::tx::TxRingFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TxRing {
    size: u32,
    desc_base: Addr,
    head: u64,
    pending: VecDeque<TxSlot>,
}

/// Descriptor record size (same 128-byte descriptors as RX).
pub const TX_DESC_BYTES: u64 = crate::ring::DESC_BYTES;

impl TxRing {
    /// Creates a TX ring of `size` slots with descriptors at `desc_base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: u32, desc_base: Addr) -> Self {
        assert!(size > 0, "tx ring must have at least one slot");
        TxRing {
            size,
            desc_base,
            head: 0,
            pending: VecDeque::new(),
        }
    }

    /// Ring capacity.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Posted-but-not-completed sends.
    pub fn in_flight(&self) -> u32 {
        self.pending.len() as u32
    }

    /// Descriptor address of `slot`.
    pub fn desc_addr(&self, slot: u32) -> Addr {
        debug_assert!(slot < self.size);
        self.desc_base + TX_DESC_BYTES * u64::from(slot)
    }

    /// Byte span of the descriptor array (for address-map layout).
    pub fn desc_region_bytes(&self) -> u64 {
        TX_DESC_BYTES * u64::from(self.size)
    }

    /// Software side: posts a send of `lines` lines from `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`TxRingFullError`] when all descriptors are in flight.
    pub fn post(&mut self, buf: Addr, lines: u32, now: SimTime) -> Result<TxSlot, TxRingFullError> {
        if self.in_flight() == self.size {
            return Err(TxRingFullError);
        }
        let slot = (self.head % u64::from(self.size)) as u32;
        self.head += 1;
        let tx = TxSlot {
            slot,
            desc: self.desc_addr(slot),
            buf,
            lines,
            posted_at: now,
        };
        self.pending.push_back(tx);
        Ok(tx)
    }

    /// NIC side: completes the oldest in-flight send (after its data DMA
    /// and completion-descriptor writeback).
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn complete(&mut self) -> TxSlot {
        self.pending
            .pop_front()
            .expect("tx completion with nothing in flight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> TxRing {
        TxRing::new(n, Addr::new(0x30_0000))
    }

    #[test]
    fn post_complete_fifo() {
        let mut tx = ring(4);
        for i in 0..4u64 {
            tx.post(Addr::new(0x1000 * (i + 1)), 16, SimTime::from_ns(i))
                .unwrap();
        }
        assert_eq!(
            tx.post(Addr::new(0x9000), 1, SimTime::ZERO),
            Err(TxRingFullError)
        );
        for i in 0..4u64 {
            let done = tx.complete();
            assert_eq!(done.buf, Addr::new(0x1000 * (i + 1)));
            assert_eq!(done.posted_at, SimTime::from_ns(i));
        }
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn slots_wrap_around() {
        let mut tx = ring(2);
        let a = tx.post(Addr::new(0x1000), 1, SimTime::ZERO).unwrap();
        tx.complete();
        let b = tx.post(Addr::new(0x2000), 1, SimTime::ZERO).unwrap();
        let c = tx.post(Addr::new(0x3000), 1, SimTime::ZERO).unwrap();
        assert_eq!(a.slot, 0);
        assert_eq!(b.slot, 1);
        assert_eq!(c.slot, 0);
    }

    #[test]
    fn descriptor_addresses_stride() {
        let tx = ring(8);
        assert_eq!(tx.desc_addr(0), Addr::new(0x30_0000));
        assert_eq!(tx.desc_addr(3), Addr::new(0x30_0000 + 3 * 128));
        assert_eq!(tx.desc_region_bytes(), 8 * 128);
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn complete_on_empty_panics() {
        ring(1).complete();
    }
}
