//! Randomized property tests for the NIC substrate: TLP metadata encoding
//! is a lossless roundtrip that never touches architected bits, and
//! descriptor rings preserve FIFO order and occupancy bounds under
//! arbitrary fill/complete/consume/free interleavings. Driven by the
//! in-repo deterministic harness (`idio_engine::check`).

use idio_cache::addr::CoreId;
use idio_engine::check::{Cases, Gen};
use idio_engine::time::SimTime;
use idio_net::packet::{Dscp, FiveTuple, Packet};
use idio_nic::ring::RxRing;
use idio_nic::tlp::{AppClass, TlpHeader, TlpMeta};

#[test]
fn tlp_roundtrip_class0() {
    Cases::new(512).run(|g| {
        let meta = TlpMeta {
            dest_core: CoreId::new(g.u16(0..63)),
            app_class: AppClass::Class0,
            is_header: g.bool(),
            is_burst: g.bool(),
        };
        let tlp = TlpHeader::encode(meta).unwrap();
        assert_eq!(tlp.decode(), meta);
        // Architected bits untouched.
        assert_eq!(tlp.dwords[0] & !TlpHeader::reserved_mask_dword0(), 0);
        assert_eq!(tlp.dwords[1] & !TlpHeader::reserved_mask_dword1(), 0);
    });
}

#[test]
fn tlp_class1_decodes_as_class1() {
    Cases::new(512).run(|g| {
        let header = g.bool();
        let burst = g.bool();
        let meta = TlpMeta {
            dest_core: CoreId::new(g.u16(0..u16::MAX)),
            app_class: AppClass::Class1,
            is_header: header,
            is_burst: burst,
        };
        let d = TlpHeader::encode(meta).unwrap().decode();
        assert_eq!(d.app_class, AppClass::Class1);
        assert_eq!(d.is_header, header);
        assert_eq!(d.is_burst, burst);
    });
}

#[test]
fn distinct_class0_metas_encode_distinctly() {
    Cases::new(512).run(|g| {
        let mk_input = |g: &mut Gen| (g.u16(0..63), g.bool(), g.bool());
        let a = mk_input(g);
        let b = mk_input(g);
        let mk = |(c, h, bu): (u16, bool, bool)| TlpMeta {
            dest_core: CoreId::new(c),
            app_class: AppClass::Class0,
            is_header: h,
            is_burst: bu,
        };
        let (ma, mb) = (mk(a), mk(b));
        let (ta, tb) = (
            TlpHeader::encode(ma).unwrap(),
            TlpHeader::encode(mb).unwrap(),
        );
        if ma != mb {
            assert_ne!(ta, tb);
        } else {
            assert_eq!(ta, tb);
        }
    });
}

/// One step of the ring's lifecycle driven by the fuzzer.
#[derive(Debug, Clone, Copy)]
enum RingOp {
    /// NIC receives a packet (reserve).
    Rx,
    /// NIC writes back the oldest in-flight descriptor.
    Complete,
    /// Driver polls up to `n` completed descriptors.
    Poll(u8),
    /// Driver frees one consumed buffer.
    Free,
}

fn ring_op(g: &mut Gen) -> RingOp {
    match g.u64(0..4) {
        0 => RingOp::Rx,
        1 => RingOp::Complete,
        2 => RingOp::Poll(g.u64(1..32) as u8),
        _ => RingOp::Free,
    }
}

#[test]
fn ring_occupancy_and_fifo_hold() {
    Cases::new(256).run(|g| {
        let size = g.u32(1..32);
        let ops = g.vec(1..300, ring_op);
        let mut ring = RxRing::new(
            size,
            idio_cache::addr::Addr::new(0x10_0000),
            idio_cache::addr::Addr::new(0x20_0000),
        );
        let mut next_id = 0u64;
        let mut inflight = 0u32; // reserved, not completed
        let mut completed = 0u32; // completed, not polled
        let mut consumed = 0u32; // polled, not freed
        let mut next_polled_id = 0u64;

        for op in ops {
            match op {
                RingOp::Rx => {
                    let pkt = Packet::new(next_id, 1514, FiveTuple::default(), Dscp::BEST_EFFORT);
                    match ring.reserve(pkt, SimTime::ZERO) {
                        Ok(slot) => {
                            assert_eq!(slot.packet.id, next_id);
                            next_id += 1;
                            inflight += 1;
                        }
                        Err(_) => {
                            assert_eq!(
                                inflight + completed + consumed,
                                size,
                                "ring refuses only when genuinely full"
                            );
                        }
                    }
                }
                RingOp::Complete => {
                    if inflight > 0 {
                        // complete() asserts FIFO internally; just drive it.
                        let slot = ((next_id - u64::from(inflight)) % u64::from(size)) as u32;
                        ring.complete(slot);
                        inflight -= 1;
                        completed += 1;
                    }
                }
                RingOp::Poll(n) => {
                    let got = ring.pop_completed(u32::from(n));
                    assert!(got.len() as u32 <= completed);
                    for s in &got {
                        assert_eq!(s.packet.id, next_polled_id, "strict FIFO consumption");
                        next_polled_id += 1;
                    }
                    completed -= got.len() as u32;
                    consumed += got.len() as u32;
                }
                RingOp::Free => {
                    if consumed > 0 {
                        ring.free(1);
                        consumed -= 1;
                    }
                }
            }
            assert_eq!(ring.use_distance(), inflight + completed + consumed);
            assert_eq!(ring.free_slots(), size - (inflight + completed + consumed));
            assert_eq!(ring.completed_count(), completed);
        }
    });
}

/// Recycling-pool rings under arbitrary rx/complete/poll/release
/// interleavings: reserve fails with `PoolStarved` exactly when the
/// model's free list is empty (and `RingFull` takes precedence), frees
/// happen by buffer address at completion time, and the slot-count
/// invariant `live + free == slots` holds after every step — the
/// double-free / slot-leak guarantee of the satellite-1 audit.
#[test]
fn recycle_ring_conserves_pool_slots() {
    use idio_cache::addr::Addr;
    use idio_nic::ring::ReserveError;
    use idio_pool::{BufPool, PoolMode};

    Cases::new(256).run(|g| {
        let size = g.u32(2..32);
        // Pools smaller than the ring are the interesting case: the pool
        // starves while descriptors are still free.
        let slots = g.u32(1..32).min(size);
        let lines_per_buf = 32u32;
        let mut ring = RxRing::with_pool(
            size,
            Addr::new(0x20_0000),
            BufPool::new(
                PoolMode::Recycle { slots },
                Addr::new(0x10_0000),
                2048,
                lines_per_buf,
                u64::from(slots) * u64::from(lines_per_buf),
            ),
        );

        let mut next_id = 0u64;
        let mut inflight = 0u32; // reserved, not completed
        let mut completed = 0u32; // completed, not polled
        let mut consumed: Vec<idio_cache::addr::Addr> = Vec::new(); // polled bufs, not released
        let mut starved = 0u64;

        for op in g.vec(1..400, ring_op) {
            match op {
                RingOp::Rx => {
                    let pkt = Packet::new(next_id, 1514, FiveTuple::default(), Dscp::BEST_EFFORT);
                    let occupancy = inflight + completed + consumed.len() as u32;
                    let pool_free = ring.pool().available().expect("recycle pool");
                    match ring.reserve(pkt, SimTime::ZERO) {
                        Ok(slot) => {
                            assert!(occupancy < size && pool_free > 0);
                            assert_eq!(slot.packet.id, next_id);
                            next_id += 1;
                            inflight += 1;
                        }
                        Err(ReserveError::RingFull) => {
                            assert_eq!(occupancy, size, "ring-full only when genuinely full");
                        }
                        Err(ReserveError::PoolStarved) => {
                            assert!(occupancy < size, "ring-full takes precedence");
                            assert_eq!(pool_free, 0, "starves only when the free list is empty");
                            starved += 1;
                        }
                    }
                }
                RingOp::Complete => {
                    if inflight > 0 {
                        let slot = ((next_id - u64::from(inflight)) % u64::from(size)) as u32;
                        ring.complete(slot);
                        inflight -= 1;
                        completed += 1;
                    }
                }
                RingOp::Poll(n) => {
                    for s in ring.pop_completed(u32::from(n)) {
                        consumed.push(s.buf);
                        completed -= 1;
                    }
                }
                RingOp::Free => {
                    // Release a random consumed buffer — completion order
                    // is not allocation order.
                    if !consumed.is_empty() {
                        let i = g.u64(0..consumed.len() as u64) as usize;
                        let buf = consumed.swap_remove(i);
                        ring.release(buf);
                    }
                }
            }
            // The pool conserves its slots no matter the interleaving.
            let live = ring.pool().live_bufs();
            let free = ring.pool().available().expect("recycle pool");
            assert_eq!(live + free, slots, "live + free == slots");
            assert_eq!(live, inflight + completed + consumed.len() as u32);
            assert_eq!(ring.pool().stats().starved, starved);
            assert_eq!(ring.use_distance(), live);
        }
    });
}
