//! The classifier driven by real wire bytes: the DSCP and five-tuple the
//! NIC parsing hardware extracts from the serialized Ethernet/IPv4/UDP
//! headers must agree with the structural packet fields, so classifying
//! from bytes matches classifying from the model packet.

use idio_cache::addr::CoreId;
use idio_engine::time::SimTime;
use idio_net::headers::{parse_wire_header, wire_header};
use idio_net::packet::{Dscp, FiveTuple, Packet};
use idio_nic::classifier::{ClassifierConfig, IdioClassifier};
use idio_nic::tlp::AppClass;

fn classify_from_wire(
    cl: &mut IdioClassifier,
    at: SimTime,
    packet: &Packet,
    core: CoreId,
) -> idio_nic::classifier::PacketClass {
    // Serialise the header stack, then parse it back the way the NIC's
    // header-parsing block does, and classify the reconstructed packet.
    let bytes = wire_header(packet);
    let (flow, dscp) = parse_wire_header(&bytes).expect("valid stack");
    let reparsed = Packet::new(packet.id, packet.len, flow, dscp);
    cl.classify(at, &reparsed, core)
}

#[test]
fn wire_and_struct_classification_agree() {
    let mut a = IdioClassifier::new(ClassifierConfig::paper_default(), 2);
    let mut b = IdioClassifier::new(ClassifierConfig::paper_default(), 2);
    for (i, dscp) in [0u8, 8, 0, 46, 8].iter().enumerate() {
        let pkt = Packet::new(
            i as u64,
            1514,
            FiveTuple::udp(10, 20, 1000 + i as u16, 5000),
            Dscp::new(*dscp).unwrap(),
        );
        let t = SimTime::from_ns(i as u64 * 500);
        let from_struct = a.classify(t, &pkt, CoreId::new(0));
        let from_wire = classify_from_wire(&mut b, t, &pkt, CoreId::new(0));
        assert_eq!(from_struct, from_wire, "packet {i}");
    }
}

#[test]
fn class1_marking_survives_the_wire() {
    let mut cl = IdioClassifier::new(ClassifierConfig::paper_default(), 1);
    let pkt = Packet::new(0, 1514, FiveTuple::udp(1, 2, 3, 4), Dscp::CLASS1_DEFAULT);
    let c = classify_from_wire(&mut cl, SimTime::ZERO, &pkt, CoreId::new(0));
    assert_eq!(c.app_class, AppClass::Class1);
}

#[test]
fn flow_director_hash_is_stable_across_the_wire() {
    // The queue a packet steers to must not depend on whether the flow
    // was read from the struct or re-parsed from bytes.
    let flow = FiveTuple::udp(0x0a00_0001, 0x0a00_0002, 41_000, 5000);
    let pkt = Packet::new(0, 1024, flow, Dscp::BEST_EFFORT);
    let bytes = wire_header(&pkt);
    let (reparsed, _) = parse_wire_header(&bytes).unwrap();
    assert_eq!(flow.hash32(), reparsed.hash32());
}
