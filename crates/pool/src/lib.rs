//! # idio-pool
//!
//! Per-queue mbuf pools for the RX path, after RDCA: the last mile of
//! inbound data should run out of a **small LLC-resident buffer pool**
//! recycled fast enough that DMA writes never spill to DRAM.
//!
//! Two modes:
//!
//! * [`PoolMode::Dram`] — the status quo the paper analyses: every ring
//!   slot owns a fixed buffer, the working set is the whole ring, and
//!   under backlog the DMA footprint grows past the DDIO partition
//!   (the *latent-bloat* / *DMA-leak* precondition). Allocation never
//!   fails; allocations whose live footprint exceeds the pool's LLC
//!   budget are counted as `spilled`.
//! * [`PoolMode::Recycle`] — an RDCA-style pool of `slots` buffers sized
//!   to the DDIO partition, recycled through a **LIFO free list** so the
//!   hottest (most recently freed, still cache-resident) buffer is
//!   reused first. When allocation outruns recycling the pool *starves*
//!   (`starved` counter; the NIC drops the packet) instead of growing —
//!   bounding the LLC footprint by construction. Frees are paired with
//!   free-side self-invalidation of the payload lines by the caller
//!   (see [`BufPool::invalidate_on_free`]).
//!
//! The pool is pure bookkeeping: it hands out buffer base addresses and
//! tracks liveness/occupancy; the system simulator charges cache and
//! timing effects.
//!
//! # Examples
//!
//! ```
//! use idio_cache::addr::Addr;
//! use idio_pool::{BufPool, PoolMode};
//!
//! // A 2-slot recycle pool over 2 KiB buffers (32 lines each).
//! let mut p = BufPool::new(
//!     PoolMode::Recycle { slots: 2 },
//!     Addr::new(0x10000),
//!     2048,
//!     32,
//!     64,
//! );
//! let a = p.alloc(0)?;
//! let b = p.alloc(1)?;
//! assert!(p.alloc(2).is_err()); // starved: both buffers live
//! p.free_buf(b);
//! assert_eq!(p.alloc(3)?, b); // LIFO: hottest buffer reused first
//! # drop(a);
//! # Ok::<(), idio_pool::PoolStarvedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use idio_cache::addr::Addr;

/// Configuration-level pool selection, before ring geometry and the DDIO
/// partition are known. Resolved to a [`PoolMode`] by [`PoolSpec::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolSpec {
    /// Status-quo per-ring-slot buffers (unbounded working set).
    Dram,
    /// LLC-resident recycling pool. `slots: None` sizes the pool from the
    /// queue's share of the DDIO partition at resolve time.
    Recycle {
        /// Explicit pool size in buffers, or `None` to derive it.
        slots: Option<u32>,
    },
}

impl PoolSpec {
    /// Resolves the spec against the queue's LLC budget and ring geometry.
    ///
    /// A derived `Recycle` pool holds as many buffers as fit in
    /// `budget_lines` (the queue's share of the DDIO partition), clamped
    /// to `[1, ring_size]`; an explicit slot count is clamped the same way
    /// (a pool larger than the ring can never be fully live).
    pub fn resolve(self, budget_lines: u64, lines_per_buf: u32, ring_size: u32) -> PoolMode {
        match self {
            PoolSpec::Dram => PoolMode::Dram,
            PoolSpec::Recycle { slots } => {
                let fit = budget_lines / u64::from(lines_per_buf.max(1));
                let fit = u32::try_from(fit).unwrap_or(u32::MAX);
                let slots = slots.unwrap_or(fit).clamp(1, ring_size.max(1));
                PoolMode::Recycle { slots }
            }
        }
    }

    /// The scenario-file spelling (`"dram"`, `"recycle"`, `"recycle:N"`).
    pub fn file_name(self) -> String {
        match self {
            PoolSpec::Dram => "dram".into(),
            PoolSpec::Recycle { slots: None } => "recycle".into(),
            PoolSpec::Recycle { slots: Some(n) } => format!("recycle:{n}"),
        }
    }
}

/// Resolved pool mode (see [`PoolSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolMode {
    /// Status-quo per-ring-slot buffers.
    Dram,
    /// Recycling pool of exactly `slots` buffers.
    Recycle {
        /// Pool size in buffers.
        slots: u32,
    },
}

/// Error: a recycle pool had no free buffer — allocation outran recycling
/// and the packet is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStarvedError;

impl fmt::Display for PoolStarvedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("mbuf pool starved; packet dropped")
    }
}

impl Error for PoolStarvedError {}

/// Monotonic pool counters, exported as `pool.q{q}.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers returned to a recycle pool's free list.
    pub recycled: u64,
    /// Allocations that failed because the recycle pool was empty.
    pub starved: u64,
    /// Allocations made while the pool's live footprint already exceeded
    /// its LLC budget — buffers that conceptually spill past the DDIO
    /// partition (the bloat/leak precondition).
    pub spilled: u64,
}

/// A per-queue mbuf pool: fixed-stride buffers carved from one region,
/// allocated per received packet and freed when processing (or TX
/// completion) finishes.
#[derive(Debug, Clone)]
pub struct BufPool {
    mode: PoolMode,
    base: Addr,
    stride: u64,
    lines_per_buf: u32,
    budget_lines: u64,
    /// LIFO free list of pool slot ids (`Recycle` only).
    free: Vec<u32>,
    /// Per-slot liveness guard (`Recycle` only).
    live: Vec<bool>,
    live_count: u32,
    stats: PoolStats,
}

impl BufPool {
    /// Creates a pool over buffers of `stride` bytes (`lines_per_buf`
    /// cache lines each) starting at `base`. `budget_lines` is the LLC
    /// budget the pool is supposed to stay inside (allocations beyond it
    /// count as `spilled`).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero, or if a `Recycle` mode has zero slots.
    pub fn new(
        mode: PoolMode,
        base: Addr,
        stride: u64,
        lines_per_buf: u32,
        budget_lines: u64,
    ) -> Self {
        assert!(stride > 0, "buffer stride must be non-zero");
        let (free, live) = match mode {
            PoolMode::Dram => (Vec::new(), Vec::new()),
            PoolMode::Recycle { slots } => {
                assert!(slots > 0, "recycle pool must have at least one slot");
                // Push high slots first so the first pop (and the cold-start
                // allocation order) walks 0, 1, 2, ... exactly like the
                // status-quo ring addressing.
                ((0..slots).rev().collect(), vec![false; slots as usize])
            }
        };
        BufPool {
            mode,
            base,
            stride,
            lines_per_buf,
            budget_lines,
            free,
            live,
            live_count: 0,
            stats: PoolStats::default(),
        }
    }

    /// A status-quo pool with no meaningful LLC budget (never spills):
    /// the implicit pool behind legacy ring construction.
    pub fn unbudgeted_dram(base: Addr, stride: u64, lines_per_buf: u32) -> Self {
        BufPool::new(PoolMode::Dram, base, stride, lines_per_buf, u64::MAX)
    }

    /// The pool's mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// Whether this is a recycling pool.
    pub fn is_recycle(&self) -> bool {
        matches!(self.mode, PoolMode::Recycle { .. })
    }

    /// Whether frees must be paired with self-invalidation of the
    /// buffer's payload lines (the RDCA recycling contract: a freed
    /// buffer's stale lines are invalidated without writeback so the next
    /// DMA write re-allocates clean lines in the LLC).
    pub fn invalidate_on_free(&self) -> bool {
        self.is_recycle()
    }

    /// Cache lines per buffer.
    pub fn lines_per_buf(&self) -> u32 {
        self.lines_per_buf
    }

    /// The pool's LLC budget in cache lines.
    pub fn budget_lines(&self) -> u64 {
        self.budget_lines
    }

    /// Buffer base address of pool slot `slot`.
    pub fn buf_addr(&self, slot: u32) -> Addr {
        self.base + self.stride * u64::from(slot)
    }

    /// Buffers currently allocated.
    pub fn live_bufs(&self) -> u32 {
        self.live_count
    }

    /// Cache-line footprint of the live buffers.
    pub fn live_lines(&self) -> u64 {
        u64::from(self.live_count) * u64::from(self.lines_per_buf)
    }

    /// Free buffers remaining (`None` for `Dram`, which never runs out).
    pub fn available(&self) -> Option<u32> {
        match self.mode {
            PoolMode::Dram => None,
            PoolMode::Recycle { .. } => Some(self.free.len() as u32),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Allocates a buffer for a packet landing in ring slot `ring_slot`.
    ///
    /// `Dram` hands out the ring slot's fixed buffer (never fails);
    /// `Recycle` pops the hottest buffer off the LIFO free list.
    ///
    /// # Errors
    ///
    /// Returns [`PoolStarvedError`] when a recycle pool has no free
    /// buffer (the caller drops the packet and must count it).
    pub fn alloc(&mut self, ring_slot: u32) -> Result<Addr, PoolStarvedError> {
        let slot = match self.mode {
            PoolMode::Dram => ring_slot,
            PoolMode::Recycle { .. } => match self.free.pop() {
                Some(s) => {
                    debug_assert!(!self.live[s as usize], "free list handed out a live slot");
                    self.live[s as usize] = true;
                    s
                }
                None => {
                    self.stats.starved += 1;
                    return Err(PoolStarvedError);
                }
            },
        };
        self.live_count += 1;
        if self.live_lines() > self.budget_lines {
            self.stats.spilled += 1;
        }
        Ok(self.buf_addr(slot))
    }

    /// Frees the buffer at `buf`, returning its pool slot id. For recycle
    /// pools the slot goes back on top of the LIFO free list and the
    /// caller is expected to self-invalidate the payload lines (see
    /// [`invalidate_on_free`](Self::invalidate_on_free)).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a buffer base this pool handed out, or (for
    /// recycle pools) if the buffer is already free — the double-free /
    /// slot-leak guard.
    pub fn free_buf(&mut self, buf: Addr) -> u32 {
        assert!(
            buf >= self.base,
            "buffer {buf} below pool base {}",
            self.base
        );
        let off = buf - self.base;
        assert!(
            off.is_multiple_of(self.stride),
            "buffer {buf} is not stride-aligned in the pool"
        );
        let slot = (off / self.stride) as u32;
        match self.mode {
            PoolMode::Dram => {
                assert!(self.live_count > 0, "free with no live buffers");
            }
            PoolMode::Recycle { slots } => {
                assert!(slot < slots, "buffer {buf} past the pool's {slots} slots");
                assert!(self.live[slot as usize], "double free of pool slot {slot}");
                self.live[slot as usize] = false;
                self.free.push(slot);
                self.stats.recycled += 1;
            }
        }
        self.live_count -= 1;
        slot
    }

    /// Bulk free of `n` buffers for `Dram` pools, where individual buffer
    /// identity does not matter (legacy tail-advance path).
    ///
    /// # Panics
    ///
    /// Panics on recycle pools (they free by buffer address so the LIFO
    /// order and liveness guard stay exact) or when freeing more buffers
    /// than are live.
    pub fn free_n(&mut self, n: u32) {
        assert!(
            !self.is_recycle(),
            "recycle pools free by buffer address (free_buf)"
        );
        assert!(
            n <= self.live_count,
            "freeing {n} buffers but only {} are live",
            self.live_count
        );
        self.live_count -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recycle(slots: u32, budget_lines: u64) -> BufPool {
        BufPool::new(
            PoolMode::Recycle { slots },
            Addr::new(0x4000),
            2048,
            32,
            budget_lines,
        )
    }

    #[test]
    fn dram_mode_is_status_quo_addressing() {
        let mut p = BufPool::unbudgeted_dram(Addr::new(0x8000), 2048, 32);
        assert_eq!(p.alloc(0).unwrap(), Addr::new(0x8000));
        assert_eq!(p.alloc(5).unwrap(), Addr::new(0x8000 + 5 * 2048));
        assert_eq!(p.live_bufs(), 2);
        assert_eq!(p.stats(), PoolStats::default());
        p.free_n(2);
        assert_eq!(p.live_bufs(), 0);
    }

    #[test]
    fn recycle_cold_start_walks_slots_in_order() {
        let mut p = recycle(4, 4 * 32);
        for i in 0..4u64 {
            assert_eq!(p.alloc(99).unwrap(), Addr::new(0x4000 + i * 2048));
        }
    }

    #[test]
    fn recycle_is_lifo_and_counts_recycles() {
        let mut p = recycle(4, 4 * 32);
        let a = p.alloc(0).unwrap();
        let b = p.alloc(1).unwrap();
        p.free_buf(a);
        p.free_buf(b);
        // b freed last => reused first.
        assert_eq!(p.alloc(2).unwrap(), b);
        assert_eq!(p.alloc(3).unwrap(), a);
        assert_eq!(p.stats().recycled, 2);
    }

    #[test]
    fn starvation_counts_and_recovers() {
        let mut p = recycle(2, 2 * 32);
        let a = p.alloc(0).unwrap();
        let _b = p.alloc(1).unwrap();
        assert_eq!(p.alloc(2), Err(PoolStarvedError));
        assert_eq!(p.alloc(3), Err(PoolStarvedError));
        assert_eq!(p.stats().starved, 2);
        p.free_buf(a);
        assert_eq!(p.alloc(4).unwrap(), a);
        assert_eq!(p.available(), Some(0));
    }

    #[test]
    fn spill_counts_allocations_past_the_budget() {
        // Budget of one buffer's worth of lines; second+ live alloc spills.
        let mut p = BufPool::new(PoolMode::Dram, Addr::new(0), 2048, 32, 32);
        p.alloc(0).unwrap();
        assert_eq!(p.stats().spilled, 0);
        p.alloc(1).unwrap();
        p.alloc(2).unwrap();
        assert_eq!(p.stats().spilled, 2);
        p.free_n(2);
        p.alloc(3).unwrap();
        assert_eq!(p.stats().spilled, 3);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = recycle(2, 64);
        let a = p.alloc(0).unwrap();
        p.free_buf(a);
        p.free_buf(a);
    }

    #[test]
    #[should_panic(expected = "stride-aligned")]
    fn misaligned_free_panics() {
        let mut p = recycle(2, 64);
        p.alloc(0).unwrap();
        p.free_buf(Addr::new(0x4000 + 7));
    }

    #[test]
    #[should_panic(expected = "free by buffer address")]
    fn bulk_free_of_recycle_pool_panics() {
        let mut p = recycle(2, 64);
        p.alloc(0).unwrap();
        p.free_n(1);
    }

    #[test]
    fn spec_resolution_sizes_from_budget_and_clamps_to_ring() {
        let spec = PoolSpec::Recycle { slots: None };
        // 256 budget lines / 32 lines per buf = 8 slots.
        assert_eq!(spec.resolve(256, 32, 64), PoolMode::Recycle { slots: 8 });
        // Clamped to the ring size.
        assert_eq!(
            spec.resolve(1 << 20, 32, 16),
            PoolMode::Recycle { slots: 16 }
        );
        // Never zero, even with a budget smaller than one buffer.
        assert_eq!(spec.resolve(1, 32, 64), PoolMode::Recycle { slots: 1 });
        // Explicit slot counts clamp the same way.
        let explicit = PoolSpec::Recycle { slots: Some(1000) };
        assert_eq!(
            explicit.resolve(256, 32, 64),
            PoolMode::Recycle { slots: 64 }
        );
        assert_eq!(PoolSpec::Dram.resolve(256, 32, 64), PoolMode::Dram);
    }

    #[test]
    fn file_names_round_trip_shapes() {
        assert_eq!(PoolSpec::Dram.file_name(), "dram");
        assert_eq!(PoolSpec::Recycle { slots: None }.file_name(), "recycle");
        assert_eq!(
            PoolSpec::Recycle { slots: Some(12) }.file_name(),
            "recycle:12"
        );
    }
}
