//! Randomized property tests for the mbuf pool, checked against a naive
//! reference model: a `VecDeque` used as a LIFO stack of free slot ids
//! plus a live list. Every interleaving of allocs and frees must agree
//! with the model on the buffer handed out (LIFO hot-reuse order), the
//! occupancy accounting, and all three monotonic counters — and the
//! slot-count invariant `live + free == slots` must hold after every
//! step. Driven by the in-repo deterministic harness
//! (`idio_engine::check`).

use std::collections::VecDeque;

use idio_cache::addr::Addr;
use idio_engine::check::Cases;
use idio_pool::{BufPool, PoolMode};

const BASE: u64 = 0x10_0000;

#[test]
fn recycle_pool_matches_reference_model() {
    Cases::new(256).run(|g| {
        let slots = g.u32(1..48);
        let lines_per_buf = g.u32(1..64);
        let budget_lines = g.u64(1..2048);
        let stride = u64::from(lines_per_buf) * 64;
        let mut pool = BufPool::new(
            PoolMode::Recycle { slots },
            Addr::new(BASE),
            stride,
            lines_per_buf,
            budget_lines,
        );

        // Reference model. `free` holds slot ids with the hottest (most
        // recently freed) at the back; the initial order makes the
        // cold-start allocation walk 0, 1, 2, ... like the real pool.
        let mut free: VecDeque<u32> = (0..slots).rev().collect();
        let mut live: Vec<u32> = Vec::new(); // live slot ids, any order
        let (mut recycled, mut starved, mut spilled) = (0u64, 0u64, 0u64);

        let ops = g.vec(1..400, |g| g.u64(0..2));
        for op in ops {
            if op == 0 {
                // Alloc: the pool must hand out exactly the model's
                // hottest free slot, or starve exactly when the model
                // has none left.
                let got = pool.alloc(0);
                match free.pop_back() {
                    Some(s) => {
                        let addr = got.expect("model has a free buffer");
                        assert_eq!(
                            addr,
                            Addr::new(BASE + stride * u64::from(s)),
                            "LIFO hot-reuse order"
                        );
                        live.push(s);
                        if live.len() as u64 * u64::from(lines_per_buf) > budget_lines {
                            spilled += 1;
                        }
                    }
                    None => {
                        got.expect_err("model is empty, pool must starve");
                        starved += 1;
                    }
                }
            } else if !live.is_empty() {
                // Free a random live buffer (completion order is not
                // allocation order).
                let i = g.u64(0..live.len() as u64) as usize;
                let s = live.swap_remove(i);
                let freed = pool.free_buf(Addr::new(BASE + stride * u64::from(s)));
                assert_eq!(freed, s, "free returns the buffer's slot id");
                free.push_back(s);
                recycled += 1;
            }

            // Slot-count invariant and full accounting after every step.
            assert_eq!(pool.live_bufs() as usize, live.len());
            assert_eq!(pool.available(), Some(free.len() as u32));
            assert_eq!(
                pool.live_bufs() + pool.available().unwrap(),
                slots,
                "live + free == slots"
            );
            assert_eq!(
                pool.live_lines(),
                live.len() as u64 * u64::from(lines_per_buf)
            );
            let st = pool.stats();
            assert_eq!(
                (st.recycled, st.starved, st.spilled),
                (recycled, starved, spilled)
            );
        }
    });
}

#[test]
fn dram_pool_never_starves_and_counts_spills_past_budget() {
    Cases::new(256).run(|g| {
        let ring_size = g.u32(1..64);
        let lines_per_buf = g.u32(1..64);
        let budget_lines = g.u64(1..2048);
        let stride = u64::from(lines_per_buf) * 64;
        let mut pool = BufPool::new(
            PoolMode::Dram,
            Addr::new(BASE),
            stride,
            lines_per_buf,
            budget_lines,
        );

        let mut live = 0u64;
        let mut spilled = 0u64;
        let mut next_slot = 0u32;
        let ops = g.vec(1..300, |g| g.u64(0..2));
        for op in ops {
            if op == 0 && live < u64::from(ring_size) {
                // Dram mode hands out the ring slot's fixed buffer and
                // never fails.
                let slot = next_slot % ring_size;
                let addr = pool.alloc(slot).expect("dram pools never starve");
                assert_eq!(addr, Addr::new(BASE + stride * u64::from(slot)));
                next_slot = next_slot.wrapping_add(1);
                live += 1;
                if live * u64::from(lines_per_buf) > budget_lines {
                    spilled += 1;
                }
            } else if op == 1 && live > 0 {
                pool.free_n(1);
                live -= 1;
            }
            assert_eq!(u64::from(pool.live_bufs()), live);
            assert_eq!(pool.available(), None, "dram pools never run out");
            let st = pool.stats();
            assert_eq!(st.starved, 0);
            assert_eq!(st.recycled, 0, "dram buffers are never re-identified");
            assert_eq!(st.spilled, spilled);
        }
    });
}
