//! The built-in scenarios: curated mixed workloads exercising the
//! steering policies under multi-tenant pressure.
//!
//! Each built-in is golden-tested (byte-stable JSON report), so their
//! parameters are part of the repo's regression surface — change them
//! deliberately and re-bless.

use idio_core::config::FlowSteering;
use idio_core::net::gen::{Arrival, BurstSpec, FlowSpec, MultiFlowGen, TrafficPattern};
use idio_core::net::packet::Dscp;
use idio_core::net::trace::{read_trace, write_trace};
use idio_core::policy::{CatMode, PolicyCaps, PolicySpec, SteeringPolicy};
use idio_core::pool::PoolSpec;
use idio_core::stack::nf::{ChainStage, NfChain, NfKind};
use idio_engine::time::{Duration, SimTime};

use crate::spec::{Scenario, SloSpec, TenantDef};

/// Traffic horizon shared by the built-ins (short enough for debug-mode
/// golden tests, long enough for thousands of packets per tenant).
const HORIZON: SimTime = SimTime::from_us(400);

/// Drain grace shared by the built-ins.
const GRACE: Duration = Duration::from_us(300);

/// Longer horizon for the CAT scenarios: the copy-mode victims' app
/// arena only recycles after a full ring rotation (~1.2 ms per queue at
/// 10 Gb/s / 1514 B with the default 1024-slot ring), and CAT retention
/// only pays off once surviving LLC copies are re-referenced.
const CAT_HORIZON: SimTime = SimTime::from_us(1500);

/// Names of the built-in scenarios, in listing order.
pub fn builtin_names() -> [&'static str; 9] {
    [
        "noisy-neighbor",
        "incast",
        "mixed-rate",
        "trace-replay",
        "llc-duel",
        "cat-duel",
        "upf-chain",
        "recycle-duel",
        "flow-churn",
    ]
}

/// All built-in scenarios, in listing order.
pub fn builtins() -> Vec<Scenario> {
    builtin_names()
        .iter()
        .map(|n| builtin(n).expect("listed name"))
        .collect()
}

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    match name {
        "noisy-neighbor" => Some(noisy_neighbor()),
        "incast" => Some(incast()),
        "mixed-rate" => Some(mixed_rate()),
        "trace-replay" => Some(trace_replay()),
        "llc-duel" => Some(llc_duel()),
        "cat-duel" => Some(cat_duel()),
        "upf-chain" => Some(upf_chain()),
        "recycle-duel" => Some(recycle_duel()),
        "flow-churn" => Some(flow_churn()),
        _ => None,
    }
}

/// IDIO caps plus a closed-loop CAT slice (`cat = auto`).
fn idio_with_auto_cat() -> PolicySpec {
    PolicySpec::Custom(PolicyCaps {
        cat: CatMode::Auto,
        ..SteeringPolicy::Idio.caps()
    })
}

/// A latency-sensitive tenant sharing the LLC with a bandwidth hog —
/// the Sec. VI antagonist question asked at the tenant level.
fn noisy_neighbor() -> Scenario {
    Scenario {
        name: "noisy-neighbor".into(),
        description: "Poisson latency-sensitive tenant vs. a steady bulk-bandwidth hog".into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            TenantDef::new(
                "latency",
                NfKind::TouchDrop,
                vec![0, 1],
                8,
                5000,
                TrafficPattern::Poisson {
                    rate_gbps: 6.0,
                    seed: 0x1D10,
                },
                512,
            ),
            TenantDef::new(
                "bulk",
                NfKind::TouchDrop,
                vec![2, 3],
                4,
                6000,
                TrafficPattern::Steady { rate_gbps: 30.0 },
                1514,
            ),
        ],
    }
}

/// Many short flows fanning into two cores in synchronized bursts (the
/// classic incast pattern), over a steady background tenant, under plain
/// DDIO — the regime where DMA bloating shows up.
fn incast() -> Scenario {
    Scenario {
        name: "incast".into(),
        description: "32 short bursty flows fanning into two cores over a steady background".into(),
        policy: SteeringPolicy::Ddio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            TenantDef::new(
                "incast",
                NfKind::TouchDrop,
                vec![0, 1],
                32,
                5000,
                TrafficPattern::Bursty(BurstSpec::for_ring(256, 256, 40.0, Duration::from_us(100))),
                256,
            ),
            TenantDef::new(
                "background",
                NfKind::TouchDrop,
                vec![2],
                2,
                7000,
                TrafficPattern::Steady { rate_gbps: 10.0 },
                1514,
            ),
        ],
    }
}

/// Three tenants at very different rates and NF classes, including a
/// class-1 payload-drop tenant whose payloads IDIO sends direct to DRAM.
fn mixed_rate() -> Scenario {
    Scenario {
        name: "mixed-rate".into(),
        description: "slow copy-mode, mid forwarding and fast class-1 tenants under IDIO".into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            TenantDef::new(
                "slow",
                NfKind::TouchDropCopy,
                vec![0],
                2,
                5000,
                TrafficPattern::Steady { rate_gbps: 4.0 },
                1024,
            ),
            TenantDef::new(
                "mid",
                NfKind::L2Fwd,
                vec![1],
                4,
                6000,
                TrafficPattern::Steady { rate_gbps: 12.0 },
                1514,
            ),
            TenantDef::new(
                "fast",
                NfKind::L2FwdPayloadDrop,
                vec![2, 3],
                8,
                7000,
                TrafficPattern::Steady { rate_gbps: 30.0 },
                1514,
            )
            .with_dscp(Dscp::CLASS1_DEFAULT),
        ],
    }
}

/// The arrivals of the trace-replay tenant: a multi-flow Poisson stream
/// recorded to the line-oriented trace format and parsed back, so the
/// scenario exercises the real writer/reader pair end to end (times are
/// nanosecond-quantised by the format, exactly as an external capture
/// would be).
fn replayed_arrivals() -> Vec<Arrival> {
    let flows: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec::udp_to_port(5000 + i, 1024))
        .collect();
    let gen = MultiFlowGen::new(
        flows,
        TrafficPattern::Poisson {
            rate_gbps: 10.0,
            seed: 0x7ACE,
        },
        HORIZON,
    );
    let recorded: Vec<Arrival> = gen.collect();
    let mut buf = Vec::new();
    write_trace(&mut buf, &recorded).expect("in-memory trace write cannot fail");
    read_trace(buf.as_slice()).expect("recorded trace parses back")
}

/// A tenant replaying a recorded multi-flow trace next to a live
/// synthetic tenant; the trace's flows are pinned first-seen round-robin
/// across the replay tenant's queues.
fn trace_replay() -> Scenario {
    Scenario {
        name: "trace-replay".into(),
        description: "recorded multi-flow trace replayed next to a live forwarding tenant".into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            TenantDef::new(
                "replay",
                NfKind::TouchDrop,
                vec![0, 1],
                4,
                5000,
                TrafficPattern::Poisson {
                    rate_gbps: 10.0,
                    seed: 0x7ACE,
                },
                1024,
            )
            .with_replay(replayed_arrivals()),
            TenantDef::new(
                "live",
                NfKind::L2Fwd,
                vec![2],
                2,
                7000,
                TrafficPattern::Steady { rate_gbps: 8.0 },
                1514,
            ),
        ],
    }
}

/// A mixed-policy duel over the LLC's DDIO ways: an IDIO-steered
/// latency-sensitive victim against a bandwidth attacker pinned to plain
/// DDIO via a per-tenant policy override — the two tenants run *in the
/// same mixed cell* under different steering policies, which only the
/// layered policy table can express. The victim additionally carries SLO
/// bounds asserted against the mixed run.
fn llc_duel() -> Scenario {
    Scenario {
        name: "llc-duel".into(),
        description: "IDIO victim vs. DDIO-pinned attacker fighting over the DDIO ways".into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: CAT_HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            TenantDef::new(
                "victim",
                NfKind::TouchDropCopy,
                vec![0],
                8,
                5000,
                TrafficPattern::Poisson {
                    rate_gbps: 10.0,
                    seed: 0xD0E1,
                },
                1514,
            )
            // Same preset as the scenario default: behaviorally a no-op,
            // but it labels the victim's policy in the report next to the
            // attacker's.
            .with_policy(SteeringPolicy::Idio)
            .with_slo(SloSpec {
                max_p99_ns: Some(2_000_000),
                max_drop_rate: Some(0.01),
            }),
            TenantDef::new(
                "attacker",
                NfKind::TouchDropCopy,
                vec![1, 2],
                4,
                6000,
                TrafficPattern::Steady { rate_gbps: 30.0 },
                1514,
            )
            // The override that makes it a duel: the attacker's queues
            // run classic DDIO while the victim's run IDIO. Copy-mode
            // keeps the attacker's MLC victims cascading into the shared
            // LLC ways, so the pool the unprotected victim lives in is
            // under constant churn.
            .with_policy(SteeringPolicy::Ddio),
            // A second, identical victim whose policy adds a closed-loop
            // CAT slice: same arrival process (same seed), same SLO, so
            // the report is a controlled CAT-vs-no-CAT comparison inside
            // one mixed run.
            TenantDef::new(
                "victim-cat",
                NfKind::TouchDropCopy,
                vec![3],
                8,
                7000,
                TrafficPattern::Poisson {
                    rate_gbps: 10.0,
                    seed: 0xD0E1,
                },
                1514,
            )
            .with_policy(idio_with_auto_cat())
            .with_slo(SloSpec {
                max_p99_ns: Some(2_000_000),
                max_drop_rate: Some(0.01),
            }),
        ],
    }
}

/// Controller-vs-controller over the same LLC: an IAT tenant that widens
/// the DDIO partition from the bottom, a CAT tenant that carves an
/// exclusive core-side slice from the top, a tenant running both loops
/// at once, and a DDIO-pinned bandwidth attacker squeezing all three.
/// Exercises the two allocators' non-collision invariant (DDIO grows
/// bottom-up, CAT slices are carved top-down and re-planned whenever the
/// IAT tuner moves the boundary).
fn cat_duel() -> Scenario {
    let latency = |name: &str, cores: Vec<u16>, port: u16, seed: u64| {
        TenantDef::new(
            name,
            NfKind::TouchDropCopy,
            cores,
            8,
            port,
            TrafficPattern::Poisson {
                rate_gbps: 10.0,
                seed,
            },
            1514,
        )
        .with_slo(SloSpec {
            max_p99_ns: Some(2_000_000),
            max_drop_rate: Some(0.01),
        })
    };
    Scenario {
        name: "cat-duel".into(),
        description: "IAT vs CAT vs combined latency tenants under a DDIO bandwidth attacker"
            .into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: CAT_HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            latency("iat", vec![0], 5000, 0xCA70).with_policy(SteeringPolicy::IatDynamic),
            latency("cat", vec![1], 6000, 0xCA71).with_policy(idio_with_auto_cat()),
            latency("both", vec![2], 7000, 0xCA72).with_policy(PolicySpec::Custom(PolicyCaps {
                cat: CatMode::Auto,
                ..SteeringPolicy::IatDynamic.caps()
            })),
            TenantDef::new(
                "attacker",
                NfKind::TouchDropCopy,
                vec![3, 4],
                4,
                8000,
                TrafficPattern::Steady { rate_gbps: 30.0 },
                1514,
            )
            .with_policy(SteeringPolicy::Ddio),
        ],
    }
}

/// The 5GC²ache shape: a chained UPF pipeline (parse → classify →
/// rewrite → forward) on a recycling mbuf pool, next to a deep-inspection
/// chain that drops — the two chain flavours (TX-freeing and drop-freeing)
/// in one mixed run, both with per-stage latency telemetry.
fn upf_chain() -> Scenario {
    Scenario {
        name: "upf-chain".into(),
        description: "chained UPF pipeline on a recycling pool next to a DPI drop chain".into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            TenantDef::new(
                "upf",
                NfKind::Chain(NfChain::upf()),
                vec![0, 1],
                8,
                5000,
                TrafficPattern::Poisson {
                    rate_gbps: 8.0,
                    seed: 0x56C2,
                },
                1514,
            )
            .with_pool(PoolSpec::Recycle { slots: None }),
            TenantDef::new(
                "dpi",
                NfKind::Chain(
                    NfChain::new(&[ChainStage::Parse, ChainStage::Classify, ChainStage::Inspect])
                        .expect("static chain is valid"),
                ),
                vec![2],
                4,
                6000,
                TrafficPattern::Steady { rate_gbps: 6.0 },
                1024,
            ),
        ],
    }
}

/// RDCA's question as a controlled twin experiment: two identical
/// forwarding-chain tenants with the same Poisson arrival process (same
/// seed), one on an LLC-resident recycling pool, one on an explicit
/// status-quo DRAM pool. The Recycle tenant's DMA working set stays
/// bounded by its DDIO share while the Dram twin's buffers sprawl —
/// `pool.*` counters and `--tick-metrics` show the divergence directly.
fn recycle_duel() -> Scenario {
    let twin = |name: &str, cores: Vec<u16>, port: u16, pool: PoolSpec| {
        TenantDef::new(
            name,
            NfKind::Chain(NfChain::upf()),
            cores,
            8,
            port,
            TrafficPattern::Poisson {
                rate_gbps: 12.0,
                seed: 0x2DCA,
            },
            1514,
        )
        .with_pool(pool)
    };
    Scenario {
        name: "recycle-duel".into(),
        description: "identical UPF-chain twins: recycling pool vs status-quo DRAM buffers".into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        perfect_filters: None,
        atr_lifetime: None,
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            twin("recycle", vec![0], 5000, PoolSpec::Recycle { slots: None }),
            twin("dram", vec![1], 6000, PoolSpec::Dram),
        ],
    }
}

/// The flow-scale sweep: three tenants whose flow counts span three
/// orders of magnitude (1 K → 64 K → 1 M) against a deliberately small
/// perfect-filter table, so the report shows the Sec. II-C steering
/// shift directly — the 1 K tenant mostly rides pinned perfect filters
/// and ATR re-learning, the 64 K churning tenant keeps evicting and
/// re-installing filters, and the 1 M tenant falls through to RSS with
/// the p99 cost of landing in the wrong core's MLC. Flow state is
/// streamed (no per-flow allocation), so the 1 M tenant costs the same
/// memory as the 1 K one.
fn flow_churn() -> Scenario {
    Scenario {
        name: "flow-churn".into(),
        description: "1K/64K/1M-flow tenants degrading from perfect filters through ATR to RSS"
            .into(),
        policy: SteeringPolicy::Idio,
        steering: FlowSteering::Perfect,
        duration: HORIZON,
        // 384 perfect filters across three tenants: a 128-filter budget
        // each, far under every tenant's flow count.
        perfect_filters: Some(384),
        atr_lifetime: Some(Duration::from_us(150)),
        pool_idle_flush: None,
        drain_grace: GRACE,
        tenants: vec![
            // 1 K flows at a revisit period (~105 us) inside the ATR
            // lifetime: unpinned flows are learned on first completion
            // and steer by filter table from their second visit on.
            TenantDef::new(
                "small-1k",
                NfKind::TouchDrop,
                vec![0, 1, 2],
                1 << 10,
                5000,
                TrafficPattern::Steady { rate_gbps: 20.0 },
                256,
            ),
            // 64 K churning flows: the working set turns over every
            // 100 us, so the control tick keeps re-installing pinned
            // slots into a full table (perfect_evicted) while the rest
            // age out of the filter table between visits.
            TenantDef::new(
                "churn-64k",
                NfKind::TouchDrop,
                vec![3, 4],
                1 << 16,
                6000,
                TrafficPattern::Steady { rate_gbps: 15.0 },
                512,
            )
            .with_churn(Duration::from_us(100))
            .with_train(4),
            // 1 M flows: each packet is a fresh flow, so almost every
            // lookup misses both tables and falls back to RSS — the
            // millions-of-flows regime where steering is effectively
            // random and mis-steers dominate.
            TenantDef::new(
                "huge-1m",
                NfKind::TouchDrop,
                vec![5],
                1 << 20,
                7000,
                TrafficPattern::Poisson {
                    rate_gbps: 10.0,
                    seed: 0xF10C,
                },
                1514,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates() {
        for name in builtin_names() {
            let sc = builtin(name).expect("lookup");
            assert_eq!(sc.name, name);
            assert!(!sc.description.is_empty());
            sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert_eq!(builtins().len(), builtin_names().len());
        assert!(builtin("no-such-scenario").is_none());
    }

    #[test]
    fn replay_trace_round_trips_through_the_parser() {
        let arrivals = replayed_arrivals();
        assert!(arrivals.len() > 100, "enough packets to be interesting");
        // Times are ns-quantised and non-decreasing; flows rotate.
        assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        let ports: std::collections::BTreeSet<u16> =
            arrivals.iter().map(|a| a.packet.flow.dst_port).collect();
        assert_eq!(ports.len(), 4, "all four flows present in the trace");
    }
}
